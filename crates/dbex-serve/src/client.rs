//! Minimal blocking client for the wire protocol — used by the
//! `--connect` REPL, the smoke/determinism tests, and the bench harness.

use crate::protocol::{write_frame, ProtocolError};
use crate::wire::{WireParseError, WireResponse};
use std::io::{BufRead, BufReader};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The server rejected the connection with a typed `BUSY` response
    /// (connection cap reached). The payload is the server's message.
    Busy(String),
    /// Framing or transport failure.
    Protocol(ProtocolError),
    /// The server closed the connection where a response line was due.
    ServerClosed,
    /// The server sent a line that does not parse as a wire response.
    Wire(WireParseError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Busy(msg) => write!(f, "server busy: {msg}"),
            ClientError::Protocol(e) => write!(f, "{e}"),
            ClientError::ServerClosed => write!(f, "server closed the connection"),
            ClientError::Wire(e) => write!(f, "bad response line: {e}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Protocol(e) => Some(e),
            ClientError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Protocol(ProtocolError::Io(e))
    }
}

/// A connected wire client. One request in flight at a time:
/// [`Client::request`] writes a frame and blocks for the response line.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    hello: WireResponse,
}

impl Client {
    /// Connects and consumes the server's hello line. A server at its
    /// connection cap answers with `BUSY` and closes; that surfaces here
    /// as [`ClientError::Busy`] — callers can back off and retry.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        let reader = BufReader::new(writer.try_clone()?);
        let mut client = Client {
            writer,
            reader,
            hello: WireResponse::ok("hello", ""),
        };
        let hello = client.read_line()?;
        let hello = WireResponse::parse(&hello).map_err(ClientError::Wire)?;
        if hello.code.as_deref() == Some("BUSY") {
            return Err(ClientError::Busy(hello.text));
        }
        client.hello = hello;
        Ok(client)
    }

    /// Like [`Self::connect`], but bounds the TCP connect **and** the
    /// hello read by `timeout`, so a SYN dropped by an overflowing
    /// listen backlog (or a server too loaded to greet) surfaces as a
    /// timeout error instead of stranding the caller in the kernel's
    /// minutes-long retransmit cycle. The exploration simulator drives
    /// thousands of concurrent connects through this. The read timeout
    /// is cleared again before returning; callers set their own.
    pub fn connect_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<Client, ClientError> {
        let mut last_err =
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address to connect to");
        let mut stream = None;
        for candidate in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&candidate, timeout) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last_err = e,
            }
        }
        let Some(writer) = stream else {
            return Err(last_err.into());
        };
        writer.set_nodelay(true).ok();
        writer.set_read_timeout(Some(timeout)).ok();
        let reader = BufReader::new(writer.try_clone()?);
        let mut client = Client {
            writer,
            reader,
            hello: WireResponse::ok("hello", ""),
        };
        let hello = client.read_line()?;
        let hello = WireResponse::parse(&hello).map_err(ClientError::Wire)?;
        if hello.code.as_deref() == Some("BUSY") {
            return Err(ClientError::Busy(hello.text));
        }
        client.hello = hello;
        client.set_read_timeout(None)?;
        Ok(client)
    }

    /// The hello response the server sent on accept.
    pub fn hello(&self) -> &WireResponse {
        &self.hello
    }

    /// Sets a read timeout so a wedged server cannot hang the client
    /// forever (used by the soak test's watchdog clients).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends one request and returns the **raw response line** (no
    /// trailing newline) — the byte-comparison primitive the determinism
    /// tests diff against the oracle transcript.
    pub fn request_line(&mut self, request: &str) -> Result<String, ClientError> {
        write_frame(&mut self.writer, request)?;
        self.read_line()
    }

    /// Writes one request frame **without** waiting for the response.
    /// This is the abandon primitive of the exploration simulator: a
    /// session that drops the connection with a request still in flight
    /// exercises the server's executor-drain path, which a paired
    /// `request` call never does. The next [`Client::request_line`] on
    /// this client would read the orphaned response, so abandoning
    /// callers must drop the client afterwards.
    pub fn send_only(&mut self, request: &str) -> Result<(), ClientError> {
        write_frame(&mut self.writer, request)?;
        Ok(())
    }

    /// Sends one request and parses the response.
    pub fn request(&mut self, request: &str) -> Result<WireResponse, ClientError> {
        let line = self.request_line(request)?;
        WireResponse::parse(&line).map_err(ClientError::Wire)
    }

    /// Sends one request and reads **every frame** of the response: on a
    /// connection in `.stream on` mode an expensive statement answers
    /// with a preview frame (`final:false`) before the exact final frame,
    /// and this keeps reading until a final one arrives. Untagged frames
    /// are final (the entire pre-streaming protocol), so this is safe to
    /// use against any server. Returns the raw lines, last one final.
    pub fn request_stream_lines(&mut self, request: &str) -> Result<Vec<String>, ClientError> {
        write_frame(&mut self.writer, request)?;
        let mut lines = Vec::new();
        loop {
            let line = self.read_line()?;
            let done = WireResponse::parse(&line)
                .map_err(ClientError::Wire)?
                .is_final();
            lines.push(line);
            if done {
                return Ok(lines);
            }
        }
    }

    /// [`Client::request_stream_lines`], parsed. The last response is the
    /// final frame; any before it are previews.
    pub fn request_stream(&mut self, request: &str) -> Result<Vec<WireResponse>, ClientError> {
        self.request_stream_lines(request)?
            .iter()
            .map(|line| WireResponse::parse(line).map_err(ClientError::Wire))
            .collect()
    }

    /// Reads and parses **one** response frame. Paired with
    /// [`Client::send_only`], this is the incremental primitive for
    /// callers that want to timestamp streamed frames as each arrives
    /// (the exploration simulator's time-to-first-frame measurement);
    /// keep reading until [`WireResponse::is_final`].
    pub fn read_response(&mut self) -> Result<WireResponse, ClientError> {
        let line = self.read_line()?;
        WireResponse::parse(&line).map_err(ClientError::Wire)
    }

    fn read_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::ServerClosed);
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }
}
