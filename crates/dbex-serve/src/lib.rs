//! # dbex-serve
//!
//! A zero-dependency (std-only) TCP wire server for DBExplorer: many
//! concurrent clients, each with a private [`Session`](dbex_query::Session),
//! all drawing from one shared catalog of `Arc`-immutable tables and one
//! process-wide [`StatsCache`](dbex_core::StatsCache) — so the codecs and
//! contingency tables one client's CAD build computes warm every other
//! client's refinements.
//!
//! ## Wire protocol
//!
//! * **Requests** (client → server): length-prefixed UTF-8 frames — a
//!   4-byte big-endian payload length, then that many bytes of text; one
//!   statement or dot-command per frame ([`protocol`]).
//! * **Responses** (server → client): JSON lines — one flat JSON object
//!   per request, `{"ok":true,"kind":…,"text":…}` or
//!   `{"ok":false,"code":…,"error":…}` ([`wire`]).
//!
//! The `text` of a successful response is byte-identical to what the
//! local REPL prints for the same statement
//! ([`QueryOutput::render`](dbex_query::QueryOutput::render)), which is
//! what makes multi-client determinism testable: every client replaying a
//! script must receive exactly the single-session oracle transcript
//! ([`oracle_transcript`]).
//!
//! ## Quick start
//!
//! ```no_run
//! use dbex_serve::{Client, ServeConfig, Server};
//!
//! let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
//! let addr = server.local_addr();
//! let handle = server.spawn().unwrap();
//! let mut client = Client::connect(addr).unwrap();
//! client.request(".load cars 5000 42").unwrap();
//! let resp = client
//!     .request("CREATE CADVIEW v AS SET pivot = Make FROM cars")
//!     .unwrap();
//! print!("{}", resp.text);
//! handle.shutdown();
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod poller;
pub mod protocol;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError};
pub use poller::{listen_with_backlog, Event, Interest, Poller};
pub use protocol::{
    decode_frame, decode_frame_with, encode_frame, encode_frame_with, read_frame, read_frame_with,
    write_frame, ProtocolError, HEADER_LEN, MAX_FRAME,
};
pub use server::{
    handle_request, oracle_transcript, ServeConfig, Server, ServerHandle, ShutdownSummary,
    PIPELINE_DEPTH,
};
pub use wire::{
    query_error_code, strip_stream_tags, tag_stream_line, WireParseError, WireResponse,
};
