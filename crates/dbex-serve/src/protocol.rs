//! Frame codec for the wire protocol.
//!
//! Requests travel client → server as **length-prefixed UTF-8 frames**: a
//! 4-byte big-endian payload length followed by exactly that many bytes of
//! UTF-8 text (one statement or dot-command per frame). Responses travel
//! server → client as **JSON lines** (see [`crate::wire`]), one line per
//! request, so the two directions never share a framing state machine.
//!
//! Every malformed input — a declared length over [`MAX_FRAME`], a stream
//! that ends mid-frame, payload bytes that are not UTF-8 — decodes to a
//! typed [`ProtocolError`], never a panic; the property tests in
//! `tests/properties.rs` fuzz this boundary.

use std::io::{Read, Write};

/// Maximum payload size (1 MiB). A frame declaring more is rejected
/// before any payload is read, so a hostile header cannot make the server
/// allocate unboundedly.
pub const MAX_FRAME: usize = 1 << 20;

/// Bytes in the length prefix.
pub const HEADER_LEN: usize = 4;

/// A typed wire-framing failure. Conversions to wire error codes live in
/// [`ProtocolError::code`].
#[derive(Debug)]
pub enum ProtocolError {
    /// The header declared a payload larger than [`MAX_FRAME`].
    Oversized {
        /// Declared payload length.
        declared: usize,
        /// The protocol limit it exceeded.
        max: usize,
    },
    /// The stream ended inside a header or payload.
    Truncated {
        /// Bytes the frame still needed.
        expected: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The payload is not valid UTF-8.
    InvalidUtf8 {
        /// Length of the valid prefix, as reported by the UTF-8 validator.
        valid_up_to: usize,
    },
    /// The underlying transport failed.
    Io(std::io::Error),
}

impl ProtocolError {
    /// Short stable code used in wire error responses.
    pub fn code(&self) -> &'static str {
        match self {
            ProtocolError::Oversized { .. } => "OVERSIZED",
            ProtocolError::Truncated { .. } => "TRUNCATED",
            ProtocolError::InvalidUtf8 { .. } => "BAD_UTF8",
            ProtocolError::Io(_) => "IO",
        }
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Oversized { declared, max } => {
                write!(f, "frame declares {declared} bytes, over the {max}-byte limit")
            }
            ProtocolError::Truncated { expected, got } => {
                write!(f, "stream ended mid-frame ({got} of {expected} bytes)")
            }
            ProtocolError::InvalidUtf8 { valid_up_to } => {
                write!(f, "frame payload is not UTF-8 (valid up to byte {valid_up_to})")
            }
            ProtocolError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// Encodes `msg` as one frame. Fails (rather than silently truncating)
/// when the message exceeds [`MAX_FRAME`].
pub fn encode_frame(msg: &str) -> Result<Vec<u8>, ProtocolError> {
    encode_frame_with(msg, MAX_FRAME)
}

/// [`encode_frame`] against an explicit frame cap — the server's
/// configurable [`crate::ServeConfig::max_frame_bytes`] limit.
pub fn encode_frame_with(msg: &str, max_frame: usize) -> Result<Vec<u8>, ProtocolError> {
    if msg.len() > max_frame {
        return Err(ProtocolError::Oversized {
            declared: msg.len(),
            max: max_frame,
        });
    }
    let mut out = Vec::with_capacity(HEADER_LEN + msg.len());
    out.extend_from_slice(&(msg.len() as u32).to_be_bytes());
    out.extend_from_slice(msg.as_bytes());
    Ok(out)
}

/// Decodes the first frame of `buf`.
///
/// * `Ok(None)` — `buf` holds a (possibly empty) prefix of a frame; read
///   more bytes and retry. A *streaming* caller cannot distinguish "not
///   yet arrived" from "truncated" — [`read_frame`] makes that call when
///   the stream reports EOF.
/// * `Ok(Some((msg, consumed)))` — one decoded message and how many bytes
///   of `buf` it used (frames may be concatenated back to back).
/// * `Err` — the frame can never become valid (oversized declaration,
///   non-UTF-8 payload).
pub fn decode_frame(buf: &[u8]) -> Result<Option<(String, usize)>, ProtocolError> {
    decode_frame_with(buf, MAX_FRAME)
}

/// [`decode_frame`] against an explicit frame cap.
pub fn decode_frame_with(
    buf: &[u8],
    max_frame: usize,
) -> Result<Option<(String, usize)>, ProtocolError> {
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let declared = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if declared > max_frame {
        return Err(ProtocolError::Oversized {
            declared,
            max: max_frame,
        });
    }
    let total = HEADER_LEN + declared;
    if buf.len() < total {
        return Ok(None);
    }
    match std::str::from_utf8(&buf[HEADER_LEN..total]) {
        Ok(msg) => Ok(Some((msg.to_owned(), total))),
        Err(e) => Err(ProtocolError::InvalidUtf8 {
            valid_up_to: e.valid_up_to(),
        }),
    }
}

/// Reads exactly `buf.len()` bytes, reporting how many arrived before EOF.
fn read_exact_counting(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, ProtocolError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Ok(filled),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    Ok(filled)
}

/// Reads one frame from a stream.
///
/// * `Ok(None)` — clean EOF at a frame boundary (the peer closed).
/// * `Err(Truncated)` — EOF inside a header or payload.
pub fn read_frame(r: &mut impl Read) -> Result<Option<String>, ProtocolError> {
    read_frame_with(r, MAX_FRAME)
}

/// [`read_frame`] against an explicit frame cap. An over-cap declaration
/// is rejected before a single payload byte is read or allocated.
pub fn read_frame_with(r: &mut impl Read, max_frame: usize) -> Result<Option<String>, ProtocolError> {
    let mut header = [0u8; HEADER_LEN];
    let got = read_exact_counting(r, &mut header)?;
    if got == 0 {
        return Ok(None);
    }
    if got < HEADER_LEN {
        return Err(ProtocolError::Truncated {
            expected: HEADER_LEN,
            got,
        });
    }
    let declared = u32::from_be_bytes(header) as usize;
    if declared > max_frame {
        return Err(ProtocolError::Oversized {
            declared,
            max: max_frame,
        });
    }
    let mut payload = vec![0u8; declared];
    let got = read_exact_counting(r, &mut payload)?;
    if got < declared {
        return Err(ProtocolError::Truncated {
            expected: declared,
            got,
        });
    }
    match String::from_utf8(payload) {
        Ok(msg) => Ok(Some(msg)),
        Err(e) => Err(ProtocolError::InvalidUtf8 {
            valid_up_to: e.utf8_error().valid_up_to(),
        }),
    }
}

/// Writes one frame (header + payload) and flushes.
pub fn write_frame(w: &mut impl Write, msg: &str) -> Result<(), ProtocolError> {
    let frame = encode_frame(msg)?;
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_single_frame() {
        let frame = encode_frame("SELECT 1").unwrap();
        let (msg, used) = decode_frame(&frame).unwrap().unwrap();
        assert_eq!(msg, "SELECT 1");
        assert_eq!(used, frame.len());
    }

    #[test]
    fn concatenated_frames_decode_in_order() {
        let mut buf = encode_frame("a").unwrap();
        buf.extend(encode_frame("bb").unwrap());
        let (first, used) = decode_frame(&buf).unwrap().unwrap();
        assert_eq!(first, "a");
        let (second, used2) = decode_frame(&buf[used..]).unwrap().unwrap();
        assert_eq!(second, "bb");
        assert_eq!(used + used2, buf.len());
    }

    #[test]
    fn prefixes_ask_for_more_bytes() {
        let frame = encode_frame("hello").unwrap();
        for cut in 0..frame.len() {
            assert!(decode_frame(&frame[..cut]).unwrap().is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn oversized_declaration_is_rejected_before_payload() {
        let mut buf = ((MAX_FRAME + 1) as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(b"ignored");
        assert!(matches!(
            decode_frame(&buf),
            Err(ProtocolError::Oversized { .. })
        ));
        // And over the io path, without the payload ever arriving.
        let header = ((MAX_FRAME + 1) as u32).to_be_bytes();
        let mut r = &header[..];
        assert!(matches!(read_frame(&mut r), Err(ProtocolError::Oversized { .. })));
        // encode refuses to produce one.
        assert!(matches!(
            encode_frame(&"x".repeat(MAX_FRAME + 1)),
            Err(ProtocolError::Oversized { .. })
        ));
    }

    #[test]
    fn invalid_utf8_is_typed() {
        let mut buf = 2u32.to_be_bytes().to_vec();
        buf.extend_from_slice(&[0x61, 0xFF]);
        assert!(matches!(
            decode_frame(&buf),
            Err(ProtocolError::InvalidUtf8 { valid_up_to: 1 })
        ));
    }

    #[test]
    fn read_frame_distinguishes_eof_kinds() {
        // Clean EOF at the boundary.
        let mut empty: &[u8] = &[];
        assert!(read_frame(&mut empty).unwrap().is_none());
        // EOF inside the header.
        let mut partial: &[u8] = &[0, 0];
        assert!(matches!(
            read_frame(&mut partial),
            Err(ProtocolError::Truncated { expected: 4, got: 2 })
        ));
        // EOF inside the payload.
        let frame = encode_frame("abcdef").unwrap();
        let mut cut = &frame[..frame.len() - 2];
        assert!(matches!(
            read_frame(&mut cut),
            Err(ProtocolError::Truncated { expected: 6, got: 4 })
        ));
    }

    #[test]
    fn explicit_caps_override_the_default() {
        // A 100-byte payload is fine at the default cap but over a
        // 64-byte one, from both the buffer and the stream paths.
        let msg = "x".repeat(100);
        let frame = encode_frame(&msg).unwrap();
        assert!(matches!(
            decode_frame_with(&frame, 64),
            Err(ProtocolError::Oversized { declared: 100, max: 64 })
        ));
        let mut r = &frame[..];
        assert!(matches!(
            read_frame_with(&mut r, 64),
            Err(ProtocolError::Oversized { declared: 100, max: 64 })
        ));
        assert!(matches!(
            encode_frame_with(&msg, 64),
            Err(ProtocolError::Oversized { declared: 100, max: 64 })
        ));
        // And a raised cap admits what the default refuses.
        let big = "y".repeat(MAX_FRAME + 1);
        let frame = encode_frame_with(&big, MAX_FRAME * 2).unwrap();
        let (decoded, _) = decode_frame_with(&frame, MAX_FRAME * 2).unwrap().unwrap();
        assert_eq!(decoded.len(), big.len());
    }

    #[test]
    fn error_codes_are_stable() {
        assert_eq!(
            ProtocolError::Oversized { declared: 9, max: 1 }.code(),
            "OVERSIZED"
        );
        assert_eq!(
            ProtocolError::Truncated { expected: 4, got: 0 }.code(),
            "TRUNCATED"
        );
        assert_eq!(ProtocolError::InvalidUtf8 { valid_up_to: 0 }.code(), "BAD_UTF8");
    }
}
