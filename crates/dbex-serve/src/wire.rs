//! Response encoding: one JSON object per line, server → client.
//!
//! Success lines carry the same text the local REPL would print
//! ([`dbex_query::QueryOutput::render`]), so a remote client and a local
//! shell are byte-identical:
//!
//! ```text
//! {"ok":true,"kind":"cad","text":"CAD View v:\n..."}
//! {"ok":false,"code":"PARSE","error":"syntax error: ..."}
//! {"ok":false,"code":"BUSY","error":"server at capacity (8 connections)"}
//! ```
//!
//! Everything is hand-rolled (zero-dependency contract): [`json_escape`]
//! on the way out, and a small recursive-descent scanner on the way in
//! that accepts exactly the flat string/bool/number objects this module
//! emits. Responses are produced and parsed through the same two types,
//! so the round-trip is property-testable.

use dbex_query::QueryError;
use std::collections::BTreeMap;

/// Stable wire code for each [`QueryError`] variant.
pub fn query_error_code(e: &QueryError) -> &'static str {
    match e {
        QueryError::Parse(_) => "PARSE",
        QueryError::Table(_) => "TABLE",
        QueryError::Cad(_) => "CAD",
        QueryError::Session(_) => "SESSION",
        QueryError::Panicked(_) => "PANIC",
    }
}

/// One parsed response line (one **frame** of a possibly multi-frame
/// response — see [`WireResponse::is_final`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireResponse {
    /// Whether the request succeeded.
    pub ok: bool,
    /// Output kind on success (`rows`, `cad`, `highlights`, `reordered`,
    /// `text`, `hello`).
    pub kind: Option<String>,
    /// Error code on failure (`PARSE`, `SESSION`, `BUSY`, `OVERSIZED`, ...).
    pub code: Option<String>,
    /// Frame number within a streamed response (`0` = first preview).
    /// `None` on classic single-frame responses.
    pub seq: Option<u64>,
    /// Whether this frame completes the response. `None` (untagged — every
    /// pre-streaming response) means final; `Some(false)` marks a preview
    /// frame with refinements still to come.
    pub fin: Option<bool>,
    /// Rendered output (success) or error message (failure).
    pub text: String,
}

impl WireResponse {
    /// A success line.
    pub fn ok(kind: &str, text: &str) -> WireResponse {
        WireResponse {
            ok: true,
            kind: Some(kind.to_owned()),
            code: None,
            seq: None,
            fin: None,
            text: text.to_owned(),
        }
    }

    /// An error line.
    pub fn err(code: &str, message: &str) -> WireResponse {
        WireResponse {
            ok: false,
            kind: None,
            code: Some(code.to_owned()),
            seq: None,
            fin: None,
            text: message.to_owned(),
        }
    }

    /// Tags this response as frame `seq` of a streamed response, final or
    /// not.
    pub fn with_stream_tags(mut self, seq: u64, fin: bool) -> WireResponse {
        self.seq = Some(seq);
        self.fin = Some(fin);
        self
    }

    /// Whether this frame completes its response. Untagged frames (the
    /// entire pre-streaming protocol) are final by definition, so old
    /// servers and streamed clients interoperate.
    pub fn is_final(&self) -> bool {
        self.fin.unwrap_or(true)
    }

    /// Serializes to one JSON line (no trailing newline). Field order is
    /// fixed (`ok`, `kind`, `code`, `seq`, `final`, `text`/`error`), which
    /// is what makes the byte-identity contract of streamed responses
    /// testable: a final frame with the `seq`/`final` tags removed is
    /// byte-identical to the classic single-frame line.
    pub fn to_line(&self) -> String {
        let mut out = String::from("{\"ok\":");
        out.push_str(if self.ok { "true" } else { "false" });
        if let Some(kind) = &self.kind {
            out.push_str(",\"kind\":\"");
            out.push_str(&json_escape(kind));
            out.push('"');
        }
        if let Some(code) = &self.code {
            out.push_str(",\"code\":\"");
            out.push_str(&json_escape(code));
            out.push('"');
        }
        if let Some(seq) = self.seq {
            out.push_str(",\"seq\":");
            out.push_str(&seq.to_string());
        }
        if let Some(fin) = self.fin {
            out.push_str(",\"final\":");
            out.push_str(if fin { "true" } else { "false" });
        }
        out.push_str(if self.ok { ",\"text\":\"" } else { ",\"error\":\"" });
        out.push_str(&json_escape(&self.text));
        out.push_str("\"}");
        out
    }

    /// Parses a response line. Strict about structure (it must be a flat
    /// JSON object with an `ok` bool) but tolerant of extra fields, so the
    /// format can grow without breaking old clients.
    pub fn parse(line: &str) -> Result<WireResponse, WireParseError> {
        let fields = parse_flat_object(line)?;
        let ok = match fields.get("ok") {
            Some(JsonScalar::Bool(b)) => *b,
            _ => return Err(WireParseError::new("missing or non-bool \"ok\" field")),
        };
        let get_str = |name: &str| match fields.get(name) {
            Some(JsonScalar::Str(s)) => Some(s.clone()),
            _ => None,
        };
        let seq = match fields.get("seq") {
            Some(JsonScalar::Num(n)) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        };
        let fin = match fields.get("final") {
            Some(JsonScalar::Bool(b)) => Some(*b),
            _ => None,
        };
        Ok(WireResponse {
            ok,
            kind: get_str("kind"),
            code: get_str("code"),
            seq,
            fin,
            text: get_str("text").or_else(|| get_str("error")).unwrap_or_default(),
        })
    }
}

/// Splices `"seq"`/`"final"` stream tags into an already-rendered
/// response line, immediately before its `text`/`error` field — the
/// server's way of tagging the oracle-checked final line **without**
/// re-rendering it, so the tagged frame minus the tags stays
/// byte-identical to the untagged line.
///
/// Safe to do textually: the payload field is always last, the fields
/// before it hold controlled vocabulary, and an *escaped* quote inside a
/// JSON string can never spell the unescaped `,"text":"` key sequence.
pub fn tag_stream_line(line: &str, seq: u64, fin: bool) -> String {
    let at = line
        .find(",\"text\":\"")
        .or_else(|| line.find(",\"error\":\""));
    match at {
        Some(at) => format!(
            "{}{}{}",
            &line[..at],
            format_args!(",\"seq\":{seq},\"final\":{fin}"),
            &line[at..]
        ),
        None => line.to_owned(),
    }
}

/// Removes the `"seq"`/`"final"` tags [`tag_stream_line`] added — the
/// determinism tests' byte-comparison primitive for streamed transcripts.
pub fn strip_stream_tags(line: &str) -> String {
    let Some(start) = line.find(",\"seq\":") else {
        return line.to_owned();
    };
    let Some(end) = line[start..]
        .find(",\"text\":\"")
        .or_else(|| line[start..].find(",\"error\":\""))
    else {
        return line.to_owned();
    };
    format!("{}{}", &line[..start], &line[start + end..])
}

/// A malformed response line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireParseError {
    /// What the scanner objected to.
    pub message: String,
}

impl WireParseError {
    fn new(message: impl Into<String>) -> WireParseError {
        WireParseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed response line: {}", self.message)
    }
}

impl std::error::Error for WireParseError {}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Scalar values the flat-object scanner accepts.
#[derive(Debug, Clone, PartialEq)]
enum JsonScalar {
    Str(String),
    Bool(bool),
    Num(f64),
    Null,
}

/// Parses `{"k":scalar,...}` — the exact shape this module emits. Nested
/// containers are rejected (the wire format is deliberately flat).
fn parse_flat_object(line: &str) -> Result<BTreeMap<String, JsonScalar>, WireParseError> {
    let mut scanner = Scanner {
        bytes: line.as_bytes(),
        pos: 0,
    };
    let fields = scanner.object()?;
    scanner.skip_ws();
    if scanner.pos != scanner.bytes.len() {
        return Err(WireParseError::new("trailing bytes after object"));
    }
    Ok(fields)
}

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Scanner<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), WireParseError> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(WireParseError::new(format!(
                "expected {:?} at byte {}",
                expected as char, self.pos
            )))
        }
    }

    fn object(&mut self) -> Result<BTreeMap<String, JsonScalar>, WireParseError> {
        self.eat(b'{')?;
        let mut fields = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(fields);
        }
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            let value = self.scalar()?;
            fields.insert(key, value);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(fields);
                }
                _ => return Err(WireParseError::new("expected ',' or '}'")),
            }
        }
    }

    fn scalar(&mut self) -> Result<JsonScalar, WireParseError> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'"') => Ok(JsonScalar::Str(self.string()?)),
            Some(b't') if self.bytes[self.pos..].starts_with(b"true") => {
                self.pos += 4;
                Ok(JsonScalar::Bool(true))
            }
            Some(b'f') if self.bytes[self.pos..].starts_with(b"false") => {
                self.pos += 5;
                Ok(JsonScalar::Bool(false))
            }
            Some(b'n') if self.bytes[self.pos..].starts_with(b"null") => {
                self.pos += 4;
                Ok(JsonScalar::Null)
            }
            Some(b) if b.is_ascii_digit() || *b == b'-' => {
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| WireParseError::new("non-UTF-8 number"))?;
                text.parse()
                    .map(JsonScalar::Num)
                    .map_err(|_| WireParseError::new(format!("bad number {text:?}")))
            }
            _ => Err(WireParseError::new(format!(
                "expected scalar at byte {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, WireParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(WireParseError::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| WireParseError::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| WireParseError::new("non-UTF-8 \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| WireParseError::new("bad \\u escape"))?;
                            // Surrogates never appear in our output (we
                            // only \u-escape control characters), so a
                            // lone surrogate is malformed input.
                            out.push(char::from_u32(cp).ok_or_else(|| {
                                WireParseError::new("\\u escape is not a scalar value")
                            })?);
                            self.pos += 4;
                        }
                        _ => return Err(WireParseError::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the line is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| WireParseError::new("non-UTF-8 string body"))?;
                    let c = s.chars().next().ok_or_else(|| {
                        WireParseError::new("unterminated string")
                    })?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_line_round_trips() {
        let resp = WireResponse::ok("cad", "CAD View v:\n| a | b |\n\ttab \"quote\" \\slash");
        let parsed = WireResponse::parse(&resp.to_line()).unwrap();
        assert_eq!(parsed, resp);
    }

    #[test]
    fn err_line_round_trips() {
        let resp = WireResponse::err("BUSY", "server at capacity (8 connections)");
        let line = resp.to_line();
        assert!(line.contains("\"ok\":false"));
        assert!(line.contains("\"code\":\"BUSY\""));
        assert_eq!(WireResponse::parse(&line).unwrap(), resp);
    }

    #[test]
    fn control_characters_survive() {
        let resp = WireResponse::ok("text", "bell\u{7} and \u{1f} end");
        let line = resp.to_line();
        assert!(line.contains("\\u0007"));
        assert_eq!(WireResponse::parse(&line).unwrap().text, "bell\u{7} and \u{1f} end");
    }

    #[test]
    fn unknown_fields_are_tolerated() {
        let parsed =
            WireResponse::parse("{\"ok\":true,\"kind\":\"text\",\"text\":\"x\",\"extra\":42}")
                .unwrap();
        assert!(parsed.ok);
        assert_eq!(parsed.text, "x");
    }

    #[test]
    fn malformed_lines_error_not_panic() {
        for bad in [
            "",
            "{",
            "nonsense",
            "{\"ok\":\"yes\"}",
            "{\"ok\":true",
            "{\"ok\":true}trailing",
            "{\"ok\":true,\"text\":\"\\u12\"}",
            "{\"ok\":true,\"text\":[1,2]}",
            "{\"ok\":true,\"text\":\"\\ud800\"}",
        ] {
            assert!(WireResponse::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn query_error_codes_cover_variants() {
        let err: QueryError = dbex_query::ParseError::UnexpectedEnd.into();
        assert_eq!(query_error_code(&err), "PARSE");
    }

    #[test]
    fn stream_tags_round_trip_and_strip_to_identity() {
        let tagged = WireResponse::ok("cad", "preview body\n").with_stream_tags(0, false);
        let line = tagged.to_line();
        let parsed = WireResponse::parse(&line).unwrap();
        assert_eq!(parsed.seq, Some(0));
        assert_eq!(parsed.fin, Some(false));
        assert!(!parsed.is_final());
        assert_eq!(parsed, tagged);

        // Untagged responses are final by definition.
        let plain = WireResponse::ok("rows", "x\n");
        assert!(plain.is_final());
        assert_eq!(WireResponse::parse(&plain.to_line()).unwrap().fin, None);
    }

    #[test]
    fn tag_splice_matches_constructed_order_and_strips_clean() {
        // Splicing tags into an already-rendered line must produce the
        // same bytes as constructing the response with tags — that is
        // what guarantees a final streamed frame minus tags is
        // byte-identical to the classic single-frame line.
        for resp in [
            WireResponse::ok("cad", "CAD View v:\nwith \"quotes\" and ,\"text\":\" inside\n"),
            WireResponse::err("SESSION", "unknown table \"x\""),
        ] {
            let plain = resp.to_line();
            let spliced = tag_stream_line(&plain, 1, true);
            let constructed = resp.clone().with_stream_tags(1, true).to_line();
            assert_eq!(spliced, constructed);
            assert_eq!(strip_stream_tags(&spliced), plain);
            let parsed = WireResponse::parse(&spliced).unwrap();
            assert_eq!(parsed.seq, Some(1));
            assert_eq!(parsed.fin, Some(true));
            assert_eq!(parsed.text, resp.text);
        }
        // Lines without a payload field pass through untouched.
        assert_eq!(tag_stream_line("{\"ok\":true}", 0, true), "{\"ok\":true}");
        assert_eq!(strip_stream_tags("{\"ok\":true}"), "{\"ok\":true}");
    }
}
