//! A tiny std-only readiness poller — the foundation of the evented
//! serve core.
//!
//! The zero-dependency constraint rules out `libc`/`mio`, but std itself
//! links the platform libc, so the handful of syscalls a readiness loop
//! needs are declared here directly (the same idiom as the signal shim in
//! the `dbex` binary):
//!
//! * **Linux** — `epoll` (level-triggered). `epoll_event` is packed on
//!   x86-64, matching the kernel ABI.
//! * **Other unix** — a `poll(2)` fallback that rebuilds the `pollfd`
//!   array from its registration table on every wait. O(n) per wait where
//!   epoll is O(ready), but correct, and fine at fallback scale.
//!
//! The API is deliberately minimal: register a raw fd with a `u64` token
//! and an [`Interest`], and [`Poller::wait`] reports which tokens became
//! readable/writable (or hung up). Level-triggered semantics everywhere:
//! an fd that still has unread bytes reports readable again on the next
//! wait, so the event loop never needs to drain-until-`WouldBlock` for
//! correctness — only for throughput.

#[cfg(not(unix))]
compile_error!("dbex-serve's evented core needs a unix readiness syscall (epoll or poll)");

use std::io;
use std::net::{TcpListener, ToSocketAddrs};
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Which readiness kinds a registration subscribes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only — a connection with a full pipeline and a backed-up
    /// write buffer.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Neither direction — parked (registration kept, no wakeups).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd has bytes to read (or EOF to observe).
    pub readable: bool,
    /// The fd can accept more bytes.
    pub writable: bool,
    /// The peer closed or the fd errored; the owner should read to
    /// observe the EOF/error and tear the connection down.
    pub hangup: bool,
}

/// A readiness poller over raw fds. See the module docs.
#[derive(Debug)]
pub struct Poller {
    imp: imp::Poller,
}

impl Poller {
    /// Creates an empty poller.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller { imp: imp::Poller::new()? })
    }

    /// Registers `fd` under `token`. One registration per fd; re-register
    /// an existing fd with [`Poller::modify`].
    pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.imp.add(fd, token, interest)
    }

    /// Updates the interest set (and token) of a registered fd.
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.imp.modify(fd, token, interest)
    }

    /// Removes a registration. Must be called before the fd is closed.
    pub fn delete(&mut self, fd: RawFd) -> io::Result<()> {
        self.imp.delete(fd)
    }

    /// Blocks until at least one registered fd is ready (or `timeout`
    /// elapses — `None` blocks indefinitely), appending one [`Event`] per
    /// ready fd to `events` (cleared first). Interrupted waits (`EINTR`)
    /// return an empty event set rather than an error.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        self.imp.wait(events, timeout)
    }
}

/// Clamps an optional wait timeout to the `int` milliseconds the syscalls
/// take (`-1` = infinite), rounding sub-millisecond waits up so a short
/// timeout cannot spin at 100% CPU.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(t) => t.as_millis().clamp(if t.is_zero() { 0 } else { 1 }, i32::MAX as u128) as i32,
    }
}

/// Binds a TCP listener with an explicit `listen(2)` backlog.
///
/// `TcpListener::bind` hardcodes a backlog of 128, which a
/// thousand-session connect ramp overflows: excess SYNs are silently
/// dropped and retried by the client kernel on a seconds-long schedule.
/// On Linux this builds the socket by hand (`socket`/`bind`/`listen`)
/// so the backlog is configurable (still clamped by the kernel's
/// `net.core.somaxconn`); elsewhere it falls back to the std path and
/// its default backlog.
pub fn listen_with_backlog(addr: impl ToSocketAddrs, backlog: u32) -> io::Result<TcpListener> {
    let mut last_err = io::Error::new(io::ErrorKind::InvalidInput, "no address to bind");
    for candidate in addr.to_socket_addrs()? {
        match imp::listen_one(candidate, backlog) {
            Ok(listener) => return Ok(listener),
            Err(e) => last_err = e,
        }
    }
    Err(last_err)
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{timeout_ms, Event, Interest};
    use std::io;
    use std::net::{SocketAddr, TcpListener};
    use std::os::unix::io::{FromRawFd, RawFd};
    use std::time::Duration;

    // Kernel ABI, x86-64 values (identical across Linux architectures for
    // everything used here except the epoll_event packing, handled below).
    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const AF_INET: i32 = 2;
    const AF_INET6: i32 = 10;
    const SOCK_STREAM: i32 = 1;
    const SOCK_CLOEXEC: i32 = 0o2000000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;

    /// `struct epoll_event`. Packed on x86-64 (the kernel ABI differs
    /// from natural alignment there); naturally aligned elsewhere.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[repr(C)]
    struct SockAddrIn {
        family: u16,
        port: u16,
        addr: u32,
        zero: [u8; 8],
    }

    #[repr(C)]
    struct SockAddrIn6 {
        family: u16,
        port: u16,
        flowinfo: u32,
        addr: [u8; 16],
        scope_id: u32,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn bind(fd: i32, addr: *const u8, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const u8, len: u32) -> i32;
    }

    fn last_os_error() -> io::Error {
        io::Error::last_os_error()
    }

    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
        /// Reused syscall buffer; grows to the largest ready set seen.
        buf: Vec<u64>,
    }

    // One `EpollEvent` is 12 packed (or 16 aligned) bytes; a `u64` pair
    // slot per event keeps the buffer alignment simple.
    const EVENT_SLOTS: usize = 2;
    const MAX_EVENTS: usize = 1024;

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(last_os_error());
            }
            Ok(Poller {
                epfd,
                buf: vec![0u64; MAX_EVENTS * EVENT_SLOTS],
            })
        }

        fn mask(interest: Interest) -> u32 {
            let mut mask = EPOLLRDHUP;
            if interest.readable {
                mask |= EPOLLIN;
            }
            if interest.writable {
                mask |= EPOLLOUT;
            }
            mask
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: Self::mask(interest),
                data: token,
            };
            let arg = if op == EPOLL_CTL_DEL {
                std::ptr::null_mut()
            } else {
                &mut ev as *mut EpollEvent
            };
            if unsafe { epoll_ctl(self.epfd, op, fd, arg) } < 0 {
                return Err(last_os_error());
            }
            Ok(())
        }

        pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn delete(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::NONE)
        }

        pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr().cast::<EpollEvent>(),
                    MAX_EVENTS as i32,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let e = last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for i in 0..n as usize {
                // Copy out of the (possibly packed) slot before touching
                // fields, so no unaligned reference is ever formed.
                let raw: EpollEvent =
                    unsafe { std::ptr::read_unaligned(self.buf.as_ptr().cast::<EpollEvent>().add(i)) };
                let bits = raw.events;
                events.push(Event {
                    token: raw.data,
                    readable: bits & EPOLLIN != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }

    /// `socket` + `SO_REUSEADDR` + `bind` + `listen(backlog)` for one
    /// candidate address.
    pub fn listen_one(addr: SocketAddr, backlog: u32) -> io::Result<TcpListener> {
        let domain = match addr {
            SocketAddr::V4(_) => AF_INET,
            SocketAddr::V6(_) => AF_INET6,
        };
        let fd = unsafe { socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0) };
        if fd < 0 {
            return Err(last_os_error());
        }
        // On error from here on, close the fd before returning.
        let result = (|| {
            let one: i32 = 1;
            if unsafe {
                setsockopt(
                    fd,
                    SOL_SOCKET,
                    SO_REUSEADDR,
                    (&one as *const i32).cast::<u8>(),
                    std::mem::size_of::<i32>() as u32,
                )
            } < 0
            {
                return Err(last_os_error());
            }
            let rc = match addr {
                SocketAddr::V4(v4) => {
                    let sa = SockAddrIn {
                        family: AF_INET as u16,
                        port: v4.port().to_be(),
                        addr: u32::from_be_bytes(v4.ip().octets()).to_be(),
                        zero: [0; 8],
                    };
                    unsafe {
                        bind(
                            fd,
                            (&sa as *const SockAddrIn).cast::<u8>(),
                            std::mem::size_of::<SockAddrIn>() as u32,
                        )
                    }
                }
                SocketAddr::V6(v6) => {
                    let sa = SockAddrIn6 {
                        family: AF_INET6 as u16,
                        port: v6.port().to_be(),
                        flowinfo: v6.flowinfo(),
                        addr: v6.ip().octets(),
                        scope_id: v6.scope_id(),
                    };
                    unsafe {
                        bind(
                            fd,
                            (&sa as *const SockAddrIn6).cast::<u8>(),
                            std::mem::size_of::<SockAddrIn6>() as u32,
                        )
                    }
                }
            };
            if rc < 0 {
                return Err(last_os_error());
            }
            if unsafe { listen(fd, backlog.min(i32::MAX as u32) as i32) } < 0 {
                return Err(last_os_error());
            }
            Ok(())
        })();
        match result {
            Ok(()) => Ok(unsafe { TcpListener::from_raw_fd(fd) }),
            Err(e) => {
                unsafe { close(fd) };
                Err(e)
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use super::{timeout_ms, Event, Interest};
    use std::collections::BTreeMap;
    use std::io;
    use std::net::{SocketAddr, TcpListener};
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// `poll(2)` fallback: the registration table lives here and the
    /// `pollfd` array is rebuilt per wait.
    #[derive(Debug)]
    pub struct Poller {
        registered: BTreeMap<RawFd, (u64, Interest)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: BTreeMap::new(),
            })
        }

        pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            if self.registered.contains_key(&fd) {
                return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd registered"));
            }
            self.registered.insert(fd, (token, interest));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            match self.registered.get_mut(&fd) {
                Some(slot) => {
                    *slot = (token, interest);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn delete(&mut self, fd: RawFd) -> io::Result<()> {
            match self.registered.remove(&fd) {
                Some(_) => Ok(()),
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let mut fds: Vec<PollFd> = self
                .registered
                .iter()
                .map(|(&fd, &(_, interest))| PollFd {
                    fd,
                    events: if interest.readable { POLLIN } else { 0 }
                        | if interest.writable { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms(timeout)) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for pfd in &fds {
                if pfd.revents == 0 {
                    continue;
                }
                if let Some(&(token, _)) = self.registered.get(&pfd.fd) {
                    events.push(Event {
                        token,
                        readable: pfd.revents & POLLIN != 0,
                        writable: pfd.revents & POLLOUT != 0,
                        hangup: pfd.revents & (POLLERR | POLLHUP) != 0,
                    });
                }
            }
            Ok(())
        }
    }

    /// No portable backlog control off Linux: std's default backlog.
    pub fn listen_one(addr: SocketAddr, _backlog: u32) -> io::Result<TcpListener> {
        TcpListener::bind(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readable_after_peer_writes() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(b.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty(), "nothing written yet: {events:?}");

        a.write_all(b"x").unwrap();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
    }

    #[test]
    fn level_triggered_until_drained() {
        let (mut a, mut b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(b.as_raw_fd(), 1, Interest::READ).unwrap();
        a.write_all(b"abc").unwrap();

        let mut events = Vec::new();
        for _ in 0..2 {
            poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
            assert_eq!(events.len(), 1, "unread bytes must re-report readable");
        }
        let mut buf = [0u8; 8];
        let n = b.read(&mut buf).unwrap();
        assert_eq!(n, 3);
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty(), "drained fd must stop reporting readable");
    }

    #[test]
    fn writable_reported_and_maskable() {
        let (a, _b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(a.as_raw_fd(), 3, Interest::BOTH).unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.writable));

        // Masking write interest silences the (always-ready) writable
        // report — the interest re-registration the server leans on.
        poller.modify(a.as_raw_fd(), 3, Interest::READ).unwrap();
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty(), "masked fd still reported: {events:?}");
    }

    #[test]
    fn hangup_reported_on_peer_close() {
        let (a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(b.as_raw_fd(), 9, Interest::READ).unwrap();
        drop(a);

        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(events.len(), 1);
        assert!(
            events[0].hangup || events[0].readable,
            "peer close must surface as hangup or readable-EOF: {:?}",
            events[0]
        );
    }

    #[test]
    fn delete_stops_reports() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(b.as_raw_fd(), 4, Interest::READ).unwrap();
        a.write_all(b"x").unwrap();
        poller.delete(b.as_raw_fd()).unwrap();

        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_millis(10))).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn backlog_listener_accepts_connections() {
        let listener = listen_with_backlog("127.0.0.1:0", 4096).unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || TcpStream::connect(addr).map(|_| ()));
        let (stream, _) = listener.accept().unwrap();
        drop(stream);
        t.join().unwrap().unwrap();
    }

    #[test]
    fn tokens_distinguish_many_fds() {
        let pairs: Vec<(UnixStream, UnixStream)> =
            (0..16).map(|_| UnixStream::pair().unwrap()).collect();
        let mut poller = Poller::new().unwrap();
        for (i, (_, b)) in pairs.iter().enumerate() {
            b.set_nonblocking(true).unwrap();
            poller.add(b.as_raw_fd(), 100 + i as u64, Interest::READ).unwrap();
        }
        // Write to every other pair and require exactly those tokens.
        for (i, (a, _)) in pairs.iter().enumerate() {
            if i % 2 == 0 {
                let mut a = a;
                a.write_all(b"y").unwrap();
            }
        }
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        let mut tokens: Vec<u64> = events.iter().map(|e| e.token).collect();
        tokens.sort_unstable();
        let expected: Vec<u64> = (0..16).filter(|i| i % 2 == 0).map(|i| 100 + i as u64).collect();
        assert_eq!(tokens, expected);
    }
}
