//! The concurrent wire server: shared catalog, shared stats cache, one
//! session per connection.
//!
//! # Architecture
//!
//! ```text
//! accept loop ──▶ per-connection thread (executor)
//!                   ├ reader thread: frames → bounded channel,
//!                   │                EOF/error → cancel flag
//!                   └ executor: Session::execute → JSON line
//!                      ▲ shared: Arc<SharedCatalog>, Arc<StatsCache>
//! ```
//!
//! Each accepted connection gets its own [`Session`] (so CAD Views,
//! budgets and `REORDER` state stay private), but every session points at
//! the same [`SharedCatalog`] of `Arc`-immutable tables and the same
//! process-wide [`StatsCache`] — one client's CAD build warms every other
//! client's refinements.
//!
//! # Backpressure ladder
//!
//! 1. Per-connection pipelining is bounded by a small channel
//!    ([`PIPELINE_DEPTH`] in-flight requests); beyond it the client's TCP
//!    stream simply stops being read.
//! 2. Connections over [`ServeConfig::max_connections`] are rejected
//!    immediately with a typed `BUSY` response and a close — never queued
//!    unboundedly.
//! 3. Per-request work is bounded by the configured
//!    [`ServeConfig::request_time_limit`]: past the deadline a CAD build
//!    degrades (it never fails), so the response still arrives.
//! 4. A client that disconnects mid-request fires the connection's cancel
//!    flag; the running build observes it as an expired deadline and
//!    finishes on the cheapest degradation rungs instead of wasting the
//!    server's time on an answer nobody will read.

use crate::protocol::{read_frame_with, ProtocolError, MAX_FRAME};
use crate::wire::{query_error_code, WireResponse};
use dbex_core::{ExecBudget, StatsCache, Tracer};
use dbex_data::{HotelsGenerator, MushroomGenerator, UsedCarsGenerator};
use dbex_obs::TraceSink;
use dbex_query::{QueryOutput, Session, SharedCatalog};
use dbex_store::{RealVfs, SaveReport, StoreError};
use dbex_table::Table;
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// In-flight pipelined requests per connection before the reader stops
/// pulling frames off the socket.
pub const PIPELINE_DEPTH: usize = 16;

/// Bucket bounds (milliseconds) for the `server.request_ms` histogram.
const REQUEST_MS_BOUNDS: &[f64] = &[1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0];

/// Server configuration.
#[derive(Clone)]
pub struct ServeConfig {
    /// Concurrent-connection cap; connection `max_connections + 1` gets a
    /// typed `BUSY` response and an immediate close.
    pub max_connections: usize,
    /// Per-request wall-clock deadline applied to every session's
    /// [`ExecBudget`]; past it CAD builds degrade rather than fail.
    /// `None` = no deadline.
    pub request_time_limit: Option<Duration>,
    /// Worker threads per CAD build (`1` = sequential, `0` = auto).
    pub threads: usize,
    /// When set, every request is traced (a `serve_request` root span with
    /// request/response byte counts) and the trace forwarded here.
    pub trace_sink: Option<Arc<dyn TraceSink>>,
    /// Per-request frame cap; a frame declaring more is rejected with a
    /// typed `OVERSIZED` response before any payload byte is read.
    /// Defaults to [`MAX_FRAME`] (1 MiB).
    pub max_frame_bytes: usize,
    /// Snapshot directory for the durable catalog. When set,
    /// [`Server::bind`] warm-restarts from the newest loadable generation
    /// and [`ServerHandle::shutdown`] flushes a final snapshot.
    pub data_dir: Option<PathBuf>,
    /// Background autosave cadence. Snapshots are only written when the
    /// catalog or the exact-cluster cache actually changed. Requires
    /// `data_dir`.
    pub autosave_interval: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_connections: 64,
            request_time_limit: None,
            threads: 1,
            trace_sink: None,
            max_frame_bytes: MAX_FRAME,
            data_dir: None,
            autosave_interval: None,
        }
    }
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("max_connections", &self.max_connections)
            .field("request_time_limit", &self.request_time_limit)
            .field("threads", &self.threads)
            .field("trace_sink", &self.trace_sink.is_some())
            .field("max_frame_bytes", &self.max_frame_bytes)
            .field("data_dir", &self.data_dir)
            .field("autosave_interval", &self.autosave_interval)
            .finish()
    }
}

/// One tracked connection: the stream (to unblock its reader during a
/// drain) and the executor thread (to join at shutdown).
struct ConnSlot {
    stream: Option<TcpStream>,
    handle: JoinHandle<()>,
}

/// State shared by the accept loop, every connection, and the handle.
struct Shared {
    catalog: Arc<SharedCatalog>,
    cache: Arc<StatsCache>,
    config: ServeConfig,
    active: AtomicUsize,
    shutdown: AtomicBool,
    /// Graceful drain in progress: readers that hit EOF (because shutdown
    /// half-closed their streams) must NOT fire the cancel flag, so
    /// in-flight builds finish and their responses go out.
    draining: AtomicBool,
    busy_rejections: AtomicU64,
    panics: AtomicU64,
    /// Live connection threads, joined (bounded) at shutdown.
    conns: Mutex<Vec<ConnSlot>>,
    /// Serialises snapshot writes (wire `.save`, autosave, final flush).
    save_lock: Mutex<()>,
    /// Catalog version as of the last committed snapshot.
    saved_catalog_version: AtomicU64,
    /// Exact-cluster cache entry count as of the last committed snapshot.
    saved_cluster_entries: AtomicUsize,
}

impl Shared {
    fn set_connections_gauge(&self) {
        dbex_obs::gauge!("server.connections").set(self.active.load(Ordering::SeqCst) as i64);
    }

    fn lock_conns(&self) -> std::sync::MutexGuard<'_, Vec<ConnSlot>> {
        self.conns.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Whether the catalog or warm-cluster state changed since the last
    /// snapshot (always true on the very first check of a cold start with
    /// tables).
    fn snapshot_dirty(&self) -> bool {
        self.catalog.version() != self.saved_catalog_version.load(Ordering::Acquire)
            || self.cache.exact_cluster_entries()
                != self.saved_cluster_entries.load(Ordering::Acquire)
    }

    /// Writes a snapshot of the shared catalog + cluster cache to the
    /// configured data dir. Serialised by `save_lock` so the wire `.save`,
    /// the autosaver, and the shutdown flush never interleave.
    fn flush_snapshot(&self) -> Result<SaveReport, StoreError> {
        let dir = self.config.data_dir.as_deref().ok_or_else(|| StoreError::NoManifest {
            dir: PathBuf::from("(no --data-dir configured)"),
        })?;
        let _guard = self.save_lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        let version = self.catalog.version();
        let tables = self.catalog.snapshot();
        let report = dbex_store::save(&RealVfs, dir, &tables, Some(&self.cache))?;
        self.saved_catalog_version.store(version, Ordering::Release);
        self.saved_cluster_entries.store(report.cluster_entries, Ordering::Release);
        Ok(report)
    }
}

/// A bound, not-yet-running server. [`Server::spawn`] starts the accept
/// loop on a background thread and returns the controlling handle.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral test port) with
    /// a fresh shared catalog and stats cache.
    ///
    /// When [`ServeConfig::data_dir`] is set, the catalog **warm
    /// restarts**: the newest loadable snapshot generation is opened,
    /// its tables registered, and its persisted cluster solutions
    /// rehydrated into the shared stats cache — so the first CAD build
    /// after a crash reuses partitions instead of clustering cold. A
    /// directory with no manifest is a cold start; a directory where
    /// every generation is corrupt fails the bind (serving an empty
    /// catalog where one was expected would be silent data loss).
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<Server> {
        let catalog = Arc::new(SharedCatalog::new());
        let cache = Arc::new(StatsCache::new());
        if let Some(dir) = &config.data_dir {
            match dbex_store::open(&RealVfs, dir) {
                Ok(report) => {
                    for (name, table) in &report.tables {
                        catalog.insert(name.clone(), Arc::clone(table));
                    }
                    let rehydrated = report.rehydrate_into(&cache);
                    dbex_obs::gauge!("store.rehydrated_clusters").set(rehydrated as i64);
                    if report.fallbacks > 0 {
                        eprintln!(
                            "dbex-serve: recovered generation {} after {} corrupt generation(s)",
                            report.generation, report.fallbacks
                        );
                    }
                }
                Err(StoreError::NoManifest { .. }) => {} // cold start
                Err(e) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("cannot open data dir {}: {e}", dir.display()),
                    ))
                }
            }
        }
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            catalog,
            cache,
            config,
            active: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            busy_rejections: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
            save_lock: Mutex::new(()),
            saved_catalog_version: AtomicU64::new(0),
            saved_cluster_entries: AtomicUsize::new(0),
        });
        // The just-recovered state is by definition in sync with disk.
        shared
            .saved_catalog_version
            .store(shared.catalog.version(), Ordering::Release);
        shared
            .saved_cluster_entries
            .store(shared.cache.exact_cluster_entries(), Ordering::Release);
        Ok(Server {
            listener,
            addr,
            shared,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Registers a table into the shared catalog before (or while)
    /// serving.
    pub fn preload(&self, name: impl Into<String>, table: Table) {
        self.shared.catalog.insert(name, Arc::new(table));
    }

    /// The shared catalog.
    pub fn catalog(&self) -> Arc<SharedCatalog> {
        Arc::clone(&self.shared.catalog)
    }

    /// The process-wide stats cache every session shares.
    pub fn cache(&self) -> Arc<StatsCache> {
        Arc::clone(&self.shared.cache)
    }

    /// Starts the accept loop (and, when configured, the autosaver) on
    /// background threads. Fails only when the OS cannot spawn a thread.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let shared = Arc::clone(&self.shared);
        let listener = self.listener;
        let accept = std::thread::Builder::new()
            .name("dbex-serve-accept".into())
            .spawn(move || accept_loop(listener, shared))?;
        let autosave = match (&self.shared.config.data_dir, self.shared.config.autosave_interval) {
            (Some(_), Some(interval)) => {
                let shared = Arc::clone(&self.shared);
                Some(
                    std::thread::Builder::new()
                        .name("dbex-serve-autosave".into())
                        .spawn(move || autosave_loop(&shared, interval))?,
                )
            }
            _ => None,
        };
        Ok(ServerHandle {
            addr: self.addr,
            shared: self.shared,
            accept: Some(accept),
            autosave,
        })
    }
}

/// Polls at a short cadence (so shutdown is prompt) and snapshots whenever
/// `interval` has elapsed since the last save **and** something changed.
fn autosave_loop(shared: &Shared, interval: Duration) {
    let mut last_save = Instant::now();
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
        if last_save.elapsed() < interval {
            continue;
        }
        if shared.snapshot_dirty() {
            match shared.flush_snapshot() {
                Ok(report) => {
                    dbex_obs::counter!("store.autosaves").incr(1);
                    dbex_obs::gauge!("store.generation").set(report.generation as i64);
                }
                Err(e) => eprintln!("dbex-serve: autosave failed: {e}"),
            }
        }
        last_save = Instant::now();
    }
}

/// What a graceful shutdown did. Returned by [`ServerHandle::shutdown`];
/// callers that don't persist can ignore it.
#[derive(Debug, Default)]
pub struct ShutdownSummary {
    /// Whether a final snapshot was written (false when no data dir is
    /// configured or nothing changed since the last save).
    pub flushed: bool,
    /// Generation of the final snapshot, when one was written.
    pub generation: Option<u64>,
    /// Rendered error if the final flush failed — the catalog on disk is
    /// then the last successful generation, never a torn one.
    pub flush_error: Option<String>,
}

/// Controls a running server: address, live counters, shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    autosave: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared catalog (also reachable by clients via `.load`).
    pub fn catalog(&self) -> Arc<SharedCatalog> {
        Arc::clone(&self.shared.catalog)
    }

    /// The process-wide stats cache every session shares.
    pub fn cache(&self) -> Arc<StatsCache> {
        Arc::clone(&self.shared.cache)
    }

    /// Connections currently open (mirrors the `server.connections` gauge).
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Connections rejected with `BUSY` since startup.
    pub fn busy_rejections(&self) -> u64 {
        self.shared.busy_rejections.load(Ordering::Relaxed)
    }

    /// Panics caught at the connection boundary since startup (always 0
    /// unless there is a bug below the session's own panic boundary).
    pub fn panics(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Gracefully stops the server: stops accepting, half-closes every
    /// open connection so in-flight requests finish and their responses
    /// go out, **joins** every connection thread (bounded), and — when a
    /// data dir is configured — flushes a final snapshot.
    pub fn shutdown(mut self) -> ShutdownSummary {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> ShutdownSummary {
        let Some(accept) = self.accept.take() else {
            return ShutdownSummary::default();
        };
        // Drain first, then shutdown: readers unblocked by the half-close
        // below must see `draining` set so they don't cancel in-flight
        // builds.
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = accept.join();
        if let Some(autosave) = self.autosave.take() {
            let _ = autosave.join();
        }

        // Half-close every tracked connection: the reader sees EOF (no
        // cancel, because draining), the executor finishes the pipeline
        // and exits.
        let mut conns = std::mem::take(&mut *self.shared.lock_conns());
        for slot in &conns {
            if let Some(stream) = &slot.stream {
                let _ = stream.shutdown(Shutdown::Read);
            }
        }
        // Bounded join: a connection wedged past the deadline is leaked
        // (detached), not waited on forever.
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline && !conns.iter().all(|s| s.handle.is_finished()) {
            std::thread::sleep(Duration::from_millis(5));
        }
        for slot in conns.drain(..) {
            if slot.handle.is_finished() {
                let _ = slot.handle.join();
            }
        }
        let deadline = Instant::now() + Duration::from_secs(1);
        while self.shared.active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }

        // Final flush, now that no connection can mutate the catalog.
        let mut summary = ShutdownSummary::default();
        if self.shared.config.data_dir.is_some() && self.shared.snapshot_dirty() {
            match self.shared.flush_snapshot() {
                Ok(report) => {
                    summary.flushed = true;
                    summary.generation = Some(report.generation);
                }
                Err(e) => summary.flush_error = Some(e.to_string()),
            }
        }
        summary
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let slot = shared.active.fetch_add(1, Ordering::SeqCst) + 1;
        shared.set_connections_gauge();
        if slot > shared.config.max_connections {
            // Backpressure rung 2: typed rejection, never an unbounded
            // queue. The write is bounded by a timeout so a stalled
            // client cannot wedge the accept loop.
            shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
            dbex_obs::counter!("server.busy_rejections").incr(1);
            let busy = WireResponse::err(
                "BUSY",
                &format!(
                    "server at capacity ({} connections)",
                    shared.config.max_connections
                ),
            );
            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
            let mut stream = stream;
            let _ = writeln!(stream, "{}", busy.to_line());
            let _ = stream.shutdown(Shutdown::Both);
            shared.active.fetch_sub(1, Ordering::SeqCst);
            shared.set_connections_gauge();
            continue;
        }
        let drain_stream = stream.try_clone().ok();
        let conn_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("dbex-serve-conn".into())
            .spawn(move || {
                let result =
                    catch_unwind(AssertUnwindSafe(|| handle_connection(&stream, &conn_shared)));
                if result.is_err() {
                    conn_shared.panics.fetch_add(1, Ordering::Relaxed);
                    dbex_obs::counter!("server.panics").incr(1);
                }
                let _ = stream.shutdown(Shutdown::Both);
                conn_shared.active.fetch_sub(1, Ordering::SeqCst);
                conn_shared.set_connections_gauge();
            });
        match spawned {
            Ok(handle) => {
                let mut conns = shared.lock_conns();
                // Reap slots whose threads already exited; dropping a
                // finished JoinHandle just detaches it.
                conns.retain(|slot| !slot.handle.is_finished());
                conns.push(ConnSlot {
                    stream: drain_stream,
                    handle,
                });
            }
            Err(_) => {
                shared.active.fetch_sub(1, Ordering::SeqCst);
                shared.set_connections_gauge();
            }
        }
    }
}

/// Reads frames into a bounded channel; fires the cancel flag the moment
/// the client goes away so an in-flight build stops wasting time.
///
/// During a graceful drain the server half-closes the read side itself,
/// so the resulting EOF (or read error) must *not* cancel: the in-flight
/// request finishes and its response still goes out.
fn reader_loop(
    stream: TcpStream,
    tx: std::sync::mpsc::SyncSender<Result<String, ProtocolError>>,
    cancel: Arc<AtomicBool>,
    shared: Arc<Shared>,
) {
    let max_frame = shared.config.max_frame_bytes;
    let mut reader = BufReader::new(stream);
    loop {
        match read_frame_with(&mut reader, max_frame) {
            Ok(Some(request)) => {
                if tx.send(Ok(request)).is_err() {
                    break; // executor gone
                }
            }
            Ok(None) => {
                // Clean disconnect. Cancel any in-flight build — unless
                // this EOF is the server draining itself.
                if !shared.draining.load(Ordering::SeqCst) {
                    cancel.store(true, Ordering::Relaxed);
                }
                break;
            }
            Err(e) => {
                // Io/Truncated mean the client is gone mid-frame; cancel.
                // Oversized/BadUtf8 leave the client connected but the
                // framing unrecoverable: report, then the executor closes.
                if matches!(e, ProtocolError::Io(_) | ProtocolError::Truncated { .. })
                    && !shared.draining.load(Ordering::SeqCst)
                {
                    cancel.store(true, Ordering::Relaxed);
                }
                let _ = tx.send(Err(e));
                break;
            }
        }
    }
}

fn handle_connection(stream: &TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let (tx, rx) = sync_channel::<Result<String, ProtocolError>>(PIPELINE_DEPTH);
    let cancel = Arc::new(AtomicBool::new(false));
    let reader = match stream.try_clone() {
        Ok(clone) => {
            let cancel = Arc::clone(&cancel);
            let reader_shared = Arc::clone(shared);
            std::thread::Builder::new()
                .name("dbex-serve-read".into())
                .spawn(move || reader_loop(clone, tx, cancel, reader_shared))
                .ok()
        }
        Err(_) => None,
    };
    if reader.is_some() {
        execute_loop(stream, shared, &cancel, &rx);
    }
    // Unblock the reader (it may be parked in read_frame) and collect it.
    let _ = stream.shutdown(Shutdown::Both);
    if let Some(reader) = reader {
        let _ = reader.join();
    }
}

/// The executor half of a connection: hello line, then one response line
/// per received frame.
fn execute_loop(
    stream: &TcpStream,
    shared: &Shared,
    cancel: &Arc<AtomicBool>,
    rx: &Receiver<Result<String, ProtocolError>>,
) {
    let mut writer = match stream.try_clone() {
        Ok(clone) => BufWriter::new(clone),
        Err(_) => return,
    };
    let max_frame = shared.config.max_frame_bytes;
    let hello = WireResponse::ok(
        "hello",
        &format!("dbex-serve ready; max_frame={max_frame} bytes, one statement per frame"),
    );
    if writeln!(writer, "{}", hello.to_line()).and_then(|()| writer.flush()).is_err() {
        return;
    }

    let mut session = Session::new();
    session.set_catalog(Some(Arc::clone(&shared.catalog)));
    session.set_stats_cache(Arc::clone(&shared.cache));
    if shared.config.threads != 1 {
        session.set_threads(shared.config.threads);
    }
    let mut budget = ExecBudget::unlimited().with_cancel_flag(Arc::clone(cancel));
    if let Some(limit) = shared.config.request_time_limit {
        budget = budget.with_time_limit(limit);
    }
    session.set_budget(budget);

    for message in rx.iter() {
        match message {
            Ok(request) => {
                let started = Instant::now();
                dbex_obs::counter!("server.requests").incr(1);
                let tracer = if shared.config.trace_sink.is_some() {
                    Tracer::enabled()
                } else {
                    Tracer::disabled()
                };
                let line = {
                    let span = tracer.root("serve_request");
                    span.add("request_bytes", request.len() as u64);
                    // `.save` needs the server's data dir and save lock,
                    // which sessions don't have — intercept it before the
                    // shared (oracle-checked) dispatch point.
                    let line = if request.trim() == ".save" {
                        save_request(shared).to_line()
                    } else {
                        handle_request(&mut session, &shared.catalog, &request)
                    };
                    span.add("response_bytes", line.len() as u64);
                    line
                };
                if let (Some(sink), Some(trace)) =
                    (&shared.config.trace_sink, tracer.finish())
                {
                    sink.record(&trace);
                }
                let ok = writeln!(writer, "{line}").and_then(|()| writer.flush()).is_ok();
                dbex_obs::histogram!("server.request_ms", REQUEST_MS_BOUNDS)
                    .observe_ms(started.elapsed());
                if !ok {
                    break; // client gone; reader has fired the cancel flag
                }
            }
            Err(protocol_error) => {
                dbex_obs::counter!("server.protocol_errors").incr(1);
                let line = WireResponse::err(protocol_error.code(), &protocol_error.to_string())
                    .to_line();
                let _ = writeln!(writer, "{line}").and_then(|()| writer.flush());
                break; // framing unrecoverable: close
            }
        }
    }
}

/// Maps a [`QueryOutput`] to its wire `kind` tag.
fn output_kind(output: &QueryOutput) -> &'static str {
    match output {
        QueryOutput::Rows { .. } => "rows",
        QueryOutput::Cad { .. } => "cad",
        QueryOutput::Highlights(_) => "highlights",
        QueryOutput::Reordered(_) => "reordered",
        QueryOutput::Text(_) => "text",
    }
}

/// Executes one wire request against a session and renders the response
/// line (no trailing newline).
///
/// This is the single dispatch point shared by the live server and
/// [`oracle_transcript`], so a multi-client run can be diffed against a
/// single-session oracle byte for byte.
pub fn handle_request(session: &mut Session, catalog: &Arc<SharedCatalog>, request: &str) -> String {
    let request = request.trim();
    if request.is_empty() {
        return WireResponse::err("REQUEST", "empty request").to_line();
    }
    if let Some(rest) = request.strip_prefix('.') {
        return dot_request(catalog, rest).to_line();
    }
    match session.execute(request) {
        Ok(output) => WireResponse::ok(output_kind(&output), &output.render()).to_line(),
        Err(e) => WireResponse::err(query_error_code(&e), &e.to_string()).to_line(),
    }
}

/// The dot-command subset available over the wire. `.load` mutates the
/// *shared* catalog, so a dataset one client loads is immediately visible
/// to every other connection.
fn dot_request(catalog: &Arc<SharedCatalog>, rest: &str) -> WireResponse {
    let parts: Vec<&str> = rest.split_whitespace().collect();
    match parts.first().copied() {
        Some("ping") => WireResponse::ok("text", "pong\n"),
        Some("tables") => {
            let names = catalog.names();
            if names.is_empty() {
                WireResponse::ok("text", "(no tables)\n")
            } else {
                WireResponse::ok("text", &format!("{}\n", names.join("\n")))
            }
        }
        Some("metrics") => WireResponse::ok("text", &dbex_obs::global().render()),
        Some("load") => match parse_load(&parts[1..]) {
            Ok((name, rows, table)) => {
                catalog.insert(name, Arc::new(table));
                WireResponse::ok("text", &format!("loaded {name}: {rows} rows\n"))
            }
            Err(message) => WireResponse::err("REQUEST", &message),
        },
        _ => WireResponse::err(
            "REQUEST",
            &format!(".{rest}: unknown command (try .ping, .tables, .load, .metrics, .save)"),
        ),
    }
}

/// Wire `.save`: snapshot the shared catalog + cluster cache to the
/// configured data dir, serialised against autosave and shutdown.
fn save_request(shared: &Shared) -> WireResponse {
    if shared.config.data_dir.is_none() {
        return WireResponse::err("REQUEST", "server has no --data-dir; nothing to save to");
    }
    match shared.flush_snapshot() {
        Ok(report) => WireResponse::ok(
            "text",
            &format!(
                "saved generation {}: {} table(s), {} segment(s) written, {} reused, {} cluster solution(s)\n",
                report.generation,
                report.tables,
                report.segments_written,
                report.segments_reused,
                report.cluster_entries
            ),
        ),
        Err(e) => WireResponse::err("STORE", &e.to_string()),
    }
}

/// Parses `.load <cars|mushroom|hotels> [rows] [seed]` and generates the
/// dataset (same defaults as the local REPL).
fn parse_load(args: &[&str]) -> Result<(&'static str, usize, Table), String> {
    let which = args.first().copied().unwrap_or("");
    let rows: usize = match args.get(1) {
        Some(s) => s.parse().map_err(|e| format!("bad row count {s:?}: {e}"))?,
        None => 0,
    };
    let seed: u64 = match args.get(2) {
        Some(s) => s.parse().map_err(|e| format!("bad seed {s:?}: {e}"))?,
        None => 42,
    };
    match which {
        "cars" => {
            let rows = if rows == 0 { 40_000 } else { rows };
            Ok(("cars", rows, UsedCarsGenerator::new(seed).generate(rows)))
        }
        "mushroom" => {
            let rows = if rows == 0 {
                dbex_data::mushroom::MUSHROOM_ROWS
            } else {
                rows
            };
            Ok(("mushroom", rows, MushroomGenerator::new(seed).generate(rows)))
        }
        "hotels" => {
            let rows = if rows == 0 { 8_000 } else { rows };
            Ok(("hotels", rows, HotelsGenerator::new(seed).generate(rows)))
        }
        other => Err(format!(
            "usage: .load cars|mushroom|hotels [rows] [seed] (got {other:?})"
        )),
    }
}

/// Replays `requests` through ONE fresh session (its own catalog and
/// stats cache, seeded with `tables`) and returns the response lines a
/// server connection would produce for the same input.
///
/// This is the determinism oracle: rendered output never embeds table
/// ids, timings, or cache state, so N concurrent server clients must each
/// receive exactly these bytes.
pub fn oracle_transcript(
    tables: impl IntoIterator<Item = (String, Table)>,
    config: &ServeConfig,
    requests: &[impl AsRef<str>],
) -> Vec<String> {
    let catalog = Arc::new(SharedCatalog::new());
    for (name, table) in tables {
        catalog.insert(name, Arc::new(table));
    }
    let mut session = Session::new();
    session.set_catalog(Some(Arc::clone(&catalog)));
    session.set_stats_cache(Arc::new(StatsCache::new()));
    if config.threads != 1 {
        session.set_threads(config.threads);
    }
    if let Some(limit) = config.request_time_limit {
        session.set_budget(ExecBudget::unlimited().with_time_limit(limit));
    }
    requests
        .iter()
        .map(|request| handle_request(&mut session, &catalog, request.as_ref()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    fn small_cars() -> Table {
        UsedCarsGenerator::new(7).generate(600)
    }

    fn spawn_server(config: ServeConfig) -> ServerHandle {
        let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
        server.preload("cars", small_cars());
        server.spawn().expect("spawn accept thread")
    }

    #[test]
    fn request_response_round_trip() {
        let handle = spawn_server(ServeConfig::default());
        let mut client = Client::connect(handle.addr()).expect("connect");
        let resp = client.request(".ping").unwrap();
        assert!(resp.ok);
        assert_eq!(resp.text, "pong\n");
        let resp = client
            .request("SELECT Make FROM cars WHERE Make = Jeep LIMIT 2")
            .unwrap();
        assert!(resp.ok, "{resp:?}");
        assert_eq!(resp.kind.as_deref(), Some("rows"));
        assert!(resp.text.contains("Jeep"), "{}", resp.text);
        let resp = client.request("SELECT * FROM nope").unwrap();
        assert!(!resp.ok);
        assert_eq!(resp.code.as_deref(), Some("SESSION"));
        drop(client);
        handle.shutdown();
    }

    #[test]
    fn responses_match_the_oracle() {
        let script = [
            ".tables",
            "CREATE CADVIEW v AS SET pivot = Make FROM cars LIMIT COLUMNS 2 IUNITS 2",
            "REORDER ROWS IN v ORDER BY SIMILARITY(Jeep) DESC",
        ];
        let oracle = oracle_transcript(
            vec![("cars".to_owned(), small_cars())],
            &ServeConfig::default(),
            &script,
        );
        let handle = spawn_server(ServeConfig::default());
        let mut client = Client::connect(handle.addr()).expect("connect");
        for (request, expected) in script.iter().zip(&oracle) {
            let line = client.request_line(request).unwrap();
            assert_eq!(&line, expected, "divergence on {request}");
        }
        drop(client);
        handle.shutdown();
    }

    #[test]
    fn over_cap_connections_get_busy() {
        let handle = spawn_server(ServeConfig {
            max_connections: 2,
            ..ServeConfig::default()
        });
        let a = Client::connect(handle.addr()).expect("first connect");
        let b = Client::connect(handle.addr()).expect("second connect");
        match Client::connect(handle.addr()) {
            Err(crate::client::ClientError::Busy(_)) => {}
            Err(other) => panic!("expected BUSY, got {other}"),
            Ok(_) => panic!("third connection should be rejected with BUSY"),
        }
        assert_eq!(handle.busy_rejections(), 1);
        drop((a, b));
        handle.shutdown();
    }

    #[test]
    fn load_over_the_wire_is_shared_across_connections() {
        let handle = spawn_server(ServeConfig::default());
        let mut a = Client::connect(handle.addr()).expect("connect a");
        let resp = a.request(".load hotels 400 3").unwrap();
        assert!(resp.ok, "{resp:?}");
        let mut b = Client::connect(handle.addr()).expect("connect b");
        let resp = b.request("SELECT * FROM hotels LIMIT 1").unwrap();
        assert!(resp.ok, "hotels loaded by a should be visible to b: {resp:?}");
        drop((a, b));
        handle.shutdown();
    }

    #[test]
    fn shutdown_joins_connection_threads_and_zeroes_the_gauge() {
        let handle = spawn_server(ServeConfig::default());
        // Two clients stay connected and idle across the shutdown — the
        // old behaviour would burn the whole 5 s drain deadline waiting
        // for them; the graceful drain must half-close and join instead.
        let mut a = Client::connect(handle.addr()).expect("connect a");
        let mut b = Client::connect(handle.addr()).expect("connect b");
        assert!(a.request(".ping").unwrap().ok);
        assert!(b.request(".ping").unwrap().ok);
        let shared = Arc::clone(&handle.shared);
        let started = Instant::now();
        let summary = handle.shutdown();
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_secs(3),
            "shutdown took {elapsed:?}; drain is not joining connection threads"
        );
        assert!(!summary.flushed, "no data dir configured");
        assert_eq!(shared.active.load(Ordering::SeqCst), 0);
        assert!(shared.lock_conns().is_empty(), "all conn slots joined and cleared");
        assert_eq!(shared.panics.load(Ordering::Relaxed), 0);
        // The `server.connections` gauge must be back to 0. Other tests
        // in this binary share the gauge, so poll briefly before failing.
        let deadline = Instant::now() + Duration::from_secs(5);
        let gauge = dbex_obs::gauge!("server.connections");
        while gauge.get() != 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(gauge.get(), 0, "server.connections gauge did not return to 0");
    }

    #[test]
    fn oversized_round_trips_at_a_non_default_cap() {
        let cap = 512;
        let handle = spawn_server(ServeConfig {
            max_frame_bytes: cap,
            ..ServeConfig::default()
        });
        let mut client = Client::connect(handle.addr()).expect("connect");
        // The hello line advertises the configured cap, not the default.
        assert!(
            client.hello().text.contains("max_frame=512"),
            "hello should advertise the 512-byte cap: {}",
            client.hello().text
        );
        // Under the cap: served normally.
        assert!(client.request(".ping").unwrap().ok);
        // Over the configured cap but far under the 1 MiB default: the
        // server must reject it with a typed OVERSIZED response before
        // reading the payload.
        let big = format!("SELECT Make FROM cars WHERE Make = {}", "x".repeat(600));
        let resp = client.request(&big).unwrap();
        assert!(!resp.ok);
        assert_eq!(resp.code.as_deref(), Some("OVERSIZED"));
        assert!(resp.text.contains("512"), "{}", resp.text);
        drop(client);
        handle.shutdown();
    }

    #[test]
    fn warm_restart_from_snapshot_and_shutdown_flush() {
        let dir = std::env::temp_dir().join(format!("dbex-serve-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServeConfig {
            data_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };

        // First server: loads a table over the wire, then drains; the
        // shutdown flush must persist the catalog.
        let server = Server::bind("127.0.0.1:0", config.clone()).expect("bind");
        let handle = server.spawn().expect("spawn");
        let mut client = Client::connect(handle.addr()).expect("connect");
        assert!(client.request(".load hotels 300 9").unwrap().ok);
        drop(client);
        let summary = handle.shutdown();
        assert!(summary.flushed, "catalog was dirty: {summary:?}");
        assert!(summary.flush_error.is_none(), "{summary:?}");

        // Second server on the same dir: the catalog is already there.
        let server = Server::bind("127.0.0.1:0", config).expect("warm bind");
        assert_eq!(server.catalog().names(), vec!["hotels".to_owned()]);
        let handle = server.spawn().expect("spawn");
        let mut client = Client::connect(handle.addr()).expect("connect");
        let resp = client.request("SELECT * FROM hotels LIMIT 1").unwrap();
        assert!(resp.ok, "recovered table must be queryable: {resp:?}");
        drop(client);
        // Nothing changed since the snapshot: clean shutdown, no flush.
        let summary = handle.shutdown();
        assert!(!summary.flushed, "unchanged catalog must not rewrite: {summary:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wire_save_writes_a_generation() {
        let dir = std::env::temp_dir().join(format!("dbex-serve-save-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let handle = spawn_server(ServeConfig {
            data_dir: Some(dir.clone()),
            ..ServeConfig::default()
        });
        let mut client = Client::connect(handle.addr()).expect("connect");
        let resp = client.request(".save").unwrap();
        assert!(resp.ok, "{resp:?}");
        assert!(resp.text.contains("saved generation 1"), "{}", resp.text);
        // Saving again with no changes still commits a (cheap, fully
        // segment-reused) generation on explicit request.
        let resp = client.request(".save").unwrap();
        assert!(resp.ok, "{resp:?}");
        assert!(resp.text.contains("1 reused"), "{}", resp.text);
        drop(client);
        handle.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_without_data_dir_is_a_typed_error() {
        let handle = spawn_server(ServeConfig::default());
        let mut client = Client::connect(handle.addr()).expect("connect");
        let resp = client.request(".save").unwrap();
        assert!(!resp.ok);
        assert_eq!(resp.code.as_deref(), Some("REQUEST"));
        drop(client);
        handle.shutdown();
    }

    #[test]
    fn connection_gauge_returns_to_zero() {
        let handle = spawn_server(ServeConfig::default());
        {
            let _a = Client::connect(handle.addr()).expect("connect");
            let _b = Client::connect(handle.addr()).expect("connect");
            let deadline = Instant::now() + Duration::from_secs(2);
            while handle.active_connections() < 2 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(2));
            }
            assert_eq!(handle.active_connections(), 2);
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while handle.active_connections() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(handle.active_connections(), 0);
        assert_eq!(handle.panics(), 0);
        handle.shutdown();
    }
}
