//! The concurrent wire server: shared catalog, shared stats cache, one
//! session per connection — served by a readiness loop, not by threads.
//!
//! # Architecture
//!
//! ```text
//!                    ┌───────────────────────────────┐
//!  all sockets ────▶ │ event loop (1 thread, epoll)  │ ◀── wake pipe
//!                    │  nonblocking accept/read/write │
//!                    │  per-conn frame state machines │
//!                    └───────┬───────────────▲───────┘
//!                       jobs │               │ completions
//!                    ┌───────▼───────────────┴───────┐
//!                    │ worker pool (N fixed threads)  │
//!                    │  Session::execute → JSON line  │
//!                    │  ▲ shared: catalog, StatsCache │
//!                    └────────────────────────────────┘
//! ```
//!
//! One event-loop thread owns the listener and every connection socket
//! (all nonblocking, multiplexed through [`crate::poller::Poller`]), so
//! connection count is decoupled from thread count: ten thousand idle
//! sessions cost a few hundred bytes each, not twenty thousand stacks.
//! Requests decoded by the loop are dispatched — one in flight per
//! connection, preserving per-connection FIFO order — to a fixed-size
//! worker pool that executes them against the connection's [`Session`]
//! and posts the rendered frames back through a completion queue (the
//! wake pipe interrupts the loop's `wait`).
//!
//! Each accepted connection gets its own [`Session`] (so CAD Views,
//! budgets and `REORDER` state stay private), but every session points at
//! the same [`SharedCatalog`] of `Arc`-immutable tables and the same
//! process-wide [`StatsCache`] — one client's CAD build warms every other
//! client's refinements.
//!
//! # Progressive (streamed) responses
//!
//! A connection that opts in with `.stream on` receives *tagged* frames:
//! every response line carries `"seq"`/`"final"` fields, and expensive
//! `CREATE CADVIEW` statements stream **two** frames — a cheap sampled
//! preview (`seq:0, final:false`) the worker builds first, then the exact
//! answer (`final:true`) whose line minus the tags is byte-identical to
//! the classic single response. A client that disconnects (or sends
//! `.cancel`) mid-build arms the connection's cancel flag; the running
//! build observes it as an expired deadline and collapses to the cheapest
//! degradation rungs instead of wasting worker time on an answer nobody
//! will read.
//!
//! # Backpressure ladder
//!
//! 1. Per-connection pipelining is bounded at [`PIPELINE_DEPTH`] decoded
//!    requests; beyond it the loop drops read interest in the socket and
//!    the client's TCP stream simply stops being read.
//! 2. Connections over [`ServeConfig::max_connections`] are rejected
//!    immediately with a typed `BUSY` response and a close — never queued
//!    unboundedly. (The job queue inherits this bound: one in-flight job
//!    per connection means it can never exceed the connection cap.)
//! 3. Per-request work is bounded by the configured
//!    [`ServeConfig::request_time_limit`]: past the deadline a CAD build
//!    degrades (it never fails), so the response still arrives.
//! 4. A client that never drains its responses fills the connection's
//!    write buffer; the loop re-registers for writability and flushes as
//!    the socket allows, while rung 1 stops accepting new requests.

use crate::poller::{listen_with_backlog, Event, Interest, Poller};
use crate::protocol::{decode_frame_with, ProtocolError, MAX_FRAME};
use crate::wire::{query_error_code, tag_stream_line, WireResponse};
use dbex_core::{ExecBudget, StatsCache, Tracer};
use dbex_data::{HotelsGenerator, MushroomGenerator, UsedCarsGenerator};
use dbex_obs::TraceSink;
use dbex_query::{QueryOutput, Session, SharedCatalog};
use dbex_store::{RealVfs, SaveReport, StoreError};
use dbex_table::Table;
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// In-flight pipelined requests per connection before the loop stops
/// reading the connection's socket.
pub const PIPELINE_DEPTH: usize = 16;

/// Bucket bounds (milliseconds) for the `server.request_ms` histogram.
const REQUEST_MS_BOUNDS: &[f64] = &[1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0];

/// Bucket bounds (milliseconds) for the `server.preview_ms` histogram —
/// previews target interactive latency, so the buckets are finer.
const PREVIEW_MS_BOUNDS: &[f64] = &[1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0];

/// Poller tokens 0 and 1 are the listener and the wake pipe; connection
/// tokens count up from 2 and are never reused within a server lifetime.
const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// How long a graceful drain waits for in-flight work before closing
/// connections anyway.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// Server configuration.
#[derive(Clone)]
pub struct ServeConfig {
    /// Concurrent-connection cap; connection `max_connections + 1` gets a
    /// typed `BUSY` response and an immediate close.
    pub max_connections: usize,
    /// Per-request wall-clock deadline applied to every session's
    /// [`ExecBudget`]; past it CAD builds degrade rather than fail.
    /// `None` = no deadline.
    pub request_time_limit: Option<Duration>,
    /// Worker threads per CAD build (`1` = sequential, `0` = auto).
    pub threads: usize,
    /// Request-executor threads in the worker pool. `0` (the default)
    /// resolves to the machine's available parallelism. Independent of
    /// `threads`, which parallelises *within* one CAD build.
    pub workers: usize,
    /// Total entries per map of the shared [`StatsCache`]. The library
    /// default (1024) thrashes at 1024 concurrent sessions — evictions ≈
    /// misses — so the server defaults higher (8192).
    pub cache_entries: usize,
    /// Listen backlog. Defaults above the exploration benchmark's largest
    /// session ramp (1024): an overflowing backlog turns connects into
    /// multi-minute kernel SYN retransmits.
    pub backlog: u32,
    /// When set, every request is traced (a `serve_request` root span with
    /// request/response byte counts) and the trace forwarded here.
    pub trace_sink: Option<Arc<dyn TraceSink>>,
    /// Per-request frame cap; a frame declaring more is rejected with a
    /// typed `OVERSIZED` response before any payload byte is read.
    /// Defaults to [`MAX_FRAME`] (1 MiB).
    pub max_frame_bytes: usize,
    /// Snapshot directory for the durable catalog. When set,
    /// [`Server::bind`] warm-restarts from the newest loadable generation
    /// and [`ServerHandle::shutdown`] flushes a final snapshot.
    pub data_dir: Option<PathBuf>,
    /// Background autosave cadence. Snapshots are only written when the
    /// catalog or the exact-cluster cache actually changed. Requires
    /// `data_dir`.
    pub autosave_interval: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_connections: 64,
            request_time_limit: None,
            threads: 1,
            workers: 0,
            cache_entries: 8192,
            backlog: 4096,
            trace_sink: None,
            max_frame_bytes: MAX_FRAME,
            data_dir: None,
            autosave_interval: None,
        }
    }
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("max_connections", &self.max_connections)
            .field("request_time_limit", &self.request_time_limit)
            .field("threads", &self.threads)
            .field("workers", &self.workers)
            .field("cache_entries", &self.cache_entries)
            .field("backlog", &self.backlog)
            .field("trace_sink", &self.trace_sink.is_some())
            .field("max_frame_bytes", &self.max_frame_bytes)
            .field("data_dir", &self.data_dir)
            .field("autosave_interval", &self.autosave_interval)
            .finish()
    }
}

/// State shared by the event loop, the workers, and the handle.
struct Shared {
    catalog: Arc<SharedCatalog>,
    cache: Arc<StatsCache>,
    config: ServeConfig,
    active: AtomicUsize,
    shutdown: AtomicBool,
    /// Graceful drain in progress: EOFs produced by the server
    /// half-closing its own read sides must NOT fire cancel flags, so
    /// in-flight builds finish and their responses go out.
    draining: AtomicBool,
    busy_rejections: AtomicU64,
    panics: AtomicU64,
    /// Requests whose cancel flag was armed (disconnect mid-request or an
    /// explicit `.cancel`).
    request_cancels: AtomicU64,
    /// Serialises snapshot writes (wire `.save`, autosave, final flush).
    save_lock: Mutex<()>,
    /// Catalog version as of the last committed snapshot.
    saved_catalog_version: AtomicU64,
    /// Exact-cluster cache entry count as of the last committed snapshot.
    saved_cluster_entries: AtomicUsize,
}

impl Shared {
    fn set_connections_gauge(&self) {
        dbex_obs::gauge!("server.connections").set(self.active.load(Ordering::SeqCst) as i64);
    }

    /// Whether the catalog or warm-cluster state changed since the last
    /// snapshot (always true on the very first check of a cold start with
    /// tables).
    fn snapshot_dirty(&self) -> bool {
        self.catalog.version() != self.saved_catalog_version.load(Ordering::Acquire)
            || self.cache.exact_cluster_entries()
                != self.saved_cluster_entries.load(Ordering::Acquire)
    }

    /// Writes a snapshot of the shared catalog + cluster cache to the
    /// configured data dir. Serialised by `save_lock` so the wire `.save`,
    /// the autosaver, and the shutdown flush never interleave.
    fn flush_snapshot(&self) -> Result<SaveReport, StoreError> {
        let dir = self.config.data_dir.as_deref().ok_or_else(|| StoreError::NoManifest {
            dir: PathBuf::from("(no --data-dir configured)"),
        })?;
        let _guard = self.save_lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        let version = self.catalog.version();
        let tables = self.catalog.snapshot();
        let report = dbex_store::save(&RealVfs, dir, &tables, Some(&self.cache))?;
        self.saved_catalog_version.store(version, Ordering::Release);
        self.saved_cluster_entries.store(report.cluster_entries, Ordering::Release);
        Ok(report)
    }
}

/// One request handed to the worker pool. The connection's session moves
/// *into* the job (the loop keeps `None` while a request is in flight) and
/// comes back in the final [`Completion`] — so exactly one thread touches
/// a session at a time, without a lock.
struct Job {
    token: u64,
    request: String,
    session: Box<Session>,
    stream_mode: bool,
    cancel: Arc<AtomicBool>,
}

/// What a worker produced for a connection.
enum Done {
    /// An intermediate streamed frame; the request is still running.
    Preview(String),
    /// The request finished: its (possibly tag-spliced) response line and
    /// the session, returned to the loop.
    Final { frame: String, session: Box<Session> },
    /// The request panicked below every inner boundary. The session is
    /// forfeit; the connection closes after this frame flushes.
    Panicked { frame: String },
}

struct Completion {
    token: u64,
    done: Done,
}

/// The loop↔worker queues. Jobs are bounded by construction (one in
/// flight per connection ≤ `max_connections`); completions are bounded by
/// jobs plus at most one preview each.
struct Queues {
    jobs: Mutex<JobQueue>,
    jobs_cv: Condvar,
    completions: Mutex<VecDeque<Completion>>,
    stop: AtomicBool,
    /// Write end of the loop's wake pipe; workers poke it after posting a
    /// completion. Nonblocking — a full pipe already guarantees a wake.
    wake: UnixStream,
}

/// The worker-pool job queue, split into two FIFO lanes.
///
/// A connection's *first* request lands in the hot lane, which workers
/// drain before the cold lane. Time-to-first-result is the metric an
/// exploratory UI lives or dies by: when a thousand sessions ramp up
/// against a small pool, a new session's first paint must not queue
/// behind the steady-state grind of established sessions. Every
/// connection gets exactly one hot job in its lifetime, so cold-lane
/// starvation is bounded by the connection-accept rate, which the
/// connection cap in turn bounds.
///
/// `SUGGEST` requests also ride the hot lane: they are keystroke-paced,
/// bounded work (a handful of cached contingency-table lookups, never a
/// clustering build), and queueing one behind a multi-second CAD build
/// would defeat its purpose. This keeps the starvation bound: suggest
/// jobs are cheap by construction, and each connection still runs at
/// most one job at a time, so the hot lane holds at most one entry per
/// connection.
#[derive(Default)]
struct JobQueue {
    hot: VecDeque<Job>,
    cold: VecDeque<Job>,
}

impl JobQueue {
    fn len(&self) -> usize {
        self.hot.len() + self.cold.len()
    }

    fn pop(&mut self) -> Option<Job> {
        self.hot.pop_front().or_else(|| self.cold.pop_front())
    }
}

impl Queues {
    fn push_job(&self, job: Job, first: bool) {
        let mut jobs = self.jobs.lock().unwrap_or_else(|p| p.into_inner());
        if first {
            jobs.hot.push_back(job);
        } else {
            jobs.cold.push_back(job);
        }
        dbex_obs::gauge!("server.queue_depth").set(jobs.len() as i64);
        drop(jobs);
        self.jobs_cv.notify_one();
    }

    fn push_completion(&self, completion: Completion) {
        self.completions
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push_back(completion);
        let _ = (&self.wake).write(&[1]);
    }

    fn wake_loop(&self) {
        let _ = (&self.wake).write(&[1]);
    }
}

/// A bound, not-yet-running server. [`Server::spawn`] starts the event
/// loop and worker pool on background threads and returns the controlling
/// handle.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral test port) with
    /// a fresh shared catalog and stats cache, using the configured listen
    /// backlog ([`ServeConfig::backlog`]).
    ///
    /// When [`ServeConfig::data_dir`] is set, the catalog **warm
    /// restarts**: the newest loadable snapshot generation is opened,
    /// its tables registered, and its persisted cluster solutions
    /// rehydrated into the shared stats cache — so the first CAD build
    /// after a crash reuses partitions instead of clustering cold. A
    /// directory with no manifest is a cold start; a directory where
    /// every generation is corrupt fails the bind (serving an empty
    /// catalog where one was expected would be silent data loss).
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<Server> {
        let catalog = Arc::new(SharedCatalog::new());
        let cache = Arc::new(StatsCache::with_capacity(config.cache_entries));
        if let Some(dir) = &config.data_dir {
            match dbex_store::open(&RealVfs, dir) {
                Ok(report) => {
                    for (name, table) in &report.tables {
                        catalog.insert(name.clone(), Arc::clone(table));
                    }
                    let rehydrated = report.rehydrate_into(&cache);
                    dbex_obs::gauge!("store.rehydrated_clusters").set(rehydrated as i64);
                    if report.fallbacks > 0 {
                        eprintln!(
                            "dbex-serve: recovered generation {} after {} corrupt generation(s)",
                            report.generation, report.fallbacks
                        );
                    }
                }
                Err(StoreError::NoManifest { .. }) => {} // cold start
                Err(e) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("cannot open data dir {}: {e}", dir.display()),
                    ))
                }
            }
        }
        let listener = listen_with_backlog(addr, config.backlog)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            catalog,
            cache,
            config,
            active: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            busy_rejections: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            request_cancels: AtomicU64::new(0),
            save_lock: Mutex::new(()),
            saved_catalog_version: AtomicU64::new(0),
            saved_cluster_entries: AtomicUsize::new(0),
        });
        // The just-recovered state is by definition in sync with disk.
        shared
            .saved_catalog_version
            .store(shared.catalog.version(), Ordering::Release);
        shared
            .saved_cluster_entries
            .store(shared.cache.exact_cluster_entries(), Ordering::Release);
        Ok(Server {
            listener,
            addr,
            shared,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Registers a table into the shared catalog before (or while)
    /// serving.
    pub fn preload(&self, name: impl Into<String>, table: Table) {
        self.shared.catalog.insert(name, Arc::new(table));
    }

    /// The shared catalog.
    pub fn catalog(&self) -> Arc<SharedCatalog> {
        Arc::clone(&self.shared.catalog)
    }

    /// The process-wide stats cache every session shares.
    pub fn cache(&self) -> Arc<StatsCache> {
        Arc::clone(&self.shared.cache)
    }

    /// Starts the event loop, the worker pool, and (when configured) the
    /// autosaver on background threads. Fails only when the OS cannot
    /// spawn a thread or create the wake pipe.
    ///
    /// Total server threads: 1 event loop + `workers` + at most one
    /// autosaver — **independent of connection count**.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        self.listener.set_nonblocking(true)?;
        let queues = Arc::new(Queues {
            jobs: Mutex::new(JobQueue::default()),
            jobs_cv: Condvar::new(),
            completions: Mutex::new(VecDeque::new()),
            stop: AtomicBool::new(false),
            wake: wake_tx,
        });
        let workers = match self.shared.config.workers {
            0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            n => n,
        };
        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&self.shared);
            let queues = Arc::clone(&queues);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("dbex-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &queues))?,
            );
        }
        let loop_shared = Arc::clone(&self.shared);
        let loop_queues = Arc::clone(&queues);
        let listener = self.listener;
        let event_loop = std::thread::Builder::new()
            .name("dbex-serve-loop".into())
            .spawn(move || {
                let mut lp = match EventLoop::new(listener, wake_rx, loop_shared, loop_queues) {
                    Ok(lp) => lp,
                    Err(e) => {
                        eprintln!("dbex-serve: cannot start event loop: {e}");
                        return;
                    }
                };
                lp.run();
            })?;
        let autosave = match (&self.shared.config.data_dir, self.shared.config.autosave_interval) {
            (Some(_), Some(interval)) => {
                let shared = Arc::clone(&self.shared);
                Some(
                    std::thread::Builder::new()
                        .name("dbex-serve-autosave".into())
                        .spawn(move || autosave_loop(&shared, interval))?,
                )
            }
            _ => None,
        };
        Ok(ServerHandle {
            addr: self.addr,
            shared: self.shared,
            queues,
            event_loop: Some(event_loop),
            workers: worker_handles,
            autosave,
        })
    }
}

/// Polls at a short cadence (so shutdown is prompt) and snapshots whenever
/// `interval` has elapsed since the last save **and** something changed.
fn autosave_loop(shared: &Shared, interval: Duration) {
    let mut last_save = Instant::now();
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
        if last_save.elapsed() < interval {
            continue;
        }
        if shared.snapshot_dirty() {
            match shared.flush_snapshot() {
                Ok(report) => {
                    dbex_obs::counter!("store.autosaves").incr(1);
                    dbex_obs::gauge!("store.generation").set(report.generation as i64);
                }
                Err(e) => eprintln!("dbex-serve: autosave failed: {e}"),
            }
        }
        last_save = Instant::now();
    }
}

/// What a graceful shutdown did. Returned by [`ServerHandle::shutdown`];
/// callers that don't persist can ignore it.
#[derive(Debug, Default)]
pub struct ShutdownSummary {
    /// Whether a final snapshot was written (false when no data dir is
    /// configured or nothing changed since the last save).
    pub flushed: bool,
    /// Generation of the final snapshot, when one was written.
    pub generation: Option<u64>,
    /// Rendered error if the final flush failed — the catalog on disk is
    /// then the last successful generation, never a torn one.
    pub flush_error: Option<String>,
}

/// Controls a running server: address, live counters, shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    queues: Arc<Queues>,
    event_loop: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    autosave: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared catalog (also reachable by clients via `.load`).
    pub fn catalog(&self) -> Arc<SharedCatalog> {
        Arc::clone(&self.shared.catalog)
    }

    /// The process-wide stats cache every session shares.
    pub fn cache(&self) -> Arc<StatsCache> {
        Arc::clone(&self.shared.cache)
    }

    /// Connections currently open (mirrors the `server.connections` gauge).
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Connections rejected with `BUSY` since startup.
    pub fn busy_rejections(&self) -> u64 {
        self.shared.busy_rejections.load(Ordering::Relaxed)
    }

    /// Panics caught at the worker boundary since startup (always 0
    /// unless there is a bug below the session's own panic boundary).
    pub fn panics(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Requests whose cancel flag was armed — by a client disconnecting
    /// mid-request or by an explicit `.cancel`.
    pub fn request_cancels(&self) -> u64 {
        self.shared.request_cancels.load(Ordering::Relaxed)
    }

    /// The resolved worker-pool size (after `workers: 0` defaulted to the
    /// host's available parallelism). Together with the event loop and
    /// optional autosave thread, this bounds the server's thread count
    /// regardless of how many connections are open.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Gracefully stops the server: stops accepting, drains in-flight
    /// requests so their responses go out (bounded by [`DRAIN_DEADLINE`]),
    /// **joins** the event loop and workers, and — when a data dir is
    /// configured — flushes a final snapshot.
    pub fn shutdown(mut self) -> ShutdownSummary {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> ShutdownSummary {
        let Some(event_loop) = self.event_loop.take() else {
            return ShutdownSummary::default();
        };
        // Drain first, then shutdown: EOFs manufactured by the loop
        // half-closing read sides must see `draining` set so they don't
        // cancel in-flight builds.
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.queues.wake_loop();
        let _ = event_loop.join();
        // No loop ⇒ no new jobs. Stop the workers once the queue drains
        // (each re-checks `stop` between jobs); bounded join so a wedged
        // request is leaked (detached), not waited on forever.
        self.queues.stop.store(true, Ordering::SeqCst);
        self.queues.jobs_cv.notify_all();
        let deadline = Instant::now() + DRAIN_DEADLINE;
        while Instant::now() < deadline && !self.workers.iter().all(|w| w.is_finished()) {
            std::thread::sleep(Duration::from_millis(5));
        }
        for worker in self.workers.drain(..) {
            if worker.is_finished() {
                let _ = worker.join();
            }
        }
        if let Some(autosave) = self.autosave.take() {
            let _ = autosave.join();
        }

        // Final flush, now that no connection can mutate the catalog.
        let mut summary = ShutdownSummary::default();
        if self.shared.config.data_dir.is_some() && self.shared.snapshot_dirty() {
            match self.shared.flush_snapshot() {
                Ok(report) => {
                    summary.flushed = true;
                    summary.generation = Some(report.generation);
                }
                Err(e) => summary.flush_error = Some(e.to_string()),
            }
        }
        summary
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
    }
}

/// One queued item decoded from a connection's byte stream, dispatched in
/// FIFO order.
enum PendingItem {
    Request(String),
    /// Unrecoverable framing error (oversized declaration, bad UTF-8):
    /// answered with a typed error *in order*, then the connection closes.
    Broken(ProtocolError),
}

/// Per-connection state owned by the event loop. No thread, no stack —
/// an idle connection is this struct and a registered fd.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet decoded (a partial frame prefix).
    read_buf: Vec<u8>,
    /// Bytes rendered but not yet written (`write_pos` marks the flushed
    /// prefix).
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Decoded requests awaiting dispatch (≤ [`PIPELINE_DEPTH`]).
    pending: VecDeque<PendingItem>,
    /// One job in flight per connection — the FIFO-order invariant and
    /// the job-queue bound.
    running: bool,
    /// Jobs dispatched to the worker pool so far; the first one rides
    /// the hot lane (see [`JobQueue`]). Inline control acks don't count.
    jobs_started: u64,
    /// Client opted into tagged multi-frame responses (`.stream on`).
    stream_mode: bool,
    /// EOF seen (or reads disabled after a framing error).
    read_closed: bool,
    /// Close once `write_buf` drains (protocol error or worker panic).
    close_after_flush: bool,
    /// Hard transport error: close now, discarding unflushed output.
    dead: bool,
    /// Shared with the in-flight job's [`ExecBudget`]; reset by the loop
    /// at dispatch time (single-threaded, so race-free).
    cancel: Arc<AtomicBool>,
    /// `None` while a job holds the session.
    session: Option<Box<Session>>,
    /// Interest currently registered with the poller.
    interest: Interest,
}

impl Conn {
    fn unflushed(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    fn idle(&self) -> bool {
        !self.running && self.pending.is_empty() && self.unflushed() == 0
    }

    fn desired_interest(&self) -> Interest {
        Interest {
            readable: !self.read_closed && self.pending.len() < PIPELINE_DEPTH,
            writable: self.unflushed() > 0,
        }
    }

    fn queue_line(&mut self, line: &str) {
        self.write_buf.extend_from_slice(line.as_bytes());
        self.write_buf.push(b'\n');
    }
}

/// The readiness loop: one thread, every socket.
struct EventLoop {
    poller: Poller,
    listener: TcpListener,
    wake_rx: UnixStream,
    shared: Arc<Shared>,
    queues: Arc<Queues>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    events: Vec<Event>,
    /// Tokens that saw IO or completions this iteration and need their
    /// decode/dispatch/interest state settled.
    touched: Vec<u64>,
    drain_started: Option<Instant>,
}

impl EventLoop {
    fn new(
        listener: TcpListener,
        wake_rx: UnixStream,
        shared: Arc<Shared>,
        queues: Arc<Queues>,
    ) -> std::io::Result<EventLoop> {
        let mut poller = Poller::new()?;
        poller.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        poller.add(wake_rx.as_raw_fd(), TOKEN_WAKE, Interest::READ)?;
        Ok(EventLoop {
            poller,
            listener,
            wake_rx,
            shared,
            queues,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            events: Vec::new(),
            touched: Vec::new(),
            drain_started: None,
        })
    }

    fn run(&mut self) {
        loop {
            let timeout = if self.drain_started.is_some() {
                Some(Duration::from_millis(50))
            } else {
                None
            };
            if self.poller.wait(&mut self.events, timeout).is_err() {
                std::thread::sleep(Duration::from_millis(1));
            }
            dbex_obs::counter!("server.loop_iterations").incr(1);
            let events = std::mem::take(&mut self.events);
            for event in &events {
                match event.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.drain_wake_pipe(),
                    token => self.conn_ready(token, event),
                }
            }
            self.events = events;
            self.apply_completions();
            self.settle_touched();
            if self.shared.shutdown.load(Ordering::SeqCst) && self.shutdown_step() {
                break;
            }
        }
        // Close whatever survived the drain deadline.
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.close_conn(token);
        }
    }

    /// One drain pass; true when every connection has flushed and closed
    /// (or the deadline expired).
    fn shutdown_step(&mut self) -> bool {
        if self.drain_started.is_none() {
            self.drain_started = Some(Instant::now());
            let _ = self.poller.delete(self.listener.as_raw_fd());
            // Half-close every read side: clients see their writes
            // rejected, our reads return EOF (no cancel — draining).
            for conn in self.conns.values() {
                let _ = conn.stream.shutdown(Shutdown::Read);
            }
        }
        let idle_tokens: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.idle())
            .map(|(t, _)| *t)
            .collect();
        for token in idle_tokens {
            self.close_conn(token);
        }
        let deadline_passed = self
            .drain_started
            .map(|t| t.elapsed() > DRAIN_DEADLINE)
            .unwrap_or(false);
        self.conns.is_empty() || deadline_passed
    }

    fn accept_ready(&mut self) {
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            };
            if self.shared.shutdown.load(Ordering::SeqCst) {
                let _ = stream.shutdown(Shutdown::Both);
                continue;
            }
            if self.conns.len() >= self.shared.config.max_connections {
                self.reject_busy(stream);
                continue;
            }
            let _ = stream.set_nodelay(true);
            if stream.set_nonblocking(true).is_err() {
                let _ = stream.shutdown(Shutdown::Both);
                continue;
            }
            let token = self.next_token;
            self.next_token += 1;
            if self.poller.add(stream.as_raw_fd(), token, Interest::READ).is_err() {
                let _ = stream.shutdown(Shutdown::Both);
                continue;
            }
            let mut conn = Conn {
                stream,
                read_buf: Vec::new(),
                write_buf: Vec::new(),
                write_pos: 0,
                pending: VecDeque::new(),
                running: false,
                jobs_started: 0,
                stream_mode: false,
                read_closed: false,
                close_after_flush: false,
                dead: false,
                cancel: Arc::new(AtomicBool::new(false)),
                session: Some(Box::new(self.new_session())),
                interest: Interest::READ,
            };
            let hello = WireResponse::ok(
                "hello",
                &format!(
                    "dbex-serve ready; max_frame={} bytes, one statement per frame",
                    self.shared.config.max_frame_bytes
                ),
            );
            conn.queue_line(&hello.to_line());
            self.conns.insert(token, conn);
            self.touched.push(token);
            self.shared.active.fetch_add(1, Ordering::SeqCst);
            self.shared.set_connections_gauge();
        }
    }

    /// Backpressure rung 2: typed rejection, never an unbounded queue.
    /// One nonblocking write — a client that can't even take one line
    /// just loses it; the loop is never stalled by a stranger.
    fn reject_busy(&self, stream: TcpStream) {
        self.shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
        dbex_obs::counter!("server.busy_rejections").incr(1);
        let busy = WireResponse::err(
            "BUSY",
            &format!(
                "server at capacity ({} connections)",
                self.shared.config.max_connections
            ),
        );
        let _ = stream.set_nonblocking(true);
        let _ = (&stream).write(format!("{}\n", busy.to_line()).as_bytes());
        let _ = stream.shutdown(Shutdown::Both);
    }

    fn new_session(&self) -> Session {
        let mut session = Session::new();
        session.set_catalog(Some(Arc::clone(&self.shared.catalog)));
        session.set_stats_cache(Arc::clone(&self.shared.cache));
        if self.shared.config.threads != 1 {
            session.set_threads(self.shared.config.threads);
        }
        session
    }

    fn drain_wake_pipe(&mut self) {
        let mut buf = [0u8; 256];
        while matches!((&self.wake_rx).read(&mut buf), Ok(n) if n > 0) {}
    }

    fn conn_ready(&mut self, token: u64, event: &Event) {
        let draining = self.shared.draining.load(Ordering::SeqCst);
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if event.readable || event.hangup {
            Self::fill_read(conn, &self.shared, draining);
        }
        if event.writable || conn.unflushed() > 0 {
            Self::flush_write(conn);
        }
        self.touched.push(token);
    }

    /// Reads until `WouldBlock` or EOF. Decoding happens later in
    /// [`EventLoop::settle_touched`] so bytes that arrived while the
    /// pipeline was full are still decoded once it drains.
    fn fill_read(conn: &mut Conn, shared: &Shared, draining: bool) {
        if conn.read_closed {
            // Still consume (and discard) so a hangup event can't spin.
            let mut sink = [0u8; 4096];
            while matches!((&conn.stream).read(&mut sink), Ok(n) if n > 0) {}
            return;
        }
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match (&conn.stream).read(&mut chunk) {
                Ok(0) => {
                    // Disconnect (or our own drain half-close). Cancel any
                    // in-flight build unless the server is draining.
                    conn.read_closed = true;
                    if !draining && (conn.running || !conn.pending.is_empty()) {
                        conn.cancel.store(true, Ordering::Relaxed);
                        shared.request_cancels.fetch_add(1, Ordering::Relaxed);
                        dbex_obs::counter!("server.request_cancels").incr(1);
                    }
                    break;
                }
                Ok(n) => conn.read_buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Hard transport error mid-stream: the client is gone.
                    if !draining {
                        conn.cancel.store(true, Ordering::Relaxed);
                        shared.request_cancels.fetch_add(1, Ordering::Relaxed);
                        dbex_obs::counter!("server.request_cancels").incr(1);
                    }
                    conn.dead = true;
                    break;
                }
            }
        }
    }

    /// Decodes buffered bytes into pending items, applying the
    /// out-of-band side effects (`.cancel` arms the flag *now*, `.stream`
    /// flips the mode *now*) while still enqueueing each command so its
    /// acknowledgement holds its FIFO position — which is also what
    /// keeps the oracle transcript identical.
    fn decode_pending(conn: &mut Conn, shared: &Shared) {
        let max_frame = shared.config.max_frame_bytes;
        let mut consumed = 0;
        while conn.pending.len() < PIPELINE_DEPTH {
            match decode_frame_with(&conn.read_buf[consumed..], max_frame) {
                Ok(Some((request, used))) => {
                    consumed += used;
                    match request.trim() {
                        ".cancel" if conn.running => {
                            conn.cancel.store(true, Ordering::Relaxed);
                            shared.request_cancels.fetch_add(1, Ordering::Relaxed);
                            dbex_obs::counter!("server.request_cancels").incr(1);
                        }
                        ".stream on" => conn.stream_mode = true,
                        ".stream off" => conn.stream_mode = false,
                        _ => {}
                    }
                    conn.pending.push_back(PendingItem::Request(request));
                }
                Ok(None) => break,
                Err(e) => {
                    dbex_obs::counter!("server.protocol_errors").incr(1);
                    conn.pending.push_back(PendingItem::Broken(e));
                    conn.read_closed = true; // framing unrecoverable
                    conn.read_buf.clear();
                    consumed = 0;
                    break;
                }
            }
        }
        if consumed > 0 {
            conn.read_buf.drain(..consumed);
        }
    }

    /// Flushes the write buffer until `WouldBlock`; writability interest
    /// is (re-)registered by the interest sync when bytes remain.
    fn flush_write(conn: &mut Conn) {
        while conn.write_pos < conn.write_buf.len() {
            match (&conn.stream).write(&conn.write_buf[conn.write_pos..]) {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => conn.write_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        if conn.write_pos == conn.write_buf.len() {
            conn.write_buf.clear();
            conn.write_pos = 0;
        } else if conn.write_pos > 64 * 1024 {
            conn.write_buf.drain(..conn.write_pos);
            conn.write_pos = 0;
        }
    }

    /// Starts the next queued request if none is in flight. Protocol
    /// errors surface here, in FIFO position.
    ///
    /// Constant-time control commands (`.ping`, `.stream on|off`,
    /// `.cancel`) never touch the session, so the loop acks them in
    /// place instead of round-tripping through the worker queue — under
    /// a session ramp this keeps a thousand `.stream on` handshakes
    /// from queueing behind each other's first real query. The loop
    /// keeps draining pending items until a real request claims the
    /// worker slot, so an inline ack never stalls the request behind it.
    fn maybe_dispatch(conn: &mut Conn, token: u64, queues: &Queues) {
        while !conn.running && !conn.close_after_flush && !conn.dead {
            match conn.pending.pop_front() {
                None => break,
                Some(PendingItem::Broken(e)) => {
                    let line = WireResponse::err(e.code(), &e.to_string()).to_line();
                    conn.queue_line(&line);
                    conn.close_after_flush = true;
                }
                Some(PendingItem::Request(request)) => {
                    if let Some(ack) = control_ack(&request) {
                        dbex_obs::counter!("server.requests").incr(1);
                        let line = if conn.stream_mode {
                            tag_stream_line(&ack, 0, true)
                        } else {
                            ack
                        };
                        conn.queue_line(&line);
                        Self::flush_write(conn);
                        continue;
                    }
                    let Some(session) = conn.session.take() else {
                        return; // unreachable: !running ⇒ session present
                    };
                    // Fresh flag per request; the loop is the only writer
                    // between requests, so this reset is race-free.
                    conn.cancel.store(false, Ordering::Relaxed);
                    conn.running = true;
                    // Hot lane: first-request priority, plus the cheap
                    // keystroke-paced SUGGEST fast path (see [`JobQueue`]).
                    let first = conn.jobs_started == 0 || is_suggest_request(&request);
                    conn.jobs_started += 1;
                    queues.push_job(
                        Job {
                            token,
                            request,
                            session,
                            stream_mode: conn.stream_mode,
                            cancel: Arc::clone(&conn.cancel),
                        },
                        first,
                    );
                }
            }
        }
    }

    fn apply_completions(&mut self) {
        loop {
            let completion = self
                .queues
                .completions
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .pop_front();
            let Some(Completion { token, done }) = completion else {
                break;
            };
            let Some(conn) = self.conns.get_mut(&token) else {
                continue; // connection closed mid-request; drop the result
            };
            match done {
                Done::Preview(frame) => conn.queue_line(&frame),
                Done::Final { frame, session } => {
                    conn.queue_line(&frame);
                    conn.session = Some(session);
                    conn.running = false;
                }
                Done::Panicked { frame } => {
                    conn.queue_line(&frame);
                    conn.running = false;
                    conn.close_after_flush = true;
                }
            }
            Self::flush_write(conn);
            self.touched.push(token);
        }
    }

    /// Settles every connection that saw activity: decode newly buffered
    /// bytes, dispatch the next request, sync poller interest, and close
    /// connections that are finished or dead.
    fn settle_touched(&mut self) {
        let mut tokens = std::mem::take(&mut self.touched);
        tokens.sort_unstable();
        tokens.dedup();
        for token in tokens.drain(..) {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            if !conn.dead {
                Self::decode_pending(conn, &self.shared);
                Self::maybe_dispatch(conn, token, &self.queues);
            }
            let finished = conn.close_after_flush && conn.unflushed() == 0 && !conn.running;
            let disconnected = conn.read_closed && conn.idle();
            if conn.dead || finished || disconnected {
                // A still-running job keeps the conn alive so its session
                // comes home; dead conns drop the session with the conn.
                if !conn.running || conn.dead {
                    self.close_conn(token);
                    continue;
                }
            }
            let conn = match self.conns.get_mut(&token) {
                Some(c) => c,
                None => continue,
            };
            let desired = conn.desired_interest();
            if desired != conn.interest
                && self
                    .poller
                    .modify(conn.stream.as_raw_fd(), token, desired)
                    .is_ok()
            {
                conn.interest = desired;
            }
        }
        self.touched = tokens;
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.delete(conn.stream.as_raw_fd());
            let _ = conn.stream.shutdown(Shutdown::Both);
            self.shared.active.fetch_sub(1, Ordering::SeqCst);
            self.shared.set_connections_gauge();
        }
    }
}

/// A worker: pull a job, execute it against the job's session, post the
/// frames back. The panic boundary lives here — a panicking request
/// forfeits its session and closes its connection, nothing else.
fn worker_loop(shared: &Shared, queues: &Queues) {
    loop {
        let job = {
            let mut jobs = queues.jobs.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(job) = jobs.pop() {
                    dbex_obs::gauge!("server.queue_depth").set(jobs.len() as i64);
                    break Some(job);
                }
                if queues.stop.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = queues
                    .jobs_cv
                    .wait_timeout(jobs, Duration::from_millis(100))
                    .unwrap_or_else(|p| p.into_inner());
                jobs = guard;
            }
        };
        let Some(job) = job else {
            return;
        };
        run_job(shared, queues, job);
    }
}

fn run_job(shared: &Shared, queues: &Queues, job: Job) {
    let Job {
        token,
        request,
        mut session,
        stream_mode,
        cancel,
    } = job;
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        execute_request(shared, queues, token, &request, &mut session, stream_mode, &cancel)
    }));
    let done = match outcome {
        Ok(frame) => Done::Final { frame, session },
        Err(_) => {
            shared.panics.fetch_add(1, Ordering::Relaxed);
            dbex_obs::counter!("server.panics").incr(1);
            let frame =
                WireResponse::err("PANIC", "request panicked; connection closed").to_line();
            Done::Panicked { frame }
        }
    };
    queues.push_completion(Completion { token, done });
}

/// Executes one request, streaming a preview frame first when the
/// connection opted in, and returns the final response line.
fn execute_request(
    shared: &Shared,
    queues: &Queues,
    token: u64,
    request: &str,
    session: &mut Session,
    stream_mode: bool,
    cancel: &Arc<AtomicBool>,
) -> String {
    let started = Instant::now();
    dbex_obs::counter!("server.requests").incr(1);
    let mut budget = ExecBudget::unlimited().with_cancel_flag(Arc::clone(cancel));
    if let Some(limit) = shared.config.request_time_limit {
        budget = budget.with_time_limit(limit);
    }
    session.set_budget(budget);
    let tracer = if shared.config.trace_sink.is_some() {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };
    let line = {
        let span = tracer.root("serve_request");
        span.add("request_bytes", request.len() as u64);
        let trimmed = request.trim();
        let mut seq = 0u64;
        if stream_mode && !trimmed.starts_with('.') && !cancel.load(Ordering::Relaxed) {
            let preview_started = Instant::now();
            if let Some(output) = session.preview_create_cadview(trimmed) {
                let frame = WireResponse::ok(output_kind(&output), &output.render())
                    .with_stream_tags(0, false)
                    .to_line();
                dbex_obs::counter!("server.previews").incr(1);
                dbex_obs::histogram!("server.preview_ms", PREVIEW_MS_BOUNDS)
                    .observe_ms(preview_started.elapsed());
                queues.push_completion(Completion {
                    token,
                    done: Done::Preview(frame),
                });
                seq = 1;
            }
        }
        // `.save` needs the server's data dir and save lock, which
        // sessions don't have — intercept it before the shared
        // (oracle-checked) dispatch point.
        let line = if trimmed == ".save" {
            save_request(shared).to_line()
        } else {
            handle_request(session, &shared.catalog, request)
        };
        let line = if stream_mode {
            tag_stream_line(&line, seq, true)
        } else {
            line
        };
        span.add("response_bytes", line.len() as u64);
        line
    };
    if let (Some(sink), Some(trace)) = (&shared.config.trace_sink, tracer.finish()) {
        sink.record(&trace);
    }
    dbex_obs::histogram!("server.request_ms", REQUEST_MS_BOUNDS).observe_ms(started.elapsed());
    line
}

/// Maps a [`QueryOutput`] to its wire `kind` tag.
fn output_kind(output: &QueryOutput) -> &'static str {
    match output {
        QueryOutput::Rows { .. } => "rows",
        QueryOutput::Cad { .. } => "cad",
        QueryOutput::Highlights(_) => "highlights",
        QueryOutput::Reordered(_) => "reordered",
        QueryOutput::Text(_) => "text",
        QueryOutput::Suggestions { .. } => "suggestions",
    }
}

/// Whether a request is a `SUGGEST` statement (optionally under
/// `EXPLAIN ANALYZE`) — the cheap op class that rides the hot job lane
/// so it never queues behind CAD builds.
fn is_suggest_request(request: &str) -> bool {
    let mut words = request.split_whitespace();
    match words.next() {
        Some(w) if w.eq_ignore_ascii_case("SUGGEST") => true,
        Some(w) if w.eq_ignore_ascii_case("EXPLAIN") => {
            words
                .next()
                .is_some_and(|w| w.eq_ignore_ascii_case("ANALYZE"))
                && words
                    .next()
                    .is_some_and(|w| w.eq_ignore_ascii_case("SUGGEST"))
        }
        _ => false,
    }
}

/// Executes one wire request against a session and renders the response
/// line (no trailing newline).
///
/// This is the single dispatch point shared by the live server and
/// [`oracle_transcript`], so a multi-client run can be diffed against a
/// single-session oracle byte for byte.
pub fn handle_request(session: &mut Session, catalog: &Arc<SharedCatalog>, request: &str) -> String {
    let request = request.trim();
    if request.is_empty() {
        return WireResponse::err("REQUEST", "empty request").to_line();
    }
    if let Some(rest) = request.strip_prefix('.') {
        return dot_request(catalog, rest).to_line();
    }
    match session.execute(request) {
        Ok(output) => WireResponse::ok(output_kind(&output), &output.render()).to_line(),
        Err(e) => WireResponse::err(query_error_code(&e), &e.to_string()).to_line(),
    }
}

/// The exact ack line for a control command the event loop answers in
/// place, or `None` for everything that must go to the worker pool.
///
/// Only the constant-time, session-free commands qualify, and only in
/// their canonical spelling — any other form (extra arguments, unknown
/// subcommand) falls through to [`dot_request`] on a worker so the
/// response, including its error text, stays byte-identical to the
/// oracle's.
fn control_ack(request: &str) -> Option<String> {
    let response = match request.trim() {
        ".ping" => WireResponse::ok("text", "pong\n"),
        ".stream on" => WireResponse::ok("text", "streaming on\n"),
        ".stream off" => WireResponse::ok("text", "streaming off\n"),
        ".cancel" => WireResponse::ok("text", "cancel requested\n"),
        _ => return None,
    };
    Some(response.to_line())
}

/// The dot-command subset available over the wire. `.load` mutates the
/// *shared* catalog, so a dataset one client loads is immediately visible
/// to every other connection.
///
/// `.stream` and `.cancel` take effect out of band — the event loop flips
/// the connection's stream mode / arms the cancel flag the moment it
/// decodes the frame — and their canonical spellings are acked by the
/// loop in place (see [`control_ack`]). The arms here cover the
/// non-canonical forms and keep this dispatch point, which the oracle
/// replays, producing the same bytes as the live server.
fn dot_request(catalog: &Arc<SharedCatalog>, rest: &str) -> WireResponse {
    let parts: Vec<&str> = rest.split_whitespace().collect();
    match parts.first().copied() {
        Some("ping") => WireResponse::ok("text", "pong\n"),
        Some("tables") => {
            let names = catalog.names();
            if names.is_empty() {
                WireResponse::ok("text", "(no tables)\n")
            } else {
                WireResponse::ok("text", &format!("{}\n", names.join("\n")))
            }
        }
        Some("metrics") => WireResponse::ok("text", &dbex_obs::global().render()),
        Some("load") => match parse_load(&parts[1..]) {
            Ok((name, rows, table)) => {
                catalog.insert(name, Arc::new(table));
                WireResponse::ok("text", &format!("loaded {name}: {rows} rows\n"))
            }
            Err(message) => WireResponse::err("REQUEST", &message),
        },
        Some("stream") => match parts.get(1).copied() {
            Some("on") => WireResponse::ok("text", "streaming on\n"),
            Some("off") => WireResponse::ok("text", "streaming off\n"),
            _ => WireResponse::err("REQUEST", "usage: .stream on|off"),
        },
        Some("cancel") => WireResponse::ok("text", "cancel requested\n"),
        _ => WireResponse::err(
            "REQUEST",
            &format!(
                ".{rest}: unknown command (try .ping, .tables, .load, .metrics, .save, .stream, .cancel)"
            ),
        ),
    }
}

/// Wire `.save`: snapshot the shared catalog + cluster cache to the
/// configured data dir, serialised against autosave and shutdown.
fn save_request(shared: &Shared) -> WireResponse {
    if shared.config.data_dir.is_none() {
        return WireResponse::err("REQUEST", "server has no --data-dir; nothing to save to");
    }
    match shared.flush_snapshot() {
        Ok(report) => WireResponse::ok(
            "text",
            &format!(
                "saved generation {}: {} table(s), {} segment(s) written, {} reused, {} cluster solution(s)\n",
                report.generation,
                report.tables,
                report.segments_written,
                report.segments_reused,
                report.cluster_entries
            ),
        ),
        Err(e) => WireResponse::err("STORE", &e.to_string()),
    }
}

/// Parses `.load <cars|mushroom|hotels> [rows] [seed]` and generates the
/// dataset (same defaults as the local REPL).
fn parse_load(args: &[&str]) -> Result<(&'static str, usize, Table), String> {
    let which = args.first().copied().unwrap_or("");
    let rows: usize = match args.get(1) {
        Some(s) => s.parse().map_err(|e| format!("bad row count {s:?}: {e}"))?,
        None => 0,
    };
    let seed: u64 = match args.get(2) {
        Some(s) => s.parse().map_err(|e| format!("bad seed {s:?}: {e}"))?,
        None => 42,
    };
    match which {
        "cars" => {
            let rows = if rows == 0 { 40_000 } else { rows };
            Ok(("cars", rows, UsedCarsGenerator::new(seed).generate(rows)))
        }
        "mushroom" => {
            let rows = if rows == 0 {
                dbex_data::mushroom::MUSHROOM_ROWS
            } else {
                rows
            };
            Ok(("mushroom", rows, MushroomGenerator::new(seed).generate(rows)))
        }
        "hotels" => {
            let rows = if rows == 0 { 8_000 } else { rows };
            Ok(("hotels", rows, HotelsGenerator::new(seed).generate(rows)))
        }
        other => Err(format!(
            "usage: .load cars|mushroom|hotels [rows] [seed] (got {other:?})"
        )),
    }
}

/// Replays `requests` through ONE fresh session (its own catalog and
/// stats cache, seeded with `tables`) and returns the response lines a
/// server connection would produce for the same input.
///
/// This is the determinism oracle: rendered output never embeds table
/// ids, timings, or cache state, so N concurrent server clients must each
/// receive exactly these bytes. A *streamed* transcript is compared by
/// dropping non-final frames and stripping the `seq`/`final` tags
/// ([`crate::wire::strip_stream_tags`]) from the rest.
pub fn oracle_transcript(
    tables: impl IntoIterator<Item = (String, Table)>,
    config: &ServeConfig,
    requests: &[impl AsRef<str>],
) -> Vec<String> {
    let catalog = Arc::new(SharedCatalog::new());
    for (name, table) in tables {
        catalog.insert(name, Arc::new(table));
    }
    let mut session = Session::new();
    session.set_catalog(Some(Arc::clone(&catalog)));
    session.set_stats_cache(Arc::new(StatsCache::new()));
    if config.threads != 1 {
        session.set_threads(config.threads);
    }
    if let Some(limit) = config.request_time_limit {
        session.set_budget(ExecBudget::unlimited().with_time_limit(limit));
    }
    requests
        .iter()
        .map(|request| handle_request(&mut session, &catalog, request.as_ref()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::wire::strip_stream_tags;

    fn small_cars() -> Table {
        UsedCarsGenerator::new(7).generate(600)
    }

    fn spawn_server(config: ServeConfig) -> ServerHandle {
        let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
        server.preload("cars", small_cars());
        server.spawn().expect("spawn server threads")
    }

    #[test]
    fn request_response_round_trip() {
        let handle = spawn_server(ServeConfig::default());
        let mut client = Client::connect(handle.addr()).expect("connect");
        let resp = client.request(".ping").unwrap();
        assert!(resp.ok);
        assert_eq!(resp.text, "pong\n");
        let resp = client
            .request("SELECT Make FROM cars WHERE Make = Jeep LIMIT 2")
            .unwrap();
        assert!(resp.ok, "{resp:?}");
        assert_eq!(resp.kind.as_deref(), Some("rows"));
        assert!(resp.text.contains("Jeep"), "{}", resp.text);
        let resp = client.request("SELECT * FROM nope").unwrap();
        assert!(!resp.ok);
        assert_eq!(resp.code.as_deref(), Some("SESSION"));
        drop(client);
        handle.shutdown();
    }

    #[test]
    fn responses_match_the_oracle() {
        let script = [
            ".tables",
            "CREATE CADVIEW v AS SET pivot = Make FROM cars LIMIT COLUMNS 2 IUNITS 2",
            "REORDER ROWS IN v ORDER BY SIMILARITY(Jeep) DESC",
        ];
        let oracle = oracle_transcript(
            vec![("cars".to_owned(), small_cars())],
            &ServeConfig::default(),
            &script,
        );
        let handle = spawn_server(ServeConfig::default());
        let mut client = Client::connect(handle.addr()).expect("connect");
        for (request, expected) in script.iter().zip(&oracle) {
            let line = client.request_line(request).unwrap();
            assert_eq!(&line, expected, "divergence on {request}");
        }
        drop(client);
        handle.shutdown();
    }

    #[test]
    fn streamed_frames_strip_to_the_oracle() {
        // A table big enough to clear the preview threshold, so the CAD
        // statement streams two frames.
        let cars = UsedCarsGenerator::new(7).generate(3_000);
        let script = [
            ".stream on",
            "CREATE CADVIEW v AS SET pivot = Make FROM cars LIMIT COLUMNS 2 IUNITS 2",
            ".stream off",
            ".ping",
        ];
        let oracle = oracle_transcript(
            vec![("cars".to_owned(), cars.clone())],
            &ServeConfig::default(),
            &script,
        );
        let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
        server.preload("cars", cars);
        let handle = server.spawn().expect("spawn");
        let mut client = Client::connect(handle.addr()).expect("connect");
        let mut finals = Vec::new();
        let mut previews = 0;
        for request in &script {
            for line in client.request_stream_lines(request).unwrap() {
                let resp = WireResponse::parse(&line).unwrap();
                if resp.is_final() {
                    finals.push(strip_stream_tags(&line));
                } else {
                    previews += 1;
                    assert_eq!(resp.seq, Some(0));
                    assert_eq!(resp.kind.as_deref(), Some("cad"), "{line}");
                }
            }
        }
        assert_eq!(previews, 1, "exactly the CAD statement should stream a preview");
        assert_eq!(finals, oracle, "stripped finals must equal the oracle");
        drop(client);
        handle.shutdown();
    }

    #[test]
    fn over_cap_connections_get_busy() {
        let handle = spawn_server(ServeConfig {
            max_connections: 2,
            ..ServeConfig::default()
        });
        let a = Client::connect(handle.addr()).expect("first connect");
        let b = Client::connect(handle.addr()).expect("second connect");
        match Client::connect(handle.addr()) {
            Err(crate::client::ClientError::Busy(_)) => {}
            Err(other) => panic!("expected BUSY, got {other}"),
            Ok(_) => panic!("third connection should be rejected with BUSY"),
        }
        assert_eq!(handle.busy_rejections(), 1);
        drop((a, b));
        handle.shutdown();
    }

    #[test]
    fn load_over_the_wire_is_shared_across_connections() {
        let handle = spawn_server(ServeConfig::default());
        let mut a = Client::connect(handle.addr()).expect("connect a");
        let resp = a.request(".load hotels 400 3").unwrap();
        assert!(resp.ok, "{resp:?}");
        let mut b = Client::connect(handle.addr()).expect("connect b");
        let resp = b.request("SELECT * FROM hotels LIMIT 1").unwrap();
        assert!(resp.ok, "hotels loaded by a should be visible to b: {resp:?}");
        drop((a, b));
        handle.shutdown();
    }

    #[test]
    fn shutdown_joins_server_threads_and_zeroes_the_gauge() {
        let handle = spawn_server(ServeConfig::default());
        // Two clients stay connected and idle across the shutdown — the
        // graceful drain must flush, close, and join without burning the
        // whole drain deadline on them.
        let mut a = Client::connect(handle.addr()).expect("connect a");
        let mut b = Client::connect(handle.addr()).expect("connect b");
        assert!(a.request(".ping").unwrap().ok);
        assert!(b.request(".ping").unwrap().ok);
        let shared = Arc::clone(&handle.shared);
        let started = Instant::now();
        let summary = handle.shutdown();
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_secs(3),
            "shutdown took {elapsed:?}; drain is not closing idle connections"
        );
        assert!(!summary.flushed, "no data dir configured");
        assert_eq!(shared.active.load(Ordering::SeqCst), 0);
        assert_eq!(shared.panics.load(Ordering::Relaxed), 0);
        // The `server.connections` gauge must be back to 0. Other tests
        // in this binary share the gauge, so poll briefly before failing.
        let deadline = Instant::now() + Duration::from_secs(5);
        let gauge = dbex_obs::gauge!("server.connections");
        while gauge.get() != 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(gauge.get(), 0, "server.connections gauge did not return to 0");
    }

    #[test]
    fn oversized_round_trips_at_a_non_default_cap() {
        let cap = 512;
        let handle = spawn_server(ServeConfig {
            max_frame_bytes: cap,
            ..ServeConfig::default()
        });
        let mut client = Client::connect(handle.addr()).expect("connect");
        // The hello line advertises the configured cap, not the default.
        assert!(
            client.hello().text.contains("max_frame=512"),
            "hello should advertise the 512-byte cap: {}",
            client.hello().text
        );
        // Under the cap: served normally.
        assert!(client.request(".ping").unwrap().ok);
        // Over the configured cap but far under the 1 MiB default: the
        // server must reject it with a typed OVERSIZED response before
        // reading the payload.
        let big = format!("SELECT Make FROM cars WHERE Make = {}", "x".repeat(600));
        let resp = client.request(&big).unwrap();
        assert!(!resp.ok);
        assert_eq!(resp.code.as_deref(), Some("OVERSIZED"));
        assert!(resp.text.contains("512"), "{}", resp.text);
        drop(client);
        handle.shutdown();
    }

    #[test]
    fn warm_restart_from_snapshot_and_shutdown_flush() {
        let dir = std::env::temp_dir().join(format!("dbex-serve-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServeConfig {
            data_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };

        // First server: loads a table over the wire, then drains; the
        // shutdown flush must persist the catalog.
        let server = Server::bind("127.0.0.1:0", config.clone()).expect("bind");
        let handle = server.spawn().expect("spawn");
        let mut client = Client::connect(handle.addr()).expect("connect");
        assert!(client.request(".load hotels 300 9").unwrap().ok);
        drop(client);
        let summary = handle.shutdown();
        assert!(summary.flushed, "catalog was dirty: {summary:?}");
        assert!(summary.flush_error.is_none(), "{summary:?}");

        // Second server on the same dir: the catalog is already there.
        let server = Server::bind("127.0.0.1:0", config).expect("warm bind");
        assert_eq!(server.catalog().names(), vec!["hotels".to_owned()]);
        let handle = server.spawn().expect("spawn");
        let mut client = Client::connect(handle.addr()).expect("connect");
        let resp = client.request("SELECT * FROM hotels LIMIT 1").unwrap();
        assert!(resp.ok, "recovered table must be queryable: {resp:?}");
        drop(client);
        // Nothing changed since the snapshot: clean shutdown, no flush.
        let summary = handle.shutdown();
        assert!(!summary.flushed, "unchanged catalog must not rewrite: {summary:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wire_save_writes_a_generation() {
        let dir = std::env::temp_dir().join(format!("dbex-serve-save-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let handle = spawn_server(ServeConfig {
            data_dir: Some(dir.clone()),
            ..ServeConfig::default()
        });
        let mut client = Client::connect(handle.addr()).expect("connect");
        let resp = client.request(".save").unwrap();
        assert!(resp.ok, "{resp:?}");
        assert!(resp.text.contains("saved generation 1"), "{}", resp.text);
        // Saving again with no changes still commits a (cheap, fully
        // segment-reused) generation on explicit request.
        let resp = client.request(".save").unwrap();
        assert!(resp.ok, "{resp:?}");
        assert!(resp.text.contains("1 reused"), "{}", resp.text);
        drop(client);
        handle.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_without_data_dir_is_a_typed_error() {
        let handle = spawn_server(ServeConfig::default());
        let mut client = Client::connect(handle.addr()).expect("connect");
        let resp = client.request(".save").unwrap();
        assert!(!resp.ok);
        assert_eq!(resp.code.as_deref(), Some("REQUEST"));
        drop(client);
        handle.shutdown();
    }

    #[test]
    fn connection_gauge_returns_to_zero() {
        let handle = spawn_server(ServeConfig::default());
        {
            let _a = Client::connect(handle.addr()).expect("connect");
            let _b = Client::connect(handle.addr()).expect("connect");
            let deadline = Instant::now() + Duration::from_secs(2);
            while handle.active_connections() < 2 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(2));
            }
            assert_eq!(handle.active_connections(), 2);
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while handle.active_connections() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(handle.active_connections(), 0);
        assert_eq!(handle.panics(), 0);
        handle.shutdown();
    }

    #[test]
    fn explicit_cancel_is_acked_in_order() {
        let handle = spawn_server(ServeConfig::default());
        let mut client = Client::connect(handle.addr()).expect("connect");
        // Nothing running: `.cancel` is a deterministic no-op ack.
        let resp = client.request(".cancel").unwrap();
        assert!(resp.ok, "{resp:?}");
        assert_eq!(resp.text, "cancel requested\n");
        drop(client);
        handle.shutdown();
    }
}
