//! The concurrent wire server: shared catalog, shared stats cache, one
//! session per connection.
//!
//! # Architecture
//!
//! ```text
//! accept loop ──▶ per-connection thread (executor)
//!                   ├ reader thread: frames → bounded channel,
//!                   │                EOF/error → cancel flag
//!                   └ executor: Session::execute → JSON line
//!                      ▲ shared: Arc<SharedCatalog>, Arc<StatsCache>
//! ```
//!
//! Each accepted connection gets its own [`Session`] (so CAD Views,
//! budgets and `REORDER` state stay private), but every session points at
//! the same [`SharedCatalog`] of `Arc`-immutable tables and the same
//! process-wide [`StatsCache`] — one client's CAD build warms every other
//! client's refinements.
//!
//! # Backpressure ladder
//!
//! 1. Per-connection pipelining is bounded by a small channel
//!    ([`PIPELINE_DEPTH`] in-flight requests); beyond it the client's TCP
//!    stream simply stops being read.
//! 2. Connections over [`ServeConfig::max_connections`] are rejected
//!    immediately with a typed `BUSY` response and a close — never queued
//!    unboundedly.
//! 3. Per-request work is bounded by the configured
//!    [`ServeConfig::request_time_limit`]: past the deadline a CAD build
//!    degrades (it never fails), so the response still arrives.
//! 4. A client that disconnects mid-request fires the connection's cancel
//!    flag; the running build observes it as an expired deadline and
//!    finishes on the cheapest degradation rungs instead of wasting the
//!    server's time on an answer nobody will read.

use crate::protocol::{read_frame, ProtocolError, MAX_FRAME};
use crate::wire::{query_error_code, WireResponse};
use dbex_core::{ExecBudget, StatsCache, Tracer};
use dbex_data::{HotelsGenerator, MushroomGenerator, UsedCarsGenerator};
use dbex_obs::TraceSink;
use dbex_query::{QueryOutput, Session, SharedCatalog};
use dbex_table::Table;
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// In-flight pipelined requests per connection before the reader stops
/// pulling frames off the socket.
pub const PIPELINE_DEPTH: usize = 16;

/// Bucket bounds (milliseconds) for the `server.request_ms` histogram.
const REQUEST_MS_BOUNDS: &[f64] = &[1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0];

/// Server configuration.
#[derive(Clone)]
pub struct ServeConfig {
    /// Concurrent-connection cap; connection `max_connections + 1` gets a
    /// typed `BUSY` response and an immediate close.
    pub max_connections: usize,
    /// Per-request wall-clock deadline applied to every session's
    /// [`ExecBudget`]; past it CAD builds degrade rather than fail.
    /// `None` = no deadline.
    pub request_time_limit: Option<Duration>,
    /// Worker threads per CAD build (`1` = sequential, `0` = auto).
    pub threads: usize,
    /// When set, every request is traced (a `serve_request` root span with
    /// request/response byte counts) and the trace forwarded here.
    pub trace_sink: Option<Arc<dyn TraceSink>>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_connections: 64,
            request_time_limit: None,
            threads: 1,
            trace_sink: None,
        }
    }
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("max_connections", &self.max_connections)
            .field("request_time_limit", &self.request_time_limit)
            .field("threads", &self.threads)
            .field("trace_sink", &self.trace_sink.is_some())
            .finish()
    }
}

/// State shared by the accept loop, every connection, and the handle.
struct Shared {
    catalog: Arc<SharedCatalog>,
    cache: Arc<StatsCache>,
    config: ServeConfig,
    active: AtomicUsize,
    shutdown: AtomicBool,
    busy_rejections: AtomicU64,
    panics: AtomicU64,
}

impl Shared {
    fn set_connections_gauge(&self) {
        dbex_obs::gauge!("server.connections").set(self.active.load(Ordering::SeqCst) as i64);
    }
}

/// A bound, not-yet-running server. [`Server::spawn`] starts the accept
/// loop on a background thread and returns the controlling handle.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral test port) with
    /// a fresh shared catalog and stats cache.
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            shared: Arc::new(Shared {
                catalog: Arc::new(SharedCatalog::new()),
                cache: Arc::new(StatsCache::new()),
                config,
                active: AtomicUsize::new(0),
                shutdown: AtomicBool::new(false),
                busy_rejections: AtomicU64::new(0),
                panics: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Registers a table into the shared catalog before (or while)
    /// serving.
    pub fn preload(&self, name: impl Into<String>, table: Table) {
        self.shared.catalog.insert(name, Arc::new(table));
    }

    /// The shared catalog.
    pub fn catalog(&self) -> Arc<SharedCatalog> {
        Arc::clone(&self.shared.catalog)
    }

    /// The process-wide stats cache every session shares.
    pub fn cache(&self) -> Arc<StatsCache> {
        Arc::clone(&self.shared.cache)
    }

    /// Starts the accept loop on a background thread. Fails only when
    /// the OS cannot spawn a thread.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let shared = Arc::clone(&self.shared);
        let listener = self.listener;
        let accept = std::thread::Builder::new()
            .name("dbex-serve-accept".into())
            .spawn(move || accept_loop(listener, shared))?;
        Ok(ServerHandle {
            addr: self.addr,
            shared: self.shared,
            accept: Some(accept),
        })
    }
}

/// Controls a running server: address, live counters, shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared catalog (also reachable by clients via `.load`).
    pub fn catalog(&self) -> Arc<SharedCatalog> {
        Arc::clone(&self.shared.catalog)
    }

    /// The process-wide stats cache every session shares.
    pub fn cache(&self) -> Arc<StatsCache> {
        Arc::clone(&self.shared.cache)
    }

    /// Connections currently open (mirrors the `server.connections` gauge).
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Connections rejected with `BUSY` since startup.
    pub fn busy_rejections(&self) -> u64 {
        self.shared.busy_rejections.load(Ordering::Relaxed)
    }

    /// Panics caught at the connection boundary since startup (always 0
    /// unless there is a bug below the session's own panic boundary).
    pub fn panics(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Stops accepting, wakes the accept loop, and waits (bounded) for
    /// open connections to drain.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = accept.join();
        // Bounded drain: clients that already disconnected release their
        // slots within milliseconds; a still-connected client is the
        // caller's bug, not ours, so give up after 5 s.
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.shared.active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let slot = shared.active.fetch_add(1, Ordering::SeqCst) + 1;
        shared.set_connections_gauge();
        if slot > shared.config.max_connections {
            // Backpressure rung 2: typed rejection, never an unbounded
            // queue. The write is bounded by a timeout so a stalled
            // client cannot wedge the accept loop.
            shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
            dbex_obs::counter!("server.busy_rejections").incr(1);
            let busy = WireResponse::err(
                "BUSY",
                &format!(
                    "server at capacity ({} connections)",
                    shared.config.max_connections
                ),
            );
            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
            let mut stream = stream;
            let _ = writeln!(stream, "{}", busy.to_line());
            let _ = stream.shutdown(Shutdown::Both);
            shared.active.fetch_sub(1, Ordering::SeqCst);
            shared.set_connections_gauge();
            continue;
        }
        let shared = Arc::clone(&shared);
        let _ = std::thread::Builder::new()
            .name("dbex-serve-conn".into())
            .spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| handle_connection(&stream, &shared)));
                if result.is_err() {
                    shared.panics.fetch_add(1, Ordering::Relaxed);
                    dbex_obs::counter!("server.panics").incr(1);
                }
                let _ = stream.shutdown(Shutdown::Both);
                shared.active.fetch_sub(1, Ordering::SeqCst);
                shared.set_connections_gauge();
            });
    }
}

/// Reads frames into a bounded channel; fires the cancel flag the moment
/// the client goes away so an in-flight build stops wasting time.
fn reader_loop(
    stream: TcpStream,
    tx: std::sync::mpsc::SyncSender<Result<String, ProtocolError>>,
    cancel: Arc<AtomicBool>,
) {
    let mut reader = BufReader::new(stream);
    loop {
        match read_frame(&mut reader) {
            Ok(Some(request)) => {
                if tx.send(Ok(request)).is_err() {
                    break; // executor gone
                }
            }
            Ok(None) => {
                // Clean disconnect. Cancel any in-flight build.
                cancel.store(true, Ordering::Relaxed);
                break;
            }
            Err(e) => {
                // Io/Truncated mean the client is gone mid-frame; cancel.
                // Oversized/BadUtf8 leave the client connected but the
                // framing unrecoverable: report, then the executor closes.
                if matches!(e, ProtocolError::Io(_) | ProtocolError::Truncated { .. }) {
                    cancel.store(true, Ordering::Relaxed);
                }
                let _ = tx.send(Err(e));
                break;
            }
        }
    }
}

fn handle_connection(stream: &TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let (tx, rx) = sync_channel::<Result<String, ProtocolError>>(PIPELINE_DEPTH);
    let cancel = Arc::new(AtomicBool::new(false));
    let reader = match stream.try_clone() {
        Ok(clone) => {
            let cancel = Arc::clone(&cancel);
            std::thread::Builder::new()
                .name("dbex-serve-read".into())
                .spawn(move || reader_loop(clone, tx, cancel))
                .ok()
        }
        Err(_) => None,
    };
    if reader.is_some() {
        execute_loop(stream, shared, &cancel, &rx);
    }
    // Unblock the reader (it may be parked in read_frame) and collect it.
    let _ = stream.shutdown(Shutdown::Both);
    if let Some(reader) = reader {
        let _ = reader.join();
    }
}

/// The executor half of a connection: hello line, then one response line
/// per received frame.
fn execute_loop(
    stream: &TcpStream,
    shared: &Shared,
    cancel: &Arc<AtomicBool>,
    rx: &Receiver<Result<String, ProtocolError>>,
) {
    let mut writer = match stream.try_clone() {
        Ok(clone) => BufWriter::new(clone),
        Err(_) => return,
    };
    let hello = WireResponse::ok(
        "hello",
        &format!("dbex-serve ready; max_frame={MAX_FRAME} bytes, one statement per frame"),
    );
    if writeln!(writer, "{}", hello.to_line()).and_then(|()| writer.flush()).is_err() {
        return;
    }

    let mut session = Session::new();
    session.set_catalog(Some(Arc::clone(&shared.catalog)));
    session.set_stats_cache(Arc::clone(&shared.cache));
    if shared.config.threads != 1 {
        session.set_threads(shared.config.threads);
    }
    let mut budget = ExecBudget::unlimited().with_cancel_flag(Arc::clone(cancel));
    if let Some(limit) = shared.config.request_time_limit {
        budget = budget.with_time_limit(limit);
    }
    session.set_budget(budget);

    for message in rx.iter() {
        match message {
            Ok(request) => {
                let started = Instant::now();
                dbex_obs::counter!("server.requests").incr(1);
                let tracer = if shared.config.trace_sink.is_some() {
                    Tracer::enabled()
                } else {
                    Tracer::disabled()
                };
                let line = {
                    let span = tracer.root("serve_request");
                    span.add("request_bytes", request.len() as u64);
                    let line = handle_request(&mut session, &shared.catalog, &request);
                    span.add("response_bytes", line.len() as u64);
                    line
                };
                if let (Some(sink), Some(trace)) =
                    (&shared.config.trace_sink, tracer.finish())
                {
                    sink.record(&trace);
                }
                let ok = writeln!(writer, "{line}").and_then(|()| writer.flush()).is_ok();
                dbex_obs::histogram!("server.request_ms", REQUEST_MS_BOUNDS)
                    .observe_ms(started.elapsed());
                if !ok {
                    break; // client gone; reader has fired the cancel flag
                }
            }
            Err(protocol_error) => {
                dbex_obs::counter!("server.protocol_errors").incr(1);
                let line = WireResponse::err(protocol_error.code(), &protocol_error.to_string())
                    .to_line();
                let _ = writeln!(writer, "{line}").and_then(|()| writer.flush());
                break; // framing unrecoverable: close
            }
        }
    }
}

/// Maps a [`QueryOutput`] to its wire `kind` tag.
fn output_kind(output: &QueryOutput) -> &'static str {
    match output {
        QueryOutput::Rows { .. } => "rows",
        QueryOutput::Cad { .. } => "cad",
        QueryOutput::Highlights(_) => "highlights",
        QueryOutput::Reordered(_) => "reordered",
        QueryOutput::Text(_) => "text",
    }
}

/// Executes one wire request against a session and renders the response
/// line (no trailing newline).
///
/// This is the single dispatch point shared by the live server and
/// [`oracle_transcript`], so a multi-client run can be diffed against a
/// single-session oracle byte for byte.
pub fn handle_request(session: &mut Session, catalog: &Arc<SharedCatalog>, request: &str) -> String {
    let request = request.trim();
    if request.is_empty() {
        return WireResponse::err("REQUEST", "empty request").to_line();
    }
    if let Some(rest) = request.strip_prefix('.') {
        return dot_request(catalog, rest).to_line();
    }
    match session.execute(request) {
        Ok(output) => WireResponse::ok(output_kind(&output), &output.render()).to_line(),
        Err(e) => WireResponse::err(query_error_code(&e), &e.to_string()).to_line(),
    }
}

/// The dot-command subset available over the wire. `.load` mutates the
/// *shared* catalog, so a dataset one client loads is immediately visible
/// to every other connection.
fn dot_request(catalog: &Arc<SharedCatalog>, rest: &str) -> WireResponse {
    let parts: Vec<&str> = rest.split_whitespace().collect();
    match parts.first().copied() {
        Some("ping") => WireResponse::ok("text", "pong\n"),
        Some("tables") => {
            let names = catalog.names();
            if names.is_empty() {
                WireResponse::ok("text", "(no tables)\n")
            } else {
                WireResponse::ok("text", &format!("{}\n", names.join("\n")))
            }
        }
        Some("metrics") => WireResponse::ok("text", &dbex_obs::global().render()),
        Some("load") => match parse_load(&parts[1..]) {
            Ok((name, rows, table)) => {
                catalog.insert(name, Arc::new(table));
                WireResponse::ok("text", &format!("loaded {name}: {rows} rows\n"))
            }
            Err(message) => WireResponse::err("REQUEST", &message),
        },
        _ => WireResponse::err(
            "REQUEST",
            &format!(".{rest}: unknown command (try .ping, .tables, .load, .metrics)"),
        ),
    }
}

/// Parses `.load <cars|mushroom|hotels> [rows] [seed]` and generates the
/// dataset (same defaults as the local REPL).
fn parse_load(args: &[&str]) -> Result<(&'static str, usize, Table), String> {
    let which = args.first().copied().unwrap_or("");
    let rows: usize = match args.get(1) {
        Some(s) => s.parse().map_err(|e| format!("bad row count {s:?}: {e}"))?,
        None => 0,
    };
    let seed: u64 = match args.get(2) {
        Some(s) => s.parse().map_err(|e| format!("bad seed {s:?}: {e}"))?,
        None => 42,
    };
    match which {
        "cars" => {
            let rows = if rows == 0 { 40_000 } else { rows };
            Ok(("cars", rows, UsedCarsGenerator::new(seed).generate(rows)))
        }
        "mushroom" => {
            let rows = if rows == 0 {
                dbex_data::mushroom::MUSHROOM_ROWS
            } else {
                rows
            };
            Ok(("mushroom", rows, MushroomGenerator::new(seed).generate(rows)))
        }
        "hotels" => {
            let rows = if rows == 0 { 8_000 } else { rows };
            Ok(("hotels", rows, HotelsGenerator::new(seed).generate(rows)))
        }
        other => Err(format!(
            "usage: .load cars|mushroom|hotels [rows] [seed] (got {other:?})"
        )),
    }
}

/// Replays `requests` through ONE fresh session (its own catalog and
/// stats cache, seeded with `tables`) and returns the response lines a
/// server connection would produce for the same input.
///
/// This is the determinism oracle: rendered output never embeds table
/// ids, timings, or cache state, so N concurrent server clients must each
/// receive exactly these bytes.
pub fn oracle_transcript(
    tables: impl IntoIterator<Item = (String, Table)>,
    config: &ServeConfig,
    requests: &[impl AsRef<str>],
) -> Vec<String> {
    let catalog = Arc::new(SharedCatalog::new());
    for (name, table) in tables {
        catalog.insert(name, Arc::new(table));
    }
    let mut session = Session::new();
    session.set_catalog(Some(Arc::clone(&catalog)));
    session.set_stats_cache(Arc::new(StatsCache::new()));
    if config.threads != 1 {
        session.set_threads(config.threads);
    }
    if let Some(limit) = config.request_time_limit {
        session.set_budget(ExecBudget::unlimited().with_time_limit(limit));
    }
    requests
        .iter()
        .map(|request| handle_request(&mut session, &catalog, request.as_ref()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    fn small_cars() -> Table {
        UsedCarsGenerator::new(7).generate(600)
    }

    fn spawn_server(config: ServeConfig) -> ServerHandle {
        let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
        server.preload("cars", small_cars());
        server.spawn().expect("spawn accept thread")
    }

    #[test]
    fn request_response_round_trip() {
        let handle = spawn_server(ServeConfig::default());
        let mut client = Client::connect(handle.addr()).expect("connect");
        let resp = client.request(".ping").unwrap();
        assert!(resp.ok);
        assert_eq!(resp.text, "pong\n");
        let resp = client
            .request("SELECT Make FROM cars WHERE Make = Jeep LIMIT 2")
            .unwrap();
        assert!(resp.ok, "{resp:?}");
        assert_eq!(resp.kind.as_deref(), Some("rows"));
        assert!(resp.text.contains("Jeep"), "{}", resp.text);
        let resp = client.request("SELECT * FROM nope").unwrap();
        assert!(!resp.ok);
        assert_eq!(resp.code.as_deref(), Some("SESSION"));
        drop(client);
        handle.shutdown();
    }

    #[test]
    fn responses_match_the_oracle() {
        let script = [
            ".tables",
            "CREATE CADVIEW v AS SET pivot = Make FROM cars LIMIT COLUMNS 2 IUNITS 2",
            "REORDER ROWS IN v ORDER BY SIMILARITY(Jeep) DESC",
        ];
        let oracle = oracle_transcript(
            vec![("cars".to_owned(), small_cars())],
            &ServeConfig::default(),
            &script,
        );
        let handle = spawn_server(ServeConfig::default());
        let mut client = Client::connect(handle.addr()).expect("connect");
        for (request, expected) in script.iter().zip(&oracle) {
            let line = client.request_line(request).unwrap();
            assert_eq!(&line, expected, "divergence on {request}");
        }
        drop(client);
        handle.shutdown();
    }

    #[test]
    fn over_cap_connections_get_busy() {
        let handle = spawn_server(ServeConfig {
            max_connections: 2,
            ..ServeConfig::default()
        });
        let a = Client::connect(handle.addr()).expect("first connect");
        let b = Client::connect(handle.addr()).expect("second connect");
        match Client::connect(handle.addr()) {
            Err(crate::client::ClientError::Busy(_)) => {}
            Err(other) => panic!("expected BUSY, got {other}"),
            Ok(_) => panic!("third connection should be rejected with BUSY"),
        }
        assert_eq!(handle.busy_rejections(), 1);
        drop((a, b));
        handle.shutdown();
    }

    #[test]
    fn load_over_the_wire_is_shared_across_connections() {
        let handle = spawn_server(ServeConfig::default());
        let mut a = Client::connect(handle.addr()).expect("connect a");
        let resp = a.request(".load hotels 400 3").unwrap();
        assert!(resp.ok, "{resp:?}");
        let mut b = Client::connect(handle.addr()).expect("connect b");
        let resp = b.request("SELECT * FROM hotels LIMIT 1").unwrap();
        assert!(resp.ok, "hotels loaded by a should be visible to b: {resp:?}");
        drop((a, b));
        handle.shutdown();
    }

    #[test]
    fn connection_gauge_returns_to_zero() {
        let handle = spawn_server(ServeConfig::default());
        {
            let _a = Client::connect(handle.addr()).expect("connect");
            let _b = Client::connect(handle.addr()).expect("connect");
            let deadline = Instant::now() + Duration::from_secs(2);
            while handle.active_connections() < 2 && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(2));
            }
            assert_eq!(handle.active_connections(), 2);
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while handle.active_connections() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(handle.active_connections(), 0);
        assert_eq!(handle.panics(), 0);
        handle.shutdown();
    }
}
