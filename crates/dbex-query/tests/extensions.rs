//! Integration tests for the query-language extensions: aggregates,
//! GROUP BY / ORDER BY, DESCRIBE and EXPLAIN CADVIEW.

use dbex_query::{QueryOutput, Session};
use dbex_table::{DataType, Field, TableBuilder, Value};

fn session() -> Session {
    let mut b = TableBuilder::new(vec![
        Field::new("Make", DataType::Categorical),
        Field::new("Body", DataType::Categorical),
        Field::new("Price", DataType::Int),
        Field::hidden("Engine", DataType::Categorical),
    ])
    .unwrap();
    for (m, body, p, e) in [
        ("Ford", "SUV", 30, "V6"),
        ("Ford", "SUV", 20, "V6"),
        ("Ford", "Sedan", 10, "V4"),
        ("Jeep", "SUV", 40, "V8"),
        ("Jeep", "SUV", 50, "V8"),
    ] {
        b.push_row(vec![m.into(), body.into(), p.into(), e.into()])
            .unwrap();
    }
    let mut s = Session::new();
    s.register_table("cars", b.finish());
    s
}

#[test]
fn group_by_with_aggregates() {
    let mut s = session();
    let QueryOutput::Rows { columns, rows } = s
        .execute(
            "SELECT Make, COUNT(*), AVG(Price) FROM cars \
             GROUP BY Make ORDER BY 'avg(Price)' DESC",
        )
        .unwrap()
    else {
        panic!("expected rows");
    };
    assert_eq!(columns, vec!["Make", "count(*)", "avg(Price)"]);
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][0], Value::Str("Jeep".into()));
    assert_eq!(rows[0][1], Value::Int(2));
    assert_eq!(rows[0][2], Value::Float(45.0));
    assert_eq!(rows[1][2], Value::Float(20.0));
}

#[test]
fn ungrouped_aggregate() {
    let mut s = session();
    let QueryOutput::Rows { rows, .. } = s
        .execute("SELECT COUNT(*), MIN(Price), MAX(Price) FROM cars WHERE Body = SUV")
        .unwrap()
    else {
        panic!("expected rows");
    };
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][0], Value::Int(4));
    assert_eq!(rows[0][1], Value::Float(20.0));
    assert_eq!(rows[0][2], Value::Float(50.0));
}

#[test]
fn order_by_on_plain_select() {
    let mut s = session();
    let QueryOutput::Rows { rows, .. } = s
        .execute("SELECT Make, Price FROM cars ORDER BY Price DESC LIMIT 2")
        .unwrap()
    else {
        panic!("expected rows");
    };
    assert_eq!(rows[0][1], Value::Int(50));
    assert_eq!(rows[1][1], Value::Int(40));
}

#[test]
fn multi_key_order_by() {
    let mut s = session();
    let QueryOutput::Rows { rows, .. } = s
        .execute("SELECT Make, Price FROM cars ORDER BY Make ASC, Price ASC")
        .unwrap()
    else {
        panic!("expected rows");
    };
    let got: Vec<(String, i64)> = rows
        .iter()
        .map(|r| {
            let Value::Int(p) = r[1] else { panic!() };
            (r[0].to_string(), p)
        })
        .collect();
    assert_eq!(
        got,
        vec![
            ("Ford".into(), 10),
            ("Ford".into(), 20),
            ("Ford".into(), 30),
            ("Jeep".into(), 40),
            ("Jeep".into(), 50),
        ]
    );
}

#[test]
fn describe_table() {
    let mut s = session();
    let QueryOutput::Text(text) = s.execute("DESCRIBE cars").unwrap() else {
        panic!("expected text");
    };
    assert!(text.contains("5 rows, 4 attributes"));
    assert!(text.contains("Engine"));
    assert!(text.contains("hidden"));
    assert!(text.contains("queriable"));
    assert!(s.execute("DESCRIBE nope").is_err());
}

#[test]
fn explain_cadview_reports_scores_without_storing() {
    let mut s = session();
    let QueryOutput::Text(text) = s
        .execute("EXPLAIN CREATE CADVIEW v AS SET pivot = Make FROM cars IUNITS 2")
        .unwrap()
    else {
        panic!("expected text");
    };
    assert!(text.contains("CADVIEW v over 5 rows"));
    assert!(text.contains("chi2"));
    assert!(text.contains("timings"));
    // EXPLAIN does not store the view.
    assert!(s.cad_view("v").is_err());
}

#[test]
fn cadview_order_by_single_key_only() {
    let mut s = session();
    // One key works.
    assert!(s
        .execute("CREATE CADVIEW a AS SET pivot = Make FROM cars ORDER BY Price ASC")
        .is_ok());
    // Two keys parse (the paper's grammar admits a list) but execution
    // rejects them with a clear message.
    let err = s
        .execute("CREATE CADVIEW b AS SET pivot = Make FROM cars ORDER BY Price ASC, Make DESC")
        .unwrap_err();
    assert!(err.to_string().contains("single key"), "{err}");
}

#[test]
fn aggregate_errors() {
    let mut s = session();
    // Bare column not in GROUP BY.
    assert!(s
        .execute("SELECT Body, COUNT(*) FROM cars GROUP BY Make")
        .is_err());
    // GROUP BY without aggregates.
    assert!(s.execute("SELECT Make FROM cars GROUP BY Make").is_err());
    // Aggregating a categorical attribute.
    assert!(s.execute("SELECT AVG(Make) FROM cars").is_err());
}

#[test]
fn aggregate_names_usable_as_bare_columns() {
    // MIN/MAX/etc. only become functions when followed by `(`.
    let mut b = TableBuilder::new(vec![Field::new("min", DataType::Int)]).unwrap();
    b.push_row(vec![Value::Int(1)]).unwrap();
    let mut s = Session::new();
    s.register_table("t", b.finish());
    let QueryOutput::Rows { columns, .. } = s.execute("SELECT min FROM t").unwrap() else {
        panic!("expected rows");
    };
    assert_eq!(columns, vec!["min"]);
}
