//! Tokenizer for the query language.

use crate::error::ParseError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or bare word (`Make`, `Jeep`, `SUV`).
    Word(String),
    /// Single-quoted string literal (`'Traverse LT'`).
    Str(String),
    /// Integer literal (after `K`/`M` suffix expansion).
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Punctuation / operator: `( ) , = != <> < <= > >= * ;`.
    Sym(&'static str),
}

impl Token {
    /// The word's text if this is a [`Token::Word`].
    pub fn as_word(&self) -> Option<&str> {
        match self {
            Token::Word(w) => Some(w),
            _ => None,
        }
    }

    /// True iff this is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Word(w) if w.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes `input` into a vector of tokens.
pub fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' | ')' | ',' | '*' | ';' => {
                tokens.push(Token::Sym(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '*' => "*",
                    _ => ";",
                }));
                i += 1;
            }
            '=' => {
                tokens.push(Token::Sym("="));
                i += 1;
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Sym("!="));
                    i += 2;
                } else {
                    return Err(ParseError::UnexpectedChar('!'));
                }
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Sym("<="));
                    i += 2;
                } else if chars.get(i + 1) == Some(&'>') {
                    tokens.push(Token::Sym("!="));
                    i += 2;
                } else {
                    tokens.push(Token::Sym("<"));
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Sym(">="));
                    i += 2;
                } else {
                    tokens.push(Token::Sym(">"));
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                        None => return Err(ParseError::UnterminatedString),
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit()
                || (c == '-' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let start = i;
                i += 1;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.' || chars[i] == '_')
                {
                    i += 1;
                }
                let mut multiplier = 1.0f64;
                if i < chars.len() && (chars[i] == 'K' || chars[i] == 'k') {
                    multiplier = 1_000.0;
                    i += 1;
                } else if i < chars.len() && (chars[i] == 'M' || chars[i] == 'm')
                    // Don't eat the start of a word like `Make` after `10`.
                    && !chars.get(i + 1).is_some_and(|n| n.is_alphanumeric())
                {
                    multiplier = 1_000_000.0;
                    i += 1;
                }
                let text: String = chars[start..i]
                    .iter()
                    .filter(|&&c| c != '_' && c != 'K' && c != 'k' && c != 'M' && c != 'm')
                    .collect();
                if text.contains('.') {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| ParseError::BadNumber { text: text.clone() })?;
                    tokens.push(Token::Float(v * multiplier));
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| ParseError::BadNumber { text: text.clone() })?;
                    let scaled = v as f64 * multiplier;
                    tokens.push(Token::Int(scaled as i64));
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '-' || chars[i] == '.')
                {
                    i += 1;
                }
                tokens.push(Token::Word(chars[start..i].iter().collect()));
            }
            other => return Err(ParseError::UnexpectedChar(other)),
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_symbols_numbers() {
        let t = tokenize("SELECT * FROM cars WHERE Price >= 10K").unwrap();
        assert_eq!(t[0], Token::Word("SELECT".into()));
        assert_eq!(t[1], Token::Sym("*"));
        assert_eq!(t[5], Token::Word("Price".into()));
        assert_eq!(t[6], Token::Sym(">="));
        assert_eq!(t[7], Token::Int(10_000));
    }

    #[test]
    fn quoted_strings_with_escapes() {
        let t = tokenize("'Traverse LT' 'it''s'").unwrap();
        assert_eq!(t[0], Token::Str("Traverse LT".into()));
        assert_eq!(t[1], Token::Str("it's".into()));
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn float_and_suffixes() {
        let t = tokenize("3.5 2.5K 1M").unwrap();
        assert_eq!(t[0], Token::Float(3.5));
        assert_eq!(t[1], Token::Float(2_500.0));
        assert_eq!(t[2], Token::Int(1_000_000));
    }

    #[test]
    fn k_suffix_does_not_eat_words() {
        // `10 Make` must not merge; also `10Make` lexes 10 then Make.
        let t = tokenize("BETWEEN 10K AND 30K AND Make = Jeep").unwrap();
        assert!(t.iter().any(|x| x.is_kw("Make")));
        assert_eq!(t[1], Token::Int(10_000));
        assert_eq!(t[3], Token::Int(30_000));
    }

    #[test]
    fn case_insensitive_keywords() {
        let t = tokenize("select").unwrap();
        assert!(t[0].is_kw("SELECT"));
    }

    #[test]
    fn not_equal_variants() {
        let t = tokenize("a != b <> c").unwrap();
        assert_eq!(t[1], Token::Sym("!="));
        assert_eq!(t[3], Token::Sym("!="));
    }

    #[test]
    fn negative_numbers() {
        let t = tokenize("-5 -2.5").unwrap();
        assert_eq!(t[0], Token::Int(-5));
        assert_eq!(t[1], Token::Float(-2.5));
        // A bare minus (no arithmetic in this language) is rejected.
        assert!(tokenize("- 5").is_err());
    }
}
