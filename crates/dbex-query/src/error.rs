//! Typed errors for the query layer.
//!
//! [`QueryError`] is the single error type leaving [`crate::Session`].
//! Every variant *wraps* an inner error — a [`ParseError`], a storage
//! failure, a [`CadError`], a [`SessionError`], or a captured panic — so
//! `source()` is never empty: callers can always walk the chain down to
//! the layer that actually failed.

use dbex_core::CadError;
use std::fmt;

/// A syntax error from the lexer or parser.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Input ended where a token was required.
    UnexpectedEnd,
    /// The next token was not what the grammar required.
    UnexpectedToken {
        /// What the parser was looking for.
        expected: String,
        /// What it found instead.
        found: String,
    },
    /// A character the lexer does not recognize.
    UnexpectedChar(char),
    /// A single-quoted string without a closing quote.
    UnterminatedString,
    /// A numeric literal that does not parse.
    BadNumber {
        /// The offending text.
        text: String,
    },
    /// The statement does not start with a known verb.
    UnknownStatement {
        /// The first token of the input.
        found: String,
    },
    /// Extra tokens after a complete statement.
    TrailingInput {
        /// The first unconsumed token.
        near: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnexpectedEnd => write!(f, "unexpected end of input"),
            ParseError::UnexpectedToken { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            ParseError::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            ParseError::UnterminatedString => write!(f, "unterminated string"),
            ParseError::BadNumber { text } => write!(f, "bad number {text:?}"),
            ParseError::UnknownStatement { found } => write!(
                f,
                "expected SELECT, CREATE CADVIEW, EXPLAIN, DESCRIBE, SHOW CADVIEWS, DROP \
                 CADVIEW, HIGHLIGHT, REORDER or SUGGEST, found {found}"
            ),
            ParseError::TrailingInput { near } => {
                write!(f, "unexpected trailing input near {near}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// A statement that parsed but cannot be executed against this session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The referenced table is not registered.
    UnknownTable {
        /// The table name.
        name: String,
    },
    /// The referenced CAD View does not exist.
    UnknownCadView {
        /// The view name.
        name: String,
    },
    /// `SIMILARITY(value, 0)` — IUnit ids are 1-based.
    ZeroIUnitId,
    /// `CADVIEW ORDER BY` accepts a single key (the IUnit preference
    /// function is one-dimensional).
    MultipleOrderKeys,
    /// A projected column is missing from `GROUP BY`.
    ColumnNotGrouped {
        /// The offending column.
        column: String,
    },
    /// `GROUP BY` without aggregate functions in the select list.
    GroupByWithoutAggregates,
    /// `REORDER` referenced a pivot value absent from the view.
    PivotValueNotInView {
        /// The requested pivot value.
        value: String,
        /// The CAD View name.
        view: String,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::UnknownTable { name } => write!(f, "unknown table {name}"),
            SessionError::UnknownCadView { name } => write!(f, "unknown CAD View {name}"),
            SessionError::ZeroIUnitId => write!(f, "IUnit ids are 1-based"),
            SessionError::MultipleOrderKeys => write!(
                f,
                "CADVIEW ORDER BY accepts a single key (the IUnit preference function is \
                 one-dimensional)"
            ),
            SessionError::ColumnNotGrouped { column } => {
                write!(f, "column {column} must appear in GROUP BY")
            }
            SessionError::GroupByWithoutAggregates => {
                write!(f, "GROUP BY requires aggregate functions in the select list")
            }
            SessionError::PivotValueNotInView { value, view } => {
                write!(f, "pivot value {value} not in CAD View {view}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// A panic caught at the [`crate::Session::execute`] boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaughtPanic {
    /// The panic payload, if it was a string (the common case).
    pub message: String,
}

impl CaughtPanic {
    /// Extracts the message from a `catch_unwind` payload.
    pub fn from_payload(payload: &(dyn std::any::Any + Send)) -> CaughtPanic {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_owned());
        CaughtPanic { message }
    }
}

impl fmt::Display for CaughtPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "panic: {}", self.message)
    }
}

impl std::error::Error for CaughtPanic {}

/// An error from executing a statement. Always wraps an inner error, so
/// `source()` is never `None`.
#[derive(Debug)]
pub enum QueryError {
    /// The statement failed to lex or parse.
    Parse(ParseError),
    /// The storage layer failed (filter, sort, group-by, projection, ...).
    Table(dbex_table::Error),
    /// CAD View construction failed.
    Cad(CadError),
    /// The statement is well-formed but invalid for this session.
    Session(SessionError),
    /// The statement panicked; the session recovered (internal bug — the
    /// chain bottoms out at the captured panic message).
    Panicked(CaughtPanic),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The inner message is repeated here so a one-line print (the
        // REPL, logs) is self-contained; source() still exposes the
        // structured chain.
        match self {
            QueryError::Parse(e) => write!(f, "syntax error: {e}"),
            QueryError::Table(e) => write!(f, "query failed: {e}"),
            QueryError::Cad(e) => write!(f, "CAD View construction failed: {e}"),
            QueryError::Session(e) => write!(f, "invalid statement: {e}"),
            QueryError::Panicked(e) => {
                write!(f, "internal error ({e}); session recovered")
            }
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Parse(e) => Some(e),
            QueryError::Table(e) => Some(e),
            QueryError::Cad(e) => Some(e),
            QueryError::Session(e) => Some(e),
            QueryError::Panicked(e) => Some(e),
        }
    }
}

impl From<ParseError> for QueryError {
    fn from(e: ParseError) -> Self {
        QueryError::Parse(e)
    }
}

impl From<dbex_table::Error> for QueryError {
    fn from(e: dbex_table::Error) -> Self {
        QueryError::Table(e)
    }
}

impl From<CadError> for QueryError {
    fn from(e: CadError) -> Self {
        QueryError::Cad(e)
    }
}

impl From<SessionError> for QueryError {
    fn from(e: SessionError) -> Self {
        QueryError::Session(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn every_variant_has_a_source() {
        let errors: Vec<QueryError> = vec![
            ParseError::UnexpectedEnd.into(),
            dbex_table::Error::UnknownAttribute("x".into()).into(),
            CadError::ZeroIUnits.into(),
            SessionError::ZeroIUnitId.into(),
            QueryError::Panicked(CaughtPanic {
                message: "boom".into(),
            }),
        ];
        for e in &errors {
            assert!(e.source().is_some(), "no source: {e:?}");
        }
    }

    #[test]
    fn panic_payload_extraction() {
        let p: Box<dyn std::any::Any + Send> = Box::new("static str panic");
        assert_eq!(CaughtPanic::from_payload(&*p).message, "static str panic");
        let p: Box<dyn std::any::Any + Send> = Box::new(String::from("owned panic"));
        assert_eq!(CaughtPanic::from_payload(&*p).message, "owned panic");
        let p: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(
            CaughtPanic::from_payload(&*p).message,
            "non-string panic payload"
        );
    }
}
