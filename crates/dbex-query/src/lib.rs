//! # dbex-query
//!
//! Textual query interface: a small SQL subset plus the paper's exploratory
//! search extensions (Section 2.1.2).
//!
//! Supported statements:
//!
//! ```sql
//! SELECT * FROM cars WHERE BodyType = SUV AND Mileage BETWEEN 10K AND 30K;
//! SELECT Make, Price FROM cars WHERE Make IN (Ford, Jeep);
//!
//! CREATE CADVIEW CompareMakes AS
//!   SET pivot = Make
//!   SELECT Price
//!   FROM cars
//!   WHERE Transmission = Automatic AND BodyType = SUV
//!   LIMIT COLUMNS 5 IUNITS 3;
//!
//! HIGHLIGHT SIMILAR IUNITS IN CompareMakes WHERE SIMILARITY(Chevrolet, 3) > 3.5;
//!
//! REORDER ROWS IN CompareMakes ORDER BY SIMILARITY(Chevrolet) DESC;
//! ```
//!
//! Bare words in value position are string literals (the paper writes
//! `Make = Jeep`); quote multi-word values (`'Traverse LT'`). Numbers accept
//! a `K`/`M` suffix (`10K` = 10,000). Keywords are case-insensitive.
//!
//! [`Session`] executes statements against a catalog of registered tables
//! and stores named CAD Views for the follow-up `HIGHLIGHT` / `REORDER`
//! statements.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod session;

pub use ast::{
    CadViewStmt, HighlightStmt, ReorderStmt, SelectStmt, Statement, SuggestKind, SuggestStmt,
};
pub use error::{CaughtPanic, ParseError, QueryError, SessionError};
pub use parser::{parse, parse_predicate};
pub use session::{QueryOutput, Session, SharedCatalog};
