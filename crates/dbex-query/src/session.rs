//! Session: a catalog of tables plus named CAD Views, executing parsed
//! statements.

use crate::ast::*;
use crate::error::{CaughtPanic, QueryError, SessionError};
use crate::parser::{parse, parse_predicate};
use dbex_core::{
    build_cad_view_traced, CadRequest, CadView, ExecBudget, Preference, StatsCache, Tracer,
};
use dbex_obs::TraceSink;
use dbex_suggest::{CompletionMode, SuggestConfig, SuggestError};
use dbex_table::{group_by, sort_view, Predicate, SortKey, Table, Value, View};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, RwLock};

/// Session-local result alias.
type Result<T> = std::result::Result<T, QueryError>;

/// The result of executing one statement.
#[derive(Debug)]
pub enum QueryOutput {
    /// Rows from a `SELECT`: header + materialized values.
    Rows {
        /// Projected column names.
        columns: Vec<String>,
        /// Row values, in result order.
        rows: Vec<Vec<Value>>,
    },
    /// A created CAD View (also stored in the session under its name).
    Cad {
        /// The view's name.
        name: String,
        /// Rendered ASCII table (Table-1 style).
        rendered: String,
        /// Rendered [`dbex_core::Degradation`] records, one per shortcut
        /// the builder took under budget pressure (empty = full fidelity).
        degradation: Vec<String>,
        /// Rendered span tree of the build when the session's tracing is
        /// on (see [`Session::set_tracing`]); `None` otherwise.
        trace: Option<String>,
    },
    /// `HIGHLIGHT SIMILAR IUNITS` hits: `(pivot value, 1-based IUnit id,
    /// similarity)`.
    Highlights(Vec<(String, usize, f64)>),
    /// `REORDER ROWS` result: pivot values by decreasing similarity (i.e.
    /// increasing Algorithm-2 distance) to the reference.
    Reordered(Vec<(String, f64)>),
    /// Free-form text output (`DESCRIBE`, `EXPLAIN CADVIEW`).
    Text(String),
    /// `SUGGEST` ranking: a headline plus `(text, score, annotation)`
    /// entries, best first. Scores render with fixed `{:.4}` precision so
    /// the output is byte-identical at any thread count.
    Suggestions {
        /// Headline describing what was ranked.
        title: String,
        /// Ranked entries: completion/attribute text, score, annotation.
        items: Vec<(String, f64, String)>,
    },
}

impl QueryOutput {
    /// Renders the output exactly as the interactive shell prints it (the
    /// wire server ships this same text, so a `--connect` client and the
    /// local REPL are byte-identical).
    pub fn render(&self) -> String {
        let mut out = String::new();
        match self {
            QueryOutput::Rows { columns, rows } => {
                // Column widths over header + up to 40 shown rows.
                let shown = rows.len().min(40);
                let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
                let cells: Vec<Vec<String>> = rows[..shown]
                    .iter()
                    .map(|r| r.iter().map(|v| v.to_string()).collect())
                    .collect();
                for row in &cells {
                    for (w, cell) in widths.iter_mut().zip(row) {
                        *w = (*w).max(cell.len());
                    }
                }
                let print_row = |out: &mut String, cells: &[String]| {
                    let line: Vec<String> = cells
                        .iter()
                        .zip(&widths)
                        .map(|(c, w)| format!("{c:<w$}"))
                        .collect();
                    let _ = writeln!(out, "| {} |", line.join(" | "));
                };
                print_row(&mut out, columns);
                let _ = writeln!(
                    out,
                    "|{}|",
                    widths
                        .iter()
                        .map(|w| "-".repeat(w + 2))
                        .collect::<Vec<_>>()
                        .join("|")
                );
                for row in &cells {
                    print_row(&mut out, row);
                }
                if rows.len() > shown {
                    let _ = writeln!(out, "... ({} rows total)", rows.len());
                }
            }
            QueryOutput::Cad {
                name,
                rendered,
                degradation,
                trace,
            } => {
                let _ = writeln!(out, "CAD View {name}:");
                let _ = writeln!(out, "{rendered}");
                if let Some(trace) = trace {
                    let _ = writeln!(out, "trace (per-phase spans):");
                    for line in trace.lines() {
                        let _ = writeln!(out, "  {line}");
                    }
                }
                for d in degradation {
                    let _ = writeln!(out, "warning: degraded build: {d}");
                }
            }
            QueryOutput::Highlights(hits) => {
                if hits.is_empty() {
                    let _ = writeln!(out, "(no IUnits above the threshold)");
                }
                for (value, id, sim) in hits {
                    let _ = writeln!(out, "{value} IUnit {id}: similarity {sim:.2}");
                }
            }
            QueryOutput::Reordered(order) => {
                for (value, distance) in order {
                    let _ = writeln!(out, "{value} (distance {distance})");
                }
            }
            QueryOutput::Text(text) => {
                let _ = writeln!(out, "{text}");
            }
            QueryOutput::Suggestions { title, items } => {
                let _ = writeln!(out, "{title}");
                if items.is_empty() {
                    let _ = writeln!(out, "  (no suggestions)");
                }
                let width = items.iter().map(|(t, _, _)| t.len()).max().unwrap_or(0);
                for (i, (text, score, detail)) in items.iter().enumerate() {
                    let _ = writeln!(
                        out,
                        "  {}. {:<width$}  score {:.4}  {}",
                        i + 1,
                        text,
                        score,
                        detail
                    );
                }
            }
        }
        out
    }
}

/// A concurrency-safe table catalog shared by every server session.
///
/// Tables are immutable once registered, so the catalog hands out
/// [`Arc<Table>`] clones: a reader keeps its table alive (and its
/// [`dbex_table::Table::id`]-based cache keys valid) even if another
/// session re-registers the name mid-query. The `RwLock` is held only for
/// the map probe — never across a build.
#[derive(Debug, Default)]
pub struct SharedCatalog {
    tables: RwLock<HashMap<String, Arc<Table>>>,
    /// Bumped on every mutation; snapshot code compares it against the
    /// version it last persisted to decide whether the catalog is dirty.
    version: std::sync::atomic::AtomicU64,
}

/// Locks, recovering from poisoning: the map holds `Arc`s that are only
/// inserted or removed whole, so a panicking writer cannot leave a
/// half-written entry.
fn read_catalog(
    lock: &RwLock<HashMap<String, Arc<Table>>>,
) -> std::sync::RwLockReadGuard<'_, HashMap<String, Arc<Table>>> {
    lock.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl SharedCatalog {
    /// Creates an empty catalog.
    pub fn new() -> SharedCatalog {
        SharedCatalog::default()
    }

    /// Registers `table` under `name` (replacing any previous table).
    /// Sessions already holding the old `Arc` keep it until their
    /// statement finishes.
    pub fn insert(&self, name: impl Into<String>, table: Arc<Table>) {
        self.tables
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .insert(name.into(), table);
        self.version.fetch_add(1, std::sync::atomic::Ordering::Release);
    }

    /// Monotonic mutation counter. Two equal readings with no mutation in
    /// between guarantee the catalog contents are unchanged.
    pub fn version(&self) -> u64 {
        self.version.load(std::sync::atomic::Ordering::Acquire)
    }

    /// All registered tables, sorted by name — the unit a snapshot saves.
    pub fn snapshot(&self) -> Vec<(String, Arc<Table>)> {
        let mut tables: Vec<(String, Arc<Table>)> = read_catalog(&self.tables)
            .iter()
            .map(|(name, table)| (name.clone(), Arc::clone(table)))
            .collect();
        tables.sort_by(|a, b| a.0.cmp(&b.0));
        tables
    }

    /// The table registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<Arc<Table>> {
        read_catalog(&self.tables).get(name).map(Arc::clone)
    }

    /// Registered table names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = read_catalog(&self.tables).keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        read_catalog(&self.tables).len()
    }

    /// True when no table is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An interactive session over registered tables.
#[derive(Default)]
pub struct Session {
    tables: HashMap<String, Arc<Table>>,
    /// Fallback lookup for names not registered locally: the process-wide
    /// catalog a `dbex-serve` connection shares with every other session.
    catalog: Option<Arc<SharedCatalog>>,
    cad_views: HashMap<String, CadView>,
    /// Source context of each stored CAD View — `(table, predicate)` from
    /// its `CREATE CADVIEW` statement. [`CadView`] itself only keeps the
    /// summarized result, but `SUGGEST NEXT FOR view` must re-derive the
    /// *current refined result set* the view was built over.
    view_contexts: HashMap<String, (String, Predicate)>,
    budget: ExecBudget,
    /// Worker threads for CAD View builds: `1` = sequential (default),
    /// `0` = auto (`DBEX_THREADS` / hardware parallelism).
    threads: Option<usize>,
    /// Memoized codecs + contingency tables shared by every CAD build in
    /// this session (keyed on view fingerprints, so table or predicate
    /// changes invalidate implicitly).
    stats_cache: Arc<StatsCache>,
    /// When set, every CAD build is traced and the rendered span tree is
    /// attached to [`QueryOutput::Cad`].
    tracing: bool,
    /// Optional sink receiving the span tree of every traced build.
    trace_sink: Option<Arc<dyn TraceSink>>,
    /// Set when a table is (re-)registered after the last `.save`, so the
    /// REPL can warn about unsaved catalog changes.
    catalog_dirty: bool,
}

impl Session {
    /// Creates an empty session.
    pub fn new() -> Session {
        Session::default()
    }

    /// Registers `table` under `name` (replacing any previous table).
    pub fn register_table(&mut self, name: impl Into<String>, table: Table) {
        self.register_shared(name, Arc::new(table));
    }

    /// Registers an already-shared table under `name` — the `dbex-serve`
    /// path, where every session holds the same `Arc` so cache keys (which
    /// embed [`dbex_table::Table::id`]) agree across connections.
    pub fn register_shared(&mut self, name: impl Into<String>, table: Arc<Table>) {
        self.tables.insert(name.into(), table);
        self.catalog_dirty = true;
        dbex_obs::gauge!("session.tables").set(self.tables.len() as i64);
    }

    /// Locally registered tables, sorted by name — what `.save <dir>`
    /// snapshots. Catalog-shadowed tables belong to the server's own
    /// snapshot cycle, not the session's.
    pub fn tables_snapshot(&self) -> Vec<(String, Arc<Table>)> {
        let mut tables: Vec<(String, Arc<Table>)> = self
            .tables
            .iter()
            .map(|(name, table)| (name.clone(), Arc::clone(table)))
            .collect();
        tables.sort_by(|a, b| a.0.cmp(&b.0));
        tables
    }

    /// Whether a table has been (re-)registered since the last
    /// [`Session::mark_catalog_saved`].
    pub fn catalog_dirty(&self) -> bool {
        self.catalog_dirty
    }

    /// Records that the current catalog has been persisted.
    pub fn mark_catalog_saved(&mut self) {
        self.catalog_dirty = false;
    }

    /// Attaches (or with `None` detaches) a shared catalog consulted for
    /// table names not registered locally. Local registrations shadow the
    /// catalog.
    pub fn set_catalog(&mut self, catalog: Option<Arc<SharedCatalog>>) {
        self.catalog = catalog;
    }

    /// Replaces the session's statistics cache — the `dbex-serve` path
    /// installs one process-wide cache into every connection's session so
    /// builds warm each other across clients.
    pub fn set_stats_cache(&mut self, cache: Arc<StatsCache>) {
        self.stats_cache = cache;
    }

    /// Turns per-build span tracing on or off. While on, every CAD build
    /// records the span tree, attaches its rendering to
    /// [`QueryOutput::Cad`], and forwards it to the trace sink (if any).
    /// `EXPLAIN ANALYZE` traces its build regardless of this flag.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Whether per-build span tracing is on.
    pub fn tracing(&self) -> bool {
        self.tracing
    }

    /// Installs (or, with `None`, removes) a sink receiving the span tree
    /// of every traced build. Installing a sink implies tracing for CAD
    /// builds even when [`Session::set_tracing`] is off.
    pub fn set_trace_sink(&mut self, sink: Option<Arc<dyn TraceSink>>) {
        self.trace_sink = sink;
    }

    /// Sets the execution budget applied to every CAD View build. The
    /// default is [`ExecBudget::unlimited`].
    pub fn set_budget(&mut self, budget: ExecBudget) {
        self.budget = budget;
    }

    /// The session's execution budget.
    pub fn budget(&self) -> &ExecBudget {
        &self.budget
    }

    /// Sets the worker-thread count for CAD View builds: `1` = sequential,
    /// `0` = auto (`DBEX_THREADS` env, else hardware parallelism). Output
    /// is byte-identical for any setting at a fixed seed.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = Some(threads);
    }

    /// The configured thread count (`None` = builder default, sequential).
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }

    /// The session's shared statistics cache (codecs + contingency
    /// tables), for diagnostics.
    pub fn stats_cache(&self) -> &StatsCache {
        &self.stats_cache
    }

    /// A registered table: session-local names first, then the shared
    /// catalog (if attached). Returns a clone of the `Arc`, so the table
    /// stays alive for the whole statement even if another session
    /// re-registers the name concurrently.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .get(name)
            .map(Arc::clone)
            .or_else(|| self.catalog.as_ref().and_then(|c| c.get(name)))
            .ok_or_else(|| {
                SessionError::UnknownTable {
                    name: name.to_owned(),
                }
                .into()
            })
    }

    /// A stored CAD View.
    pub fn cad_view(&self, name: &str) -> Result<&CadView> {
        self.cad_views.get(name).ok_or_else(|| {
            SessionError::UnknownCadView {
                name: name.to_owned(),
            }
            .into()
        })
    }

    /// Parses and executes one statement.
    pub fn execute(&mut self, sql: &str) -> Result<QueryOutput> {
        let stmt = parse(sql)?;
        self.execute_statement(stmt)
    }

    /// Executes a multi-statement script: statements separated by `;`
    /// (semicolons inside single-quoted strings are respected). Empty
    /// statements are skipped. Stops at the first error.
    pub fn execute_script(&mut self, script: &str) -> Result<Vec<QueryOutput>> {
        let mut outputs = Vec::new();
        for stmt in split_statements(script) {
            if stmt.trim().is_empty() {
                continue;
            }
            outputs.push(self.execute(&stmt)?);
        }
        Ok(outputs)
    }

    /// Executes an already-parsed statement.
    ///
    /// This is a hard panic boundary: a panic anywhere below (a bug, not a
    /// user error) is caught, converted into [`QueryError::Panicked`], and
    /// any CAD View the statement may have left half-mutated is dropped,
    /// so the shell or a server loop survives every input.
    pub fn execute_statement(&mut self, stmt: Statement) -> Result<QueryOutput> {
        dbex_obs::counter!("query.statements").incr(1);
        // CREATE CADVIEW inserts atomically at the end, but REORDER
        // mutates a stored view in place — if it panics midway the view
        // is poisoned and must not be served again.
        let at_risk: Option<String> = match &stmt {
            Statement::Reorder(r) => Some(r.view.clone()),
            _ => None,
        };
        match catch_unwind(AssertUnwindSafe(|| self.dispatch(stmt))) {
            Ok(result) => result,
            Err(payload) => {
                if let Some(name) = at_risk {
                    self.cad_views.remove(&name);
                }
                Err(QueryError::Panicked(CaughtPanic::from_payload(&*payload)))
            }
        }
    }

    fn dispatch(&mut self, stmt: Statement) -> Result<QueryOutput> {
        match stmt {
            Statement::Select(s) => self.run_select(s),
            Statement::CreateCadView(c) => self.run_create_cadview(c),
            Statement::ExplainCadView(c) => self.run_explain_cadview(c, false),
            Statement::ExplainAnalyzeCadView(c) => self.run_explain_cadview(c, true),
            Statement::Highlight(h) => self.run_highlight(h),
            Statement::Reorder(r) => self.run_reorder(r),
            Statement::Describe(name) => self.run_describe(&name),
            Statement::ShowCadViews => {
                let mut names: Vec<&String> = self.cad_views.keys().collect();
                names.sort();
                let mut out = String::new();
                for name in names {
                    let cad = &self.cad_views[name];
                    out.push_str(&format!(
                        "{name}: pivot {} ({} values, {} compare attrs, k = {})\n",
                        cad.pivot_name,
                        cad.rows.len(),
                        cad.compare_names.len(),
                        cad.k
                    ));
                }
                if out.is_empty() {
                    out.push_str("(no CAD Views)\n");
                }
                Ok(QueryOutput::Text(out))
            }
            Statement::DropCadView(name) => {
                if self.cad_views.remove(&name).is_none() {
                    return Err(SessionError::UnknownCadView { name }.into());
                }
                self.view_contexts.remove(&name);
                Ok(QueryOutput::Text(format!("dropped CAD View {name}\n")))
            }
            Statement::Suggest(s) => self.run_suggest(s),
        }
    }

    fn run_select(&self, s: SelectStmt) -> Result<QueryOutput> {
        let table = self.table(&s.table)?;
        let view = table.filter(&s.predicate)?;

        // Aggregate query: GROUP BY + aggregates produce a derived table,
        // then ORDER BY / LIMIT apply to it.
        if !s.aggregates.is_empty() {
            for col in &s.columns {
                if !s.group_by.contains(col) {
                    return Err(SessionError::ColumnNotGrouped { column: col.clone() }.into());
                }
            }
            let derived = group_by(&view, &s.group_by, &s.aggregates)?;
            return Self::emit_rows(&derived, &s.order_by, s.limit);
        }
        if !s.group_by.is_empty() {
            return Err(SessionError::GroupByWithoutAggregates.into());
        }

        let schema = table.schema();
        let col_indices: Vec<usize> = if s.columns.is_empty() {
            (0..schema.len()).collect()
        } else {
            s.columns
                .iter()
                .map(|c| schema.index_of(c))
                .collect::<dbex_table::Result<_>>()?
        };
        let columns: Vec<String> = col_indices
            .iter()
            .map(|&i| schema.field(i).name.clone())
            .collect();
        let ordered = if s.order_by.is_empty() {
            view
        } else {
            let keys: Vec<SortKey> = s
                .order_by
                .iter()
                .map(|(a, asc)| SortKey {
                    attribute: a.clone(),
                    ascending: *asc,
                })
                .collect();
            sort_view(&view, &keys)?
        };
        let limit = s.limit.unwrap_or(usize::MAX);
        let rows = ordered
            .row_ids()
            .iter()
            .take(limit)
            .map(|&r| {
                col_indices
                    .iter()
                    .map(|&c| table.value(r as usize, c))
                    .collect()
            })
            .collect();
        Ok(QueryOutput::Rows { columns, rows })
    }

    /// Materializes a derived table (all columns) with optional ordering
    /// and limit.
    fn emit_rows(
        table: &Table,
        order_by: &[(String, bool)],
        limit: Option<usize>,
    ) -> Result<QueryOutput> {
        let view = if order_by.is_empty() {
            table.full_view()
        } else {
            let keys: Vec<SortKey> = order_by
                .iter()
                .map(|(a, asc)| SortKey {
                    attribute: a.clone(),
                    ascending: *asc,
                })
                .collect();
            sort_view(&table.full_view(), &keys)?
        };
        let limit = limit.unwrap_or(usize::MAX);
        let columns = table
            .schema()
            .names()
            .into_iter()
            .map(str::to_owned)
            .collect();
        let rows = view
            .row_ids()
            .iter()
            .take(limit)
            .map(|&r| {
                (0..table.num_columns())
                    .map(|c| table.value(r as usize, c))
                    .collect()
            })
            .collect();
        Ok(QueryOutput::Rows { columns, rows })
    }

    fn run_describe(&self, name: &str) -> Result<QueryOutput> {
        let table = self.table(name)?;
        let mut out = format!(
            "table {name}: {} rows, {} attributes\n",
            table.num_rows(),
            table.num_columns()
        );
        for (i, field) in table.schema().fields().iter().enumerate() {
            out.push_str(&format!(
                "  {:<24} {:<12} {:<10} {} distinct\n",
                field.name,
                field.data_type.to_string(),
                if field.queriable { "queriable" } else { "hidden" },
                table.column(i).cardinality(),
            ));
        }
        Ok(QueryOutput::Text(out))
    }

    /// Builds a CAD view, tracing it when the session traces (or
    /// `force_trace` — the `EXPLAIN ANALYZE` path — demands it) and
    /// forwarding the span tree to the installed sink.
    fn build_cad(
        &self,
        result: &View<'_>,
        request: &CadRequest,
        force_trace: bool,
    ) -> Result<CadView> {
        let traced = force_trace || self.tracing || self.trace_sink.is_some();
        let tracer = if traced {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        };
        let cad = build_cad_view_traced(result, request, Some(&self.stats_cache), &tracer)?;
        if let (Some(sink), Some(trace)) = (&self.trace_sink, &cad.trace) {
            sink.record(trace);
        }
        Ok(cad)
    }

    fn run_explain_cadview(&self, c: CadViewStmt, analyze: bool) -> Result<QueryOutput> {
        let table = self.table(&c.table)?;
        let result = table.filter(&c.predicate)?;
        let request = self.cad_request(&c)?;
        let cad = self.build_cad(&result, &request, analyze)?;
        let mut out = format!(
            "CADVIEW {} over {} rows of {}\n  pivot: {} ({} values shown)\n",
            c.name,
            result.len(),
            c.table,
            c.pivot,
            cad.rows.len()
        );
        out.push_str("  compare attributes (forced first, then by chi-square):\n");
        for (name, idx) in cad.compare_names.iter().zip(&cad.compare_attrs) {
            match cad.feature_scores.iter().find(|s| s.attr_index == *idx) {
                Some(score) => out.push_str(&format!(
                    "    {:<20} chi2 = {:>10.1}  dof = {:>4}  p = {:.4}\n",
                    name, score.statistic, score.dof, score.p_value
                )),
                None => out.push_str(&format!("    {name:<20} (user-forced)\n")),
            }
        }
        out.push_str(&format!(
            "  timings: compare-attrs {:.1?} | iunit-generation {:.1?} | others {:.1?}\n",
            cad.timings.compare_attrs, cad.timings.iunit_generation, cad.timings.others
        ));
        out.push_str(&format!(
            "  parallelism: {} thread{}\n",
            cad.threads_used,
            if cad.threads_used == 1 { "" } else { "s" }
        ));
        out.push_str(&format!(
            "  kernel dispatch: {}\n",
            dbex_stats::simd::dispatch().name()
        ));
        out.push_str(&format!("  stats cache: {}\n", self.stats_cache.stats()));
        out.push_str(&format!(
            "  cluster reuse: {} partition(s) served from cache, {} warm start(s)\n",
            cad.partitions_reused, cad.warm_starts
        ));
        if cad.is_degraded() {
            out.push_str("  degradation:\n");
            for d in &cad.degradation {
                out.push_str(&format!("    {d}\n"));
            }
        } else {
            out.push_str("  degradation: none\n");
        }
        if analyze {
            out.push_str("  analyze (per-phase spans):\n");
            match &cad.trace {
                Some(trace) => {
                    for line in trace.render().lines() {
                        out.push_str("    ");
                        out.push_str(line);
                        out.push('\n');
                    }
                }
                None => out.push_str("    (trace unavailable)\n"),
            }
        }
        Ok(QueryOutput::Text(out))
    }

    /// Translates a parsed CADVIEW statement into a builder request,
    /// applying the session's execution budget.
    fn cad_request(&self, c: &CadViewStmt) -> Result<CadRequest> {
        let mut request = CadRequest::new(&c.pivot)
            .with_compare(c.compare_attrs.clone())
            .with_budget(self.budget.clone());
        if let Some(threads) = self.threads {
            request.config.threads = threads;
        }
        if let Some(m) = c.limit_columns {
            request = request.with_max_compare_attrs(m);
        }
        if let Some(k) = c.iunits {
            request = request.with_iunits(k);
        }
        if c.order_by.len() > 1 {
            return Err(SessionError::MultipleOrderKeys.into());
        }
        if let Some((attr, order)) = c.order_by.first() {
            request = request.with_preference(match order {
                SortOrder::Asc => Preference::AttributeAsc(attr.clone()),
                SortOrder::Desc => Preference::AttributeDesc(attr.clone()),
            });
        }
        Ok(request)
    }

    fn run_create_cadview(&mut self, c: CadViewStmt) -> Result<QueryOutput> {
        let table = self.table(&c.table)?;
        let result = table.filter(&c.predicate)?;
        let request = self.cad_request(&c)?;
        let cad = self.build_cad(&result, &request, false)?;
        let rendered = cad.render();
        let degradation = cad.degradation.iter().map(|d| d.to_string()).collect();
        let trace = cad.trace.as_ref().map(|t| t.render());
        self.view_contexts
            .insert(c.name.clone(), (c.table.clone(), c.predicate.clone()));
        self.cad_views.insert(c.name.clone(), cad);
        Ok(QueryOutput::Cad {
            name: c.name,
            rendered,
            degradation,
            trace,
        })
    }

    /// Maps a [`SuggestError`] onto the session's typed error hierarchy.
    fn suggest_error(e: SuggestError) -> QueryError {
        match e {
            SuggestError::UnknownAttribute(name) => {
                QueryError::Table(dbex_table::Error::UnknownAttribute(name))
            }
            SuggestError::PivotOutOfRange { pivot, .. } => QueryError::Table(
                dbex_table::Error::UnknownAttribute(format!("pivot column #{pivot}")),
            ),
        }
    }

    /// Suggestion config derived from the session's thread setting.
    fn suggest_config(&self) -> SuggestConfig {
        SuggestConfig {
            threads: self.threads.unwrap_or(1),
            ..SuggestConfig::default()
        }
    }

    fn run_suggest(&mut self, s: SuggestStmt) -> Result<QueryOutput> {
        match s.kind {
            SuggestKind::Next { view } => self.run_suggest_next(&view, s.analyze),
            SuggestKind::Complete { prefix } => self.run_suggest_complete(&prefix, s.analyze),
        }
    }

    /// `SUGGEST NEXT FOR view`: re-derives the view's refined result set
    /// from its stored `(table, predicate)` context and ranks candidate
    /// next-step attributes against the view's pivot by information gain
    /// (symmetrical uncertainty). Contingency tables land in the session's
    /// stats cache keyed on the refined view's fingerprint, so repeating
    /// the statement over an unchanged view is all cache hits.
    fn run_suggest_next(&self, view_name: &str, analyze: bool) -> Result<QueryOutput> {
        let cad = self.cad_view(view_name)?;
        let (table_name, predicate) =
            self.view_contexts
                .get(view_name)
                .ok_or_else(|| SessionError::UnknownCadView {
                    name: view_name.to_owned(),
                })?;
        let table = self.table(table_name)?;
        let result = table.filter(predicate)?;
        let report = dbex_suggest::suggest_next(
            &result,
            cad.pivot_attr,
            &self.suggest_config(),
            Some(&self.stats_cache),
        )
        .map_err(Self::suggest_error)?;
        let items: Vec<(String, f64, String)> = report
            .suggestions
            .iter()
            .map(|s| {
                (
                    s.name.clone(),
                    s.score,
                    format!("gain {:.4} nats over {} values", s.gain, s.cardinality),
                )
            })
            .collect();
        let title = format!(
            "next steps for {view_name} (pivot {}, {} rows):",
            report.pivot_name, report.view_rows
        );
        if analyze {
            let mut out = format!("SUGGEST NEXT FOR {view_name}\n");
            out.push_str(&format!("  pivot: {}\n", report.pivot_name));
            out.push_str(&format!(
                "  candidates: {} ranked over {} rows\n",
                report.candidates, report.view_rows
            ));
            out.push_str(&format!("  rank time: {:.1?}\n", report.elapsed));
            out.push_str(&format!(
                "  cache traffic: {} hit(s), {} miss(es)\n",
                report.cache_hits, report.cache_misses
            ));
            out.push_str(&format!("  stats cache: {}\n", self.stats_cache.stats()));
            out.push_str(&QueryOutput::Suggestions { title, items }.render());
            return Ok(QueryOutput::Text(out));
        }
        Ok(QueryOutput::Suggestions { title, items })
    }

    /// Table names visible to this session (local registrations shadow the
    /// shared catalog), sorted.
    fn visible_table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        if let Some(catalog) = &self.catalog {
            for name in catalog.names() {
                if !self.tables.contains_key(&name) {
                    names.push(name);
                }
            }
        }
        names.sort();
        names
    }

    /// `SUGGEST COMPLETE prefix`: analyzes the partial statement, refines
    /// the target table by the complete predicate clauses preceding the
    /// partial one, and ranks either attribute names or values for the
    /// cursor position. Completion is best-effort on the *context*: an
    /// unparseable preceding clause falls back to the unrefined table
    /// rather than erroring (the user is mid-keystroke), but an unknown
    /// table or attribute is a typed error.
    fn run_suggest_complete(&self, prefix: &str, analyze: bool) -> Result<QueryOutput> {
        let analysis = dbex_suggest::analyze_prefix(prefix);
        let table_name = match analysis.table {
            Some(name) => name,
            // No FROM in the prefix: unambiguous only when the session
            // sees exactly one table.
            None => {
                let names = self.visible_table_names();
                if names.len() == 1 {
                    names.into_iter().next().unwrap_or_default()
                } else {
                    return Err(SessionError::UnknownTable {
                        name: "(no FROM clause in prefix)".to_owned(),
                    }
                    .into());
                }
            }
        };
        let table = self.table(&table_name)?;
        let context_pred = analysis
            .context
            .as_deref()
            .and_then(|ctx| parse_predicate(ctx).ok());
        let result = match &context_pred {
            Some(pred) => table.filter(pred).unwrap_or_else(|_| table.full_view()),
            None => table.full_view(),
        };
        let started = std::time::Instant::now();
        let cfg = self.suggest_config();
        let cache = Some(self.stats_cache.as_ref());
        let (what, items) = match analysis.mode {
            CompletionMode::Attribute { partial } => {
                let items = dbex_suggest::complete_attribute(&result, &partial, &cfg, cache);
                let what = if partial.is_empty() {
                    "attribute".to_owned()
                } else {
                    format!("attribute '{partial}'")
                };
                (what, items)
            }
            CompletionMode::Value { attr, partial } => {
                let items = dbex_suggest::complete_value(&result, &attr, &partial, &cfg, cache)
                    .map_err(Self::suggest_error)?;
                (format!("value for {attr}"), items)
            }
        };
        let elapsed = started.elapsed();
        let items: Vec<(String, f64, String)> = items
            .into_iter()
            .map(|i| (i.text, i.score, i.detail))
            .collect();
        let title = format!(
            "complete {what} over {table_name} ({} rows):",
            result.len()
        );
        if analyze {
            let mut out = format!("SUGGEST COMPLETE {prefix}\n");
            out.push_str(&format!(
                "  context: {}\n",
                if context_pred.is_some() {
                    analysis.context.as_deref().unwrap_or("(none)")
                } else {
                    "(none)"
                }
            ));
            out.push_str(&format!("  rank time: {:.1?}\n", elapsed));
            out.push_str(&format!("  stats cache: {}\n", self.stats_cache.stats()));
            out.push_str(&QueryOutput::Suggestions { title, items }.render());
            return Ok(QueryOutput::Text(out));
        }
        Ok(QueryOutput::Suggestions { title, items })
    }

    /// Result-size floor below which [`Session::preview_create_cadview`]
    /// skips the preview: the exact build of a small result is itself
    /// interactive, so a preview frame would only double the work.
    pub const PREVIEW_MIN_ROWS: usize = 2_000;

    /// Builds a **preview** CAD View for a `CREATE CADVIEW` statement
    /// without storing it — the streamed-response fast path in
    /// `dbex-serve`. The preview reuses the degradation ladder's sampled
    /// rungs via a fixed aggressive config (same seed and cache as the
    /// exact build, so whatever the preview computes warms the follow-up)
    /// and is never inserted into the session's view map: the exact frame
    /// that follows owns the name.
    ///
    /// Returns `None` whenever a preview is not worth streaming or cannot
    /// be built: the statement is not `CREATE CADVIEW`, the filtered
    /// result is under [`Session::PREVIEW_MIN_ROWS`], or anything errors
    /// or panics (the exact build re-runs the statement and surfaces the
    /// failure in FIFO order, so the preview path never reports one).
    pub fn preview_create_cadview(&self, sql: &str) -> Option<QueryOutput> {
        let Ok(Statement::CreateCadView(c)) = parse(sql) else {
            return None;
        };
        let table = self.table(&c.table).ok()?;
        let result = table.filter(&c.predicate).ok()?;
        if result.len() < Self::PREVIEW_MIN_ROWS {
            return None;
        }
        let mut request = self.cad_request(&c).ok()?;
        let config = &mut request.config;
        config.fs_sample = Some(config.fs_sample.map_or(1_000, |s| s.min(1_000)));
        config.cluster_sample = Some(config.cluster_sample.map_or(500, |s| s.min(500)));
        config.adaptive_iunits = true;
        config.kmeans_iters = config.kmeans_iters.min(8);
        catch_unwind(AssertUnwindSafe(|| {
            let cad = self.build_cad(&result, &request, false).ok()?;
            Some(QueryOutput::Cad {
                name: c.name.clone(),
                rendered: cad.render(),
                degradation: cad.degradation.iter().map(|d| d.to_string()).collect(),
                trace: cad.trace.as_ref().map(|t| t.render()),
            })
        }))
        .ok()
        .flatten()
    }

    fn run_highlight(&self, h: HighlightStmt) -> Result<QueryOutput> {
        let cad = self.cad_view(&h.view)?;
        if h.iunit_id == 0 {
            return Err(SessionError::ZeroIUnitId.into());
        }
        let hits = cad.highlight_similar(&h.pivot_value, h.iunit_id - 1, Some(h.threshold));
        Ok(QueryOutput::Highlights(
            hits.into_iter().map(|(v, i, s)| (v, i + 1, s)).collect(),
        ))
    }

    fn run_reorder(&mut self, r: ReorderStmt) -> Result<QueryOutput> {
        let cad = self.cad_views.get_mut(&r.view).ok_or_else(|| {
            QueryError::from(SessionError::UnknownCadView {
                name: r.view.clone(),
            })
        })?;
        let order = cad.reorder_rows(&r.pivot_value);
        if order.is_empty() {
            return Err(SessionError::PivotValueNotInView {
                value: r.pivot_value,
                view: r.view,
            }
            .into());
        }
        cad.apply_row_order(&order);
        Ok(QueryOutput::Reordered(order))
    }
}

/// Splits on semicolons outside single-quoted strings.
fn split_statements(script: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut in_quote = false;
    for c in script.chars() {
        match c {
            '\'' => {
                in_quote = !in_quote;
                current.push(c);
            }
            ';' if !in_quote => {
                out.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        out.push(current);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbex_table::{DataType, Field, TableBuilder};

    fn session() -> Session {
        let mut b = TableBuilder::new(vec![
            Field::new("Make", DataType::Categorical),
            Field::new("Engine", DataType::Categorical),
            Field::new("Price", DataType::Int),
        ])
        .unwrap();
        for i in 0..30i64 {
            let (m, e, p) = match i % 3 {
                0 => ("Ford", "V6", 25_000 + i * 10),
                1 => ("Jeep", "V8", 35_000 + i * 10),
                _ => ("Ford", "V4", 15_000 + i * 10),
            };
            b.push_row(vec![m.into(), e.into(), p.into()]).unwrap();
        }
        let mut s = Session::new();
        s.register_table("cars", b.finish());
        s
    }

    #[test]
    fn preview_builds_without_storing_the_view() {
        let mut b = TableBuilder::new(vec![
            Field::new("Make", DataType::Categorical),
            Field::new("Engine", DataType::Categorical),
            Field::new("Price", DataType::Int),
        ])
        .unwrap();
        for i in 0..2_500i64 {
            let (m, e) = match i % 3 {
                0 => ("Ford", "V6"),
                1 => ("Jeep", "V8"),
                _ => ("Ford", "V4"),
            };
            b.push_row(vec![m.into(), e.into(), (15_000 + i).into()])
                .unwrap();
        }
        let mut s = Session::new();
        s.register_table("cars", b.finish());
        let sql = "CREATE CADVIEW v AS SET pivot = Make FROM cars LIMIT COLUMNS 2 IUNITS 2";

        let preview = s.preview_create_cadview(sql).expect("preview should build");
        let QueryOutput::Cad { name, rendered, .. } = preview else {
            panic!("preview should render as a CAD view");
        };
        assert_eq!(name, "v");
        assert!(rendered.contains("Ford"));
        // The preview must NOT store the view: the exact frame owns it.
        assert!(s.cad_view("v").is_err());
        // Non-CADVIEW statements are not previewable.
        assert!(s.preview_create_cadview("SELECT * FROM cars").is_none());
        // The exact path still works and stores the view.
        s.execute(sql).unwrap();
        assert!(s.cad_view("v").is_ok());
    }

    #[test]
    fn preview_skips_small_results() {
        let s = session(); // 30 rows — far under PREVIEW_MIN_ROWS
        assert!(s
            .preview_create_cadview("CREATE CADVIEW v AS SET pivot = Make FROM cars")
            .is_none());
    }

    #[test]
    fn select_star_and_projection() {
        let mut s = session();
        let QueryOutput::Rows { columns, rows } =
            s.execute("SELECT * FROM cars WHERE Make = Jeep").unwrap()
        else {
            panic!()
        };
        assert_eq!(columns.len(), 3);
        assert_eq!(rows.len(), 10);

        let QueryOutput::Rows { columns, rows } = s
            .execute("SELECT Make, Price FROM cars WHERE Price < 16K LIMIT 3")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(columns, vec!["Make", "Price"]);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][0], Value::Str("Ford".into()));
    }

    #[test]
    fn create_highlight_reorder_pipeline() {
        let mut s = session();
        let out = s
            .execute(
                "CREATE CADVIEW v AS SET pivot = Make FROM cars LIMIT COLUMNS 2 IUNITS 2",
            )
            .unwrap();
        let QueryOutput::Cad { name, rendered, .. } = out else {
            panic!()
        };
        assert_eq!(name, "v");
        assert!(rendered.contains("IUnit 1"));

        let QueryOutput::Highlights(hits) = s
            .execute("HIGHLIGHT SIMILAR IUNITS IN v WHERE SIMILARITY(Ford, 1) > 0.1")
            .unwrap()
        else {
            panic!()
        };
        // 1-based ids and no self-hit.
        assert!(hits.iter().all(|(_, id, _)| *id >= 1));

        let QueryOutput::Reordered(order) = s
            .execute("REORDER ROWS IN v ORDER BY SIMILARITY(Jeep) DESC")
            .unwrap()
        else {
            panic!()
        };
        assert_eq!(order[0].0, "Jeep");
        assert_eq!(s.cad_view("v").unwrap().rows[0].pivot_label, "Jeep");
    }

    #[test]
    fn errors_on_unknown_objects() {
        let mut s = session();
        assert!(s.execute("SELECT * FROM nope").is_err());
        assert!(s
            .execute("HIGHLIGHT SIMILAR IUNITS IN nope WHERE SIMILARITY(Ford, 1) > 1")
            .is_err());
        assert!(s
            .execute("REORDER ROWS IN nope ORDER BY SIMILARITY(Ford) DESC")
            .is_err());
        assert!(s
            .execute("SELECT * FROM cars WHERE NoSuchColumn = 1")
            .is_err());
    }

    #[test]
    fn show_and_drop_cadview_lifecycle() {
        let mut s = session();
        let QueryOutput::Text(t) = s.execute("SHOW CADVIEWS").unwrap() else {
            panic!()
        };
        assert!(t.contains("no CAD Views"));
        s.execute("CREATE CADVIEW v AS SET pivot = Make FROM cars IUNITS 2")
            .unwrap();
        let QueryOutput::Text(t) = s.execute("SHOW CADVIEWS").unwrap() else {
            panic!()
        };
        assert!(t.contains("v: pivot Make"));
        s.execute("DROP CADVIEW v").unwrap();
        assert!(s.cad_view("v").is_err());
        assert!(s.execute("DROP CADVIEW v").is_err());
    }

    #[test]
    fn highlight_validates_iunit_id() {
        let mut s = session();
        s.execute("CREATE CADVIEW v AS SET pivot = Make FROM cars")
            .unwrap();
        assert!(s
            .execute("HIGHLIGHT SIMILAR IUNITS IN v WHERE SIMILARITY(Ford, 0) > 1")
            .is_err());
    }

    #[test]
    fn script_execution() {
        let mut s = session();
        let outputs = s
            .execute_script(
                "SELECT * FROM cars LIMIT 1;\n\
                 CREATE CADVIEW v AS SET pivot = Make FROM cars IUNITS 2;\n\
                 REORDER ROWS IN v ORDER BY SIMILARITY(Jeep) DESC;",
            )
            .unwrap();
        assert_eq!(outputs.len(), 3);
        assert!(matches!(outputs[0], QueryOutput::Rows { .. }));
        assert!(matches!(outputs[2], QueryOutput::Reordered(_)));
        // Errors stop the script.
        assert!(s.execute_script("SELECT * FROM cars; SELECT * FROM nope").is_err());
        // Quoted semicolons survive.
        let out = s
            .execute_script("SELECT * FROM cars WHERE Make = 'a;b' LIMIT 1")
            .unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn explain_reports_parallelism_and_cache() {
        let mut s = session();
        let QueryOutput::Text(t) = s
            .execute("EXPLAIN CREATE CADVIEW v AS SET pivot = Make FROM cars IUNITS 2")
            .unwrap()
        else {
            panic!()
        };
        assert!(t.contains("parallelism: 1 thread\n"), "{t}");
        let dispatch = dbex_stats::simd::dispatch().name();
        assert!(
            t.contains(&format!("kernel dispatch: {dispatch}\n")),
            "{t}"
        );
        assert!(t.contains("stats cache:"), "{t}");

        s.set_threads(2);
        let QueryOutput::Text(t) = s
            .execute("EXPLAIN CREATE CADVIEW v AS SET pivot = Make FROM cars IUNITS 2")
            .unwrap()
        else {
            panic!()
        };
        assert!(t.contains("parallelism: 2 threads\n"), "{t}");
    }

    #[test]
    fn repeated_create_hits_stats_cache_and_renders_identically() {
        let mut s = session();
        let stmt = "CREATE CADVIEW v AS SET pivot = Make FROM cars IUNITS 2";
        let QueryOutput::Cad { rendered: r1, .. } = s.execute(stmt).unwrap() else {
            panic!()
        };
        let QueryOutput::Cad { rendered: r2, .. } = s.execute(stmt).unwrap() else {
            panic!()
        };
        assert_eq!(r1, r2);
        assert!(
            s.stats_cache().stats().hits > 0,
            "second build should reuse cached stats: {}",
            s.stats_cache().stats()
        );

        // Parallel build of the same statement renders identically too.
        s.set_threads(4);
        let QueryOutput::Cad { rendered: r3, .. } = s.execute(stmt).unwrap() else {
            panic!()
        };
        assert_eq!(r1, r3);
    }

    #[test]
    fn explain_analyze_reports_span_tree() {
        let mut s = session();
        let QueryOutput::Text(t) = s
            .execute("EXPLAIN ANALYZE CADVIEW v AS SET pivot = Make FROM cars IUNITS 2")
            .unwrap()
        else {
            panic!()
        };
        assert!(t.contains("analyze (per-phase spans):"), "{t}");
        for span in [
            "cad_build",
            "pivot_encode",
            "compare_attrs",
            "iunit_generation",
            "encode_matrix",
            "cluster_partition",
            "topk",
            "solve_partition",
        ] {
            assert!(t.contains(span), "span {span} missing from:\n{t}");
        }
        assert!(t.contains("rows_input=30"), "{t}");
        assert!(t.contains("cache_hits="), "{t}");
        assert!(t.contains("degradation_level=0"), "{t}");
        // The `CREATE` keyword stays optional but accepted.
        assert!(s
            .execute("EXPLAIN ANALYZE CREATE CADVIEW v AS SET pivot = Make FROM cars")
            .is_ok());
        // Plain EXPLAIN stays trace-free.
        let QueryOutput::Text(t) = s
            .execute("EXPLAIN CADVIEW v AS SET pivot = Make FROM cars")
            .unwrap()
        else {
            panic!()
        };
        assert!(!t.contains("analyze (per-phase spans)"), "{t}");
    }

    #[test]
    fn tracing_attaches_traces_and_feeds_the_sink() {
        let mut s = session();
        let stmt = "CREATE CADVIEW v AS SET pivot = Make FROM cars IUNITS 2";
        let QueryOutput::Cad { trace, .. } = s.execute(stmt).unwrap() else {
            panic!()
        };
        assert!(trace.is_none(), "tracing off by default");

        let sink = Arc::new(dbex_obs::MemorySink::new());
        s.set_tracing(true);
        s.set_trace_sink(Some(sink.clone()));
        let QueryOutput::Cad { trace, .. } = s.execute(stmt).unwrap() else {
            panic!()
        };
        let rendered = trace.expect("tracing on attaches the rendered tree");
        assert!(rendered.contains("cad_build"), "{rendered}");
        assert_eq!(sink.len(), 1);
        assert!(sink.span_names().contains("cluster_partition"));

        s.set_tracing(false);
        s.set_trace_sink(None);
        let QueryOutput::Cad { trace, .. } = s.execute(stmt).unwrap() else {
            panic!()
        };
        assert!(trace.is_none());
    }

    #[test]
    fn reorder_unknown_value_errors() {
        let mut s = session();
        s.execute("CREATE CADVIEW v AS SET pivot = Make FROM cars")
            .unwrap();
        assert!(s
            .execute("REORDER ROWS IN v ORDER BY SIMILARITY(Tesla) DESC")
            .is_err());
    }
}
