//! Recursive-descent parser for the query language.

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::{tokenize, Token};
use dbex_table::predicate::CmpOp;
use dbex_table::{Aggregate, Predicate, Value};

/// Parser-local result alias.
type Result<T> = std::result::Result<T, ParseError>;

/// Renders the token at the cursor for error messages.
fn describe(tok: Option<&Token>) -> String {
    match tok {
        Some(t) => format!("{t:?}"),
        None => "end of input".to_owned(),
    }
}

/// Parses one statement from `input`.
///
/// ```
/// use dbex_query::{parse, Statement};
///
/// let stmt = parse("SELECT * FROM cars WHERE Price BETWEEN 10K AND 30K").unwrap();
/// assert!(matches!(stmt, Statement::Select(_)));
/// assert!(parse("DROP TABLE cars").is_err());
/// ```
pub fn parse(input: &str) -> Result<Statement> {
    // SUGGEST is handled before tokenization: `SUGGEST COMPLETE` carries a
    // raw, by-definition-partial statement prefix (unterminated strings,
    // dangling operators) that the lexer would reject.
    if let Some(stmt) = parse_suggest(input)? {
        return Ok(stmt);
    }
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_sym(";"); // optional trailing semicolon
    if !p.at_end() {
        return Err(ParseError::TrailingInput {
            near: describe(p.peek()),
        });
    }
    Ok(stmt)
}

/// Parses `input` as a standalone predicate — the body of a `WHERE`
/// clause. Used by the suggestion engine to evaluate the *complete*
/// clauses preceding a partial one.
pub fn parse_predicate(input: &str) -> Result<Predicate> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let pred = p.predicate()?;
    if !p.at_end() {
        return Err(ParseError::TrailingInput {
            near: describe(p.peek()),
        });
    }
    Ok(pred)
}

/// Strips the case-insensitive keyword sequence `kws` (whole words,
/// whitespace-separated) from the front of `text`; `None` on mismatch.
fn strip_kw_seq<'a>(text: &'a str, kws: &[&str]) -> Option<&'a str> {
    let mut rest = text;
    for kw in kws {
        let t = rest.trim_start();
        // Byte-wise compare: the keywords are pure ASCII, so a matched
        // prefix always ends on a char boundary even in multi-byte input.
        let tb = t.as_bytes();
        if tb.len() < kw.len() || !tb[..kw.len()].eq_ignore_ascii_case(kw.as_bytes()) {
            return None;
        }
        let after = &t[kw.len()..];
        if after
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            return None;
        }
        rest = after;
    }
    Some(rest)
}

/// Recognizes `[EXPLAIN ANALYZE] SUGGEST NEXT FOR view` and
/// `[EXPLAIN ANALYZE] SUGGEST COMPLETE ['prefix'|prefix]` on the raw
/// input. Returns `Ok(None)` when the input is not a SUGGEST statement.
fn parse_suggest(input: &str) -> Result<Option<Statement>> {
    let trimmed = input.trim();
    let (analyze, rest) = match strip_kw_seq(trimmed, &["EXPLAIN", "ANALYZE", "SUGGEST"]) {
        Some(rest) => (true, rest),
        None => match strip_kw_seq(trimmed, &["SUGGEST"]) {
            Some(rest) => (false, rest),
            None => return Ok(None),
        },
    };
    if let Some(rest) = strip_kw_seq(rest, &["NEXT", "FOR"]) {
        let view = rest.trim().trim_end_matches(';').trim();
        if view.is_empty() {
            return Err(ParseError::UnexpectedEnd);
        }
        if !view
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            return Err(ParseError::UnexpectedToken {
                expected: "CAD View name".to_owned(),
                found: view.to_owned(),
            });
        }
        return Ok(Some(Statement::Suggest(SuggestStmt {
            kind: SuggestKind::Next {
                view: view.to_owned(),
            },
            analyze,
        })));
    }
    if let Some(rest) = strip_kw_seq(rest, &["COMPLETE"]) {
        let body = rest.trim().trim_end_matches(';').trim();
        // An optional single-quote wrapping protects leading/trailing
        // whitespace in the prefix; inner quotes are left untouched.
        let prefix = if body.len() >= 2 && body.starts_with('\'') && body.ends_with('\'') {
            &body[1..body.len() - 1]
        } else {
            body
        };
        if prefix.trim().is_empty() {
            return Err(ParseError::UnexpectedEnd);
        }
        return Ok(Some(Statement::Suggest(SuggestStmt {
            kind: SuggestKind::Complete {
                prefix: prefix.to_owned(),
            },
            analyze,
        })));
    }
    Err(ParseError::UnexpectedToken {
        expected: "NEXT FOR <view> or COMPLETE <prefix>".to_owned(),
        found: rest
            .split_whitespace()
            .next()
            .unwrap_or("end of input")
            .to_owned(),
    })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or(ParseError::UnexpectedEnd)?;
        self.pos += 1;
        Ok(t)
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.is_kw(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(ParseError::UnexpectedToken {
                expected: kw.to_owned(),
                found: describe(self.peek()),
            })
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Token::Sym(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<()> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(ParseError::UnexpectedToken {
                expected: format!("{sym:?}"),
                found: describe(self.peek()),
            })
        }
    }

    fn identifier(&mut self) -> Result<String> {
        match self.next()? {
            Token::Word(w) => Ok(w),
            Token::Str(s) => Ok(s),
            other => Err(ParseError::UnexpectedToken {
                expected: "identifier".to_owned(),
                found: format!("{other:?}"),
            }),
        }
    }

    fn integer(&mut self) -> Result<i64> {
        match self.next()? {
            Token::Int(v) => Ok(v),
            other => Err(ParseError::UnexpectedToken {
                expected: "integer".to_owned(),
                found: format!("{other:?}"),
            }),
        }
    }

    fn number(&mut self) -> Result<f64> {
        match self.next()? {
            Token::Int(v) => Ok(v as f64),
            Token::Float(v) => Ok(v),
            other => Err(ParseError::UnexpectedToken {
                expected: "number".to_owned(),
                found: format!("{other:?}"),
            }),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.peek_kw("SELECT") {
            Ok(Statement::Select(self.select()?))
        } else if self.peek_kw("CREATE") {
            Ok(Statement::CreateCadView(self.create_cadview()?))
        } else if self.peek_kw("EXPLAIN") {
            self.expect_kw("EXPLAIN")?;
            let analyze = self.eat_kw("ANALYZE");
            // `CREATE` is optional under EXPLAIN: both
            // `EXPLAIN ANALYZE CADVIEW ...` and
            // `EXPLAIN ANALYZE CREATE CADVIEW ...` parse.
            self.eat_kw("CREATE");
            let stmt = self.cadview_body()?;
            Ok(if analyze {
                Statement::ExplainAnalyzeCadView(stmt)
            } else {
                Statement::ExplainCadView(stmt)
            })
        } else if self.peek_kw("DESCRIBE") || self.peek_kw("DESC") {
            self.pos += 1;
            Ok(Statement::Describe(self.identifier()?))
        } else if self.peek_kw("SHOW") {
            self.expect_kw("SHOW")?;
            self.expect_kw("CADVIEWS")?;
            Ok(Statement::ShowCadViews)
        } else if self.peek_kw("DROP") {
            self.expect_kw("DROP")?;
            self.expect_kw("CADVIEW")?;
            Ok(Statement::DropCadView(self.identifier()?))
        } else if self.peek_kw("HIGHLIGHT") {
            Ok(Statement::Highlight(self.highlight()?))
        } else if self.peek_kw("REORDER") {
            Ok(Statement::Reorder(self.reorder()?))
        } else {
            Err(ParseError::UnknownStatement {
                found: describe(self.peek()),
            })
        }
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("SELECT")?;
        let (columns, aggregates) = self.select_items()?;
        self.expect_kw("FROM")?;
        let table = self.identifier()?;
        let predicate = if self.eat_kw("WHERE") {
            self.predicate()?
        } else {
            Predicate::Const(true)
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.identifier()?);
            while self.eat_sym(",") {
                group_by.push(self.identifier()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let attr = self.identifier()?;
                let ascending = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                order_by.push((attr, ascending));
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            Some(self.integer()? as usize)
        } else {
            None
        };
        Ok(SelectStmt {
            columns,
            aggregates,
            table,
            predicate,
            group_by,
            order_by,
            limit,
        })
    }

    /// Select list: `*`, columns, and/or aggregate calls.
    fn select_items(&mut self) -> Result<(Vec<String>, Vec<Aggregate>)> {
        if self.eat_sym("*") {
            return Ok((Vec::new(), Vec::new()));
        }
        let mut columns = Vec::new();
        let mut aggregates = Vec::new();
        loop {
            if let Some(agg) = self.try_aggregate()? {
                aggregates.push(agg);
            } else {
                columns.push(self.identifier()?);
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok((columns, aggregates))
    }

    /// Parses `COUNT(*)` / `SUM(a)` / `AVG(a)` / `MIN(a)` / `MAX(a)` if the
    /// next tokens form one.
    fn try_aggregate(&mut self) -> Result<Option<Aggregate>> {
        let func = match self.peek() {
            Some(t) if t.is_kw("COUNT") => "count",
            Some(t) if t.is_kw("SUM") => "sum",
            Some(t) if t.is_kw("AVG") => "avg",
            Some(t) if t.is_kw("MIN") => "min",
            Some(t) if t.is_kw("MAX") => "max",
            _ => return Ok(None),
        };
        // Only a function call if followed by '('.
        if !matches!(self.tokens.get(self.pos + 1), Some(Token::Sym("("))) {
            return Ok(None);
        }
        self.pos += 2; // function name + '('
        let agg = if func == "count" {
            self.expect_sym("*")?;
            Aggregate::Count
        } else {
            let attr = self.identifier()?;
            match func {
                "sum" => Aggregate::Sum(attr),
                "avg" => Aggregate::Avg(attr),
                "min" => Aggregate::Min(attr),
                _ => Aggregate::Max(attr),
            }
        };
        self.expect_sym(")")?;
        Ok(Some(agg))
    }

    /// Plain column list (used by `CREATE CADVIEW`'s SELECT clause).
    fn select_list(&mut self) -> Result<Vec<String>> {
        if self.eat_sym("*") {
            return Ok(Vec::new());
        }
        let mut cols = vec![self.identifier()?];
        while self.eat_sym(",") {
            cols.push(self.identifier()?);
        }
        Ok(cols)
    }

    fn create_cadview(&mut self) -> Result<CadViewStmt> {
        self.expect_kw("CREATE")?;
        self.cadview_body()
    }

    /// The CADVIEW statement body, after any `CREATE` / `EXPLAIN` prefix.
    fn cadview_body(&mut self) -> Result<CadViewStmt> {
        self.expect_kw("CADVIEW")?;
        let name = self.identifier()?;
        self.expect_kw("AS")?;
        self.expect_kw("SET")?;
        self.expect_kw("pivot")?;
        self.expect_sym("=")?;
        let pivot = self.identifier()?;
        let compare_attrs = if self.eat_kw("SELECT") {
            self.select_list()?
        } else {
            Vec::new()
        };
        self.expect_kw("FROM")?;
        let table = self.identifier()?;
        let predicate = if self.eat_kw("WHERE") {
            self.predicate()?
        } else {
            Predicate::Const(true)
        };
        let mut limit_columns = None;
        let mut iunits = None;
        let mut order_by = Vec::new();
        loop {
            if self.eat_kw("LIMIT") {
                self.expect_kw("COLUMNS")?;
                limit_columns = Some(self.integer()? as usize);
            } else if self.eat_kw("IUNITS") {
                iunits = Some(self.integer()? as usize);
            } else if self.eat_kw("ORDER") {
                self.expect_kw("BY")?;
                loop {
                    let attr = self.identifier()?;
                    let order = if self.eat_kw("DESC") {
                        SortOrder::Desc
                    } else {
                        self.eat_kw("ASC");
                        SortOrder::Asc
                    };
                    order_by.push((attr, order));
                    if !self.eat_sym(",") {
                        break;
                    }
                }
            } else {
                break;
            }
        }
        Ok(CadViewStmt {
            name,
            pivot,
            compare_attrs,
            table,
            predicate,
            limit_columns,
            iunits,
            order_by,
        })
    }

    fn highlight(&mut self) -> Result<HighlightStmt> {
        self.expect_kw("HIGHLIGHT")?;
        self.expect_kw("SIMILAR")?;
        self.expect_kw("IUNITS")?;
        self.expect_kw("IN")?;
        let view = self.identifier()?;
        self.expect_kw("WHERE")?;
        self.expect_kw("SIMILARITY")?;
        self.expect_sym("(")?;
        let pivot_value = self.identifier()?;
        self.expect_sym(",")?;
        let iunit_id = self.integer()? as usize;
        self.expect_sym(")")?;
        self.expect_sym(">")?;
        let threshold = self.number()?;
        Ok(HighlightStmt {
            view,
            pivot_value,
            iunit_id,
            threshold,
        })
    }

    fn reorder(&mut self) -> Result<ReorderStmt> {
        self.expect_kw("REORDER")?;
        self.expect_kw("ROWS")?;
        self.expect_kw("IN")?;
        let view = self.identifier()?;
        self.expect_kw("ORDER")?;
        self.expect_kw("BY")?;
        self.expect_kw("SIMILARITY")?;
        self.expect_sym("(")?;
        let pivot_value = self.identifier()?;
        self.expect_sym(")")?;
        self.eat_kw("DESC");
        Ok(ReorderStmt { view, pivot_value })
    }

    // --- predicates: OR < AND < NOT < primary ---

    fn predicate(&mut self) -> Result<Predicate> {
        let mut terms = vec![self.and_expr()?];
        while self.eat_kw("OR") {
            terms.push(self.and_expr()?);
        }
        Ok(if terms.len() == 1 {
            terms.remove(0)
        } else {
            Predicate::Or(terms)
        })
    }

    fn and_expr(&mut self) -> Result<Predicate> {
        let mut terms = vec![self.unary()?];
        while self.eat_kw("AND") {
            terms.push(self.unary()?);
        }
        Ok(if terms.len() == 1 {
            terms.remove(0)
        } else {
            Predicate::And(terms)
        })
    }

    fn unary(&mut self) -> Result<Predicate> {
        if self.eat_kw("NOT") {
            return Ok(Predicate::Not(Box::new(self.unary()?)));
        }
        if self.eat_sym("(") {
            let inner = self.predicate()?;
            self.expect_sym(")")?;
            return Ok(inner);
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Predicate> {
        let attribute = self.identifier()?;
        if self.eat_kw("BETWEEN") {
            let low = self.literal()?;
            self.expect_kw("AND")?;
            let high = self.literal()?;
            return Ok(Predicate::Between {
                attribute,
                low,
                high,
            });
        }
        if self.eat_kw("IN") {
            self.expect_sym("(")?;
            let mut values = vec![self.literal()?];
            while self.eat_sym(",") {
                values.push(self.literal()?);
            }
            self.expect_sym(")")?;
            return Ok(Predicate::In { attribute, values });
        }
        if self.eat_kw("IS") {
            if self.eat_kw("NOT") {
                self.expect_kw("NULL")?;
                return Ok(Predicate::Not(Box::new(Predicate::IsNull { attribute })));
            }
            self.expect_kw("NULL")?;
            return Ok(Predicate::IsNull { attribute });
        }
        let op = match self.next()? {
            Token::Sym("=") => CmpOp::Eq,
            Token::Sym("!=") => CmpOp::Ne,
            Token::Sym("<") => CmpOp::Lt,
            Token::Sym("<=") => CmpOp::Le,
            Token::Sym(">") => CmpOp::Gt,
            Token::Sym(">=") => CmpOp::Ge,
            other => {
                return Err(ParseError::UnexpectedToken {
                    expected: "comparison operator".to_owned(),
                    found: format!("{other:?}"),
                })
            }
        };
        let value = self.literal()?;
        Ok(Predicate::Compare {
            attribute,
            op,
            value,
        })
    }

    fn literal(&mut self) -> Result<Value> {
        match self.next()? {
            Token::Int(v) => Ok(Value::Int(v)),
            Token::Float(v) => Ok(Value::Float(v)),
            Token::Str(s) => Ok(Value::Str(s)),
            Token::Word(w) if w.eq_ignore_ascii_case("NULL") => Ok(Value::Null),
            Token::Word(w) => Ok(Value::Str(w)), // bare word literal
            other => Err(ParseError::UnexpectedToken {
                expected: "literal".to_owned(),
                found: format!("{other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_initial_query() {
        let stmt = parse(
            "SELECT * FROM D WHERE Mileage BETWEEN 10K AND 30K AND \
             Transmission = Automatic AND BodyType = SUV",
        )
        .unwrap();
        let Statement::Select(s) = stmt else {
            panic!("expected select");
        };
        assert_eq!(s.table, "D");
        assert!(s.columns.is_empty());
        assert_eq!(s.predicate.referenced_attributes().len(), 3);
    }

    #[test]
    fn parses_paper_cadview_query() {
        let stmt = parse(
            "CREATE CADVIEW CompareMakes AS \
             SET pivot = Make \
             SELECT Price \
             FROM UsedCars \
             WHERE Mileage BETWEEN 10K AND 30K AND Transmission = Automatic \
               AND BodyType = SUV AND \
               (Make = Jeep OR Make = Toyota OR Make = Honda OR Make = Ford OR Make = Chevrolet) \
             LIMIT COLUMNS 5 IUNITS 3",
        )
        .unwrap();
        let Statement::CreateCadView(c) = stmt else {
            panic!("expected cadview");
        };
        assert_eq!(c.name, "CompareMakes");
        assert_eq!(c.pivot, "Make");
        assert_eq!(c.compare_attrs, vec!["Price"]);
        assert_eq!(c.limit_columns, Some(5));
        assert_eq!(c.iunits, Some(3));
        assert!(c.order_by.is_empty());
    }

    #[test]
    fn parses_highlight() {
        let stmt = parse(
            "HIGHLIGHT SIMILAR IUNITS IN CompareMakes WHERE SIMILARITY(Chevrolet, 3) > 3.5",
        )
        .unwrap();
        let Statement::Highlight(h) = stmt else {
            panic!("expected highlight");
        };
        assert_eq!(h.view, "CompareMakes");
        assert_eq!(h.pivot_value, "Chevrolet");
        assert_eq!(h.iunit_id, 3);
        assert_eq!(h.threshold, 3.5);
    }

    #[test]
    fn parses_reorder() {
        let stmt =
            parse("REORDER ROWS IN CompareMakes ORDER BY SIMILARITY(Chevrolet) DESC").unwrap();
        let Statement::Reorder(r) = stmt else {
            panic!("expected reorder");
        };
        assert_eq!(r.view, "CompareMakes");
        assert_eq!(r.pivot_value, "Chevrolet");
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let Statement::Select(s) =
            parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap()
        else {
            panic!()
        };
        let Predicate::Or(terms) = s.predicate else {
            panic!("top level should be OR");
        };
        assert_eq!(terms.len(), 2);
        assert!(matches!(terms[1], Predicate::And(_)));
    }

    #[test]
    fn not_and_is_null() {
        let Statement::Select(s) =
            parse("SELECT * FROM t WHERE NOT a = 1 AND b IS NULL AND c IS NOT NULL").unwrap()
        else {
            panic!()
        };
        let Predicate::And(terms) = s.predicate else {
            panic!()
        };
        assert!(matches!(terms[0], Predicate::Not(_)));
        assert!(matches!(terms[1], Predicate::IsNull { .. }));
        assert!(matches!(terms[2], Predicate::Not(_)));
    }

    #[test]
    fn in_list_and_quoted_values() {
        let Statement::Select(s) =
            parse("SELECT Make, Model FROM cars WHERE Model IN ('Traverse LT', 'Equinox LT')")
                .unwrap()
        else {
            panic!()
        };
        assert_eq!(s.columns, vec!["Make", "Model"]);
        let Predicate::In { values, .. } = s.predicate else {
            panic!()
        };
        assert_eq!(values[0], Value::Str("Traverse LT".into()));
    }

    #[test]
    fn order_by_in_cadview() {
        let Statement::CreateCadView(c) = parse(
            "CREATE CADVIEW v AS SET pivot = Make FROM cars ORDER BY Price ASC IUNITS 4",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(c.order_by, vec![("Price".into(), SortOrder::Asc)]);
        assert_eq!(c.iunits, Some(4));
        assert!(c.compare_attrs.is_empty());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("SELECT * FROM t WHERE a = 1 banana banana").is_err());
        assert!(parse("DELETE FROM t").is_err());
        assert!(parse("SELECT *").is_err());
    }

    #[test]
    fn show_and_drop_cadviews() {
        assert_eq!(parse("SHOW CADVIEWS").unwrap(), Statement::ShowCadViews);
        assert_eq!(
            parse("DROP CADVIEW v;").unwrap(),
            Statement::DropCadView("v".into())
        );
        assert!(parse("SHOW TABLES").is_err());
        assert!(parse("DROP TABLE t").is_err());
    }

    #[test]
    fn semicolon_tolerated() {
        assert!(parse("SELECT * FROM t;").is_ok());
    }

    #[test]
    fn multibyte_input_never_panics_keyword_stripping() {
        // Keyword stripping walks byte offsets; multi-byte chars at a
        // keyword-length boundary must fail the match, not panic.
        for input in ["ééééééé", "ÉXPLAIN ANALYZE x", "SUGGESTé", "SUGGEST NEXT FOR café"] {
            let _ = parse(input);
        }
    }
}
