//! Statement AST for the query language.

use dbex_table::{Aggregate, Predicate};

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

/// `SELECT cols|aggregates FROM table [WHERE pred] [GROUP BY cols]
/// [ORDER BY col [ASC|DESC], ...] [LIMIT n]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Projected column names; empty means `*` (ignored when
    /// `aggregates` is non-empty, where it must equal `group_by`).
    pub columns: Vec<String>,
    /// Aggregate functions in the select list; non-empty makes this an
    /// aggregate query.
    pub aggregates: Vec<Aggregate>,
    /// Source table name.
    pub table: String,
    /// Filter; `Predicate::Const(true)` when absent.
    pub predicate: Predicate,
    /// `GROUP BY` attributes.
    pub group_by: Vec<String>,
    /// `ORDER BY` keys: `(attribute, ascending)`.
    pub order_by: Vec<(String, bool)>,
    /// Row limit, if any.
    pub limit: Option<usize>,
}

/// `CREATE CADVIEW name AS SET pivot = attr SELECT attrs FROM table
/// [WHERE pred] [LIMIT COLUMNS m] [IUNITS k] [ORDER BY attr ASC|DESC]`
/// (paper Section 2.1.2).
#[derive(Debug, Clone, PartialEq)]
pub struct CadViewStmt {
    /// Name under which the view is stored.
    pub name: String,
    /// Pivot Attribute.
    pub pivot: String,
    /// Explicit Compare Attributes (the `SELECT` list; may be empty).
    pub compare_attrs: Vec<String>,
    /// Source table name.
    pub table: String,
    /// Filter defining the result context.
    pub predicate: Predicate,
    /// `LIMIT COLUMNS m` — total Compare Attribute budget.
    pub limit_columns: Option<usize>,
    /// `IUNITS k` — IUnits per pivot value.
    pub iunits: Option<usize>,
    /// `ORDER BY attr [ASC|DESC], ...` — IUnit preference function. The
    /// paper's grammar admits a key list; the preference function is
    /// one-dimensional, so execution accepts exactly one key and rejects
    /// more with a clear error.
    pub order_by: Vec<(String, SortOrder)>,
}

/// `HIGHLIGHT SIMILAR IUNITS IN view WHERE SIMILARITY(value, id) > t`.
#[derive(Debug, Clone, PartialEq)]
pub struct HighlightStmt {
    /// CAD View name.
    pub view: String,
    /// Pivot value of the probe IUnit.
    pub pivot_value: String,
    /// 1-based IUnit id of the probe (as in the paper's example).
    pub iunit_id: usize,
    /// Similarity threshold.
    pub threshold: f64,
}

/// `REORDER ROWS IN view ORDER BY SIMILARITY(value) DESC`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReorderStmt {
    /// CAD View name.
    pub view: String,
    /// Reference pivot value.
    pub pivot_value: String,
}

/// What a `SUGGEST` statement asks for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SuggestKind {
    /// `SUGGEST NEXT FOR view`: rank next-step attributes for a stored
    /// CAD View's current (refined) result set by information gain
    /// against its pivot.
    Next {
        /// The stored CAD View name.
        view: String,
    },
    /// `SUGGEST COMPLETE 'prefix'`: rank completions for a partial
    /// statement prefix (attribute or value position, inferred from the
    /// prefix text).
    Complete {
        /// The raw partial statement text, verbatim.
        prefix: String,
    },
}

/// `SUGGEST NEXT FOR view` / `SUGGEST COMPLETE 'prefix'`, optionally
/// wrapped in `EXPLAIN ANALYZE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuggestStmt {
    /// What to suggest.
    pub kind: SuggestKind,
    /// `EXPLAIN ANALYZE SUGGEST ...`: append ranking timings and
    /// stats-cache traffic to the output instead of the bare ranking.
    pub analyze: bool,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// Plain SELECT query.
    Select(SelectStmt),
    /// CAD View creation.
    CreateCadView(CadViewStmt),
    /// `EXPLAIN` of a CAD View statement: reports the chosen Compare
    /// Attributes with their chi-square scores and the per-stage timings
    /// instead of storing the view.
    ExplainCadView(CadViewStmt),
    /// `EXPLAIN ANALYZE` of a CAD View statement: everything `EXPLAIN`
    /// reports, plus the traced span tree of the build — per-phase wall
    /// time, rows scanned, cache hits/misses, and degradation level.
    ExplainAnalyzeCadView(CadViewStmt),
    /// Similar-IUnit highlighting.
    Highlight(HighlightStmt),
    /// Row reordering by pivot-value similarity.
    Reorder(ReorderStmt),
    /// `DESCRIBE table`: schema listing.
    Describe(String),
    /// `SHOW CADVIEWS`: list the session's stored CAD Views.
    ShowCadViews,
    /// `DROP CADVIEW name`: remove a stored CAD View.
    DropCadView(String),
    /// `SUGGEST NEXT FOR view` / `SUGGEST COMPLETE 'prefix'`.
    Suggest(SuggestStmt),
}
