//! Deterministic fault injection for the statistics layer.
//!
//! Tests arm a named site with [`arm`]; the next time the corresponding
//! code path runs (on the same thread) it returns
//! [`StatsError::FaultInjected`] instead of its normal result. Hooks are
//! thread-local so parallel test threads cannot interfere, and
//! [`ScopedFault`] disarms on drop so a panicking test cannot poison later
//! tests on the same thread.
//!
//! Production code never arms a fault; the per-call check is a
//! thread-local read, negligible next to the statistics it guards.
//!
//! # Interaction with parallel CAD builds
//!
//! Hooks fire **only on the arming thread** — this is a deliberate design
//! decision, not an accident. With `CadConfig::threads == 1` (the default)
//! the whole pipeline runs on the caller's thread and every armed site is
//! honored, which is what the robustness suite exercises. With
//! `threads > 1`, per-partition and per-attribute work runs on short-lived
//! pool workers (`dbex_par::par_map`) whose fresh thread-locals are never
//! armed, so those stages proceed at full fidelity; stages that stay on the
//! caller's thread (e.g. the pivot codec build) still see the fault.
//! `tests/parallel_determinism.rs` pins down both behaviors.

use crate::error::StatsError;
use std::cell::Cell;

thread_local! {
    static ARMED: Cell<Option<&'static str>> = const { Cell::new(None) };
}

/// Arms `site` on this thread: the next [`check`] for it fails.
pub fn arm(site: &'static str) {
    ARMED.with(|a| a.set(Some(site)));
}

/// Disarms any armed fault on this thread.
pub fn disarm() {
    ARMED.with(|a| a.set(None));
}

/// Arms `site` for the lifetime of the returned guard.
pub fn scoped(site: &'static str) -> ScopedFault {
    arm(site);
    ScopedFault { _private: () }
}

/// Guard that disarms the thread's fault on drop.
#[must_use = "the fault is disarmed when this guard drops"]
pub struct ScopedFault {
    _private: (),
}

impl Drop for ScopedFault {
    fn drop(&mut self) {
        disarm();
    }
}

/// Returns the injected error if `site` is armed on this thread.
/// The fault stays armed until [`disarm`] (or the scope guard drops), so a
/// degradation ladder that retries the same site keeps failing.
pub fn check(site: &'static str) -> Result<(), StatsError> {
    let armed = ARMED.with(|a| a.get());
    if armed == Some(site) {
        return Err(StatsError::FaultInjected { site });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_only_when_armed_and_matching() {
        assert!(check("histogram::build").is_ok());
        let guard = scoped("histogram::build");
        assert!(check("codec::build").is_ok());
        assert_eq!(
            check("histogram::build"),
            Err(StatsError::FaultInjected {
                site: "histogram::build"
            })
        );
        // Stays armed until the guard drops.
        assert!(check("histogram::build").is_err());
        drop(guard);
        assert!(check("histogram::build").is_ok());
    }
}
