//! Runtime-dispatched SIMD kernels shared by the stats and clustering hot
//! paths.
//!
//! Every kernel here operates on **integers** (u32/u64 counts), so
//! accumulation is associative and the vector lane order is free: each
//! SIMD variant computes bit-for-bit the same result as the scalar
//! fallback, which stays always-compiled as both the reference oracle and
//! the path taken on hardware without the wider instruction sets.
//!
//! # Dispatch
//!
//! [`dispatch`] picks the widest path the CPU supports, once per process:
//!
//! * x86_64 — AVX2 when the CPU reports it (`is_x86_feature_detected!`),
//!   otherwise SSE2 (the x86_64 baseline, always present).
//! * aarch64 — NEON (baseline, always present).
//! * everything else — scalar.
//!
//! The `DBEX_SIMD` environment variable (`scalar` / `sse2` / `avx2` /
//! `neon` / `auto`) overrides the choice for A/B digest gates, clamped to
//! what the hardware actually supports — requesting `avx2` on an
//! SSE2-only machine silently gets SSE2, never an illegal instruction.
//! The variable is read once; tests that need both paths in one process
//! use the explicit `*_with` kernel variants instead.

use std::sync::OnceLock;

/// The SIMD instruction family a kernel call runs with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdDispatch {
    /// Plain scalar loops — always available, the reference oracle.
    Scalar,
    /// x86_64 SSE2 (128-bit lanes, baseline on every x86_64 CPU).
    Sse2,
    /// x86_64 AVX2 (256-bit lanes, runtime-detected).
    Avx2,
    /// aarch64 NEON (128-bit lanes, baseline on every aarch64 CPU).
    Neon,
}

impl SimdDispatch {
    /// Stable lowercase name, used in metrics, EXPLAIN output, and bench
    /// provenance.
    pub fn name(self) -> &'static str {
        match self {
            SimdDispatch::Scalar => "scalar",
            SimdDispatch::Sse2 => "sse2",
            SimdDispatch::Avx2 => "avx2",
            SimdDispatch::Neon => "neon",
        }
    }

    /// Stable numeric id for the `cluster.kernel_dispatch` gauge
    /// (gauges are integers): scalar 0, sse2 1, avx2 2, neon 3.
    pub fn code(self) -> i64 {
        match self {
            SimdDispatch::Scalar => 0,
            SimdDispatch::Sse2 => 1,
            SimdDispatch::Avx2 => 2,
            SimdDispatch::Neon => 3,
        }
    }

    fn parse(name: &str) -> Option<SimdDispatch> {
        match name.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(SimdDispatch::Scalar),
            "sse2" => Some(SimdDispatch::Sse2),
            "avx2" => Some(SimdDispatch::Avx2),
            "neon" => Some(SimdDispatch::Neon),
            _ => None,
        }
    }
}

/// The widest dispatch this hardware supports (ignoring `DBEX_SIMD`).
pub fn detected() -> SimdDispatch {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdDispatch::Avx2;
        }
        SimdDispatch::Sse2
    }
    #[cfg(target_arch = "aarch64")]
    {
        SimdDispatch::Neon
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        SimdDispatch::Scalar
    }
}

/// The process-wide kernel dispatch: [`detected`], optionally lowered by
/// the `DBEX_SIMD` environment variable (read once, cached).
pub fn dispatch() -> SimdDispatch {
    static DISPATCH: OnceLock<SimdDispatch> = OnceLock::new();
    *DISPATCH.get_or_init(|| {
        let hw = detected();
        match std::env::var("DBEX_SIMD").ok().and_then(|v| SimdDispatch::parse(&v)) {
            // A request for an unavailable family clamps to the hardware:
            // `neon` on x86_64 (or `avx2`/`sse2` on aarch64) falls back to
            // the detected path rather than faulting.
            Some(want) => match (want, hw) {
                (SimdDispatch::Scalar, _) => SimdDispatch::Scalar,
                (SimdDispatch::Neon, SimdDispatch::Neon) => SimdDispatch::Neon,
                (SimdDispatch::Sse2 | SimdDispatch::Avx2, SimdDispatch::Neon) => hw,
                (SimdDispatch::Neon, _) => hw,
                (want, hw) => want.min(hw),
            },
            None => hw,
        }
    })
}

/// Comma-separated CPU feature list for bench provenance, e.g.
/// `"x86_64:sse2,ssse3,sse4.2,avx,avx2"`.
pub fn cpu_features() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        let mut feats = vec!["sse2"];
        for (name, present) in [
            ("ssse3", std::arch::is_x86_feature_detected!("ssse3")),
            ("sse4.2", std::arch::is_x86_feature_detected!("sse4.2")),
            ("avx", std::arch::is_x86_feature_detected!("avx")),
            ("avx2", std::arch::is_x86_feature_detected!("avx2")),
            ("avx512f", std::arch::is_x86_feature_detected!("avx512f")),
        ] {
            if present {
                feats.push(name);
            }
        }
        format!("x86_64:{}", feats.join(","))
    }
    #[cfg(target_arch = "aarch64")]
    {
        "aarch64:neon".to_string()
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        format!("{}:scalar", std::env::consts::ARCH)
    }
}

// --- u64 reductions (contingency-table marginals) -----------------------

/// Sum of a u64 slice under the process dispatch. Exact (wrapping adds in
/// any order are associative; callers' counts never approach overflow).
pub fn sum_u64(xs: &[u64]) -> u64 {
    sum_u64_with(dispatch(), xs)
}

/// [`sum_u64`] with an explicit dispatch, for in-process A/B tests.
pub fn sum_u64_with(d: SimdDispatch, xs: &[u64]) -> u64 {
    match d {
        #[cfg(target_arch = "x86_64")]
        SimdDispatch::Avx2 => {
            // SAFETY: dispatch()/the caller only selects Avx2 when the CPU
            // reports the avx2 feature (detected() clamps DBEX_SIMD).
            unsafe { sum_u64_avx2(xs) }
        }
        #[cfg(target_arch = "x86_64")]
        SimdDispatch::Sse2 => {
            // SAFETY: SSE2 is the x86_64 baseline — always available.
            unsafe { sum_u64_sse2(xs) }
        }
        #[cfg(target_arch = "aarch64")]
        SimdDispatch::Neon => sum_u64_neon(xs),
        _ => sum_u64_scalar(xs),
    }
}

fn sum_u64_scalar(xs: &[u64]) -> u64 {
    let mut total = 0u64;
    for &x in xs {
        total = total.wrapping_add(x);
    }
    total
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sum_u64_avx2(xs: &[u64]) -> u64 {
    use std::arch::x86_64::*;
    let mut acc = _mm256_setzero_si256();
    let mut chunks = xs.chunks_exact(4);
    for chunk in &mut chunks {
        // SAFETY: `chunk` is exactly 4 u64 (32 bytes); loadu has no
        // alignment requirement.
        acc = unsafe { _mm256_add_epi64(acc, _mm256_loadu_si256(chunk.as_ptr() as *const __m256i)) };
    }
    let mut lanes = [0u64; 4];
    // SAFETY: `lanes` is exactly 32 bytes; storeu has no alignment requirement.
    unsafe { _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc) };
    let mut total = lanes
        .iter()
        .fold(0u64, |t, &l| t.wrapping_add(l));
    for &x in chunks.remainder() {
        total = total.wrapping_add(x);
    }
    total
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn sum_u64_sse2(xs: &[u64]) -> u64 {
    use std::arch::x86_64::*;
    let mut acc = _mm_setzero_si128();
    let mut chunks = xs.chunks_exact(2);
    for chunk in &mut chunks {
        // SAFETY: `chunk` is exactly 2 u64 (16 bytes); loadu is unaligned-safe.
        acc = unsafe { _mm_add_epi64(acc, _mm_loadu_si128(chunk.as_ptr() as *const __m128i)) };
    }
    let mut lanes = [0u64; 2];
    // SAFETY: `lanes` is exactly 16 bytes.
    unsafe { _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, acc) };
    let mut total = lanes[0].wrapping_add(lanes[1]);
    for &x in chunks.remainder() {
        total = total.wrapping_add(x);
    }
    total
}

#[cfg(target_arch = "aarch64")]
fn sum_u64_neon(xs: &[u64]) -> u64 {
    use std::arch::aarch64::*;
    // SAFETY: NEON is baseline on aarch64; vld1q_u64 reads exactly the two
    // u64 of each chunks_exact(2) window.
    unsafe {
        let mut acc = vdupq_n_u64(0);
        let mut chunks = xs.chunks_exact(2);
        for chunk in &mut chunks {
            acc = vaddq_u64(acc, vld1q_u64(chunk.as_ptr()));
        }
        let mut total = vgetq_lane_u64(acc, 0).wrapping_add(vgetq_lane_u64(acc, 1));
        for &x in chunks.remainder() {
            total = total.wrapping_add(x);
        }
        total
    }
}

/// `acc[i] += xs[i]` element-wise under the process dispatch (slices must
/// be the same length). Used for column-marginal accumulation.
pub fn add_assign_u64(acc: &mut [u64], xs: &[u64]) {
    add_assign_u64_with(dispatch(), acc, xs)
}

/// [`add_assign_u64`] with an explicit dispatch.
pub fn add_assign_u64_with(d: SimdDispatch, acc: &mut [u64], xs: &[u64]) {
    assert_eq!(acc.len(), xs.len(), "add_assign_u64: length mismatch");
    match d {
        #[cfg(target_arch = "x86_64")]
        SimdDispatch::Avx2 => {
            // SAFETY: Avx2 only selected when the CPU supports it.
            unsafe { add_assign_u64_avx2(acc, xs) }
        }
        _ => add_assign_u64_scalar(acc, xs),
    }
}

fn add_assign_u64_scalar(acc: &mut [u64], xs: &[u64]) {
    for (a, &x) in acc.iter_mut().zip(xs) {
        *a = a.wrapping_add(x);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn add_assign_u64_avx2(acc: &mut [u64], xs: &[u64]) {
    use std::arch::x86_64::*;
    let mut a_chunks = acc.chunks_exact_mut(4);
    let mut x_chunks = xs.chunks_exact(4);
    for (a, x) in (&mut a_chunks).zip(&mut x_chunks) {
        // SAFETY: both chunks are exactly 4 u64; unaligned load/store.
        unsafe {
            let va = _mm256_loadu_si256(a.as_ptr() as *const __m256i);
            let vx = _mm256_loadu_si256(x.as_ptr() as *const __m256i);
            _mm256_storeu_si256(a.as_mut_ptr() as *mut __m256i, _mm256_add_epi64(va, vx));
        }
    }
    for (a, &x) in a_chunks.into_remainder().iter_mut().zip(x_chunks.remainder()) {
        *a = a.wrapping_add(x);
    }
}

/// `acc[i] += xs[i]` element-wise over u32 (same length required). Used to
/// merge per-chunk centroid histograms in the parallel k-means path.
pub fn add_assign_u32(acc: &mut [u32], xs: &[u32]) {
    add_assign_u32_with(dispatch(), acc, xs)
}

/// [`add_assign_u32`] with an explicit dispatch.
pub fn add_assign_u32_with(d: SimdDispatch, acc: &mut [u32], xs: &[u32]) {
    assert_eq!(acc.len(), xs.len(), "add_assign_u32: length mismatch");
    match d {
        #[cfg(target_arch = "x86_64")]
        SimdDispatch::Avx2 => {
            // SAFETY: Avx2 only selected when the CPU supports it.
            unsafe { add_assign_u32_avx2(acc, xs) }
        }
        _ => add_assign_u32_scalar(acc, xs),
    }
}

fn add_assign_u32_scalar(acc: &mut [u32], xs: &[u32]) {
    for (a, &x) in acc.iter_mut().zip(xs) {
        *a = a.wrapping_add(x);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn add_assign_u32_avx2(acc: &mut [u32], xs: &[u32]) {
    use std::arch::x86_64::*;
    let mut a_chunks = acc.chunks_exact_mut(8);
    let mut x_chunks = xs.chunks_exact(8);
    for (a, x) in (&mut a_chunks).zip(&mut x_chunks) {
        // SAFETY: both chunks are exactly 8 u32 (32 bytes); unaligned ops.
        unsafe {
            let va = _mm256_loadu_si256(a.as_ptr() as *const __m256i);
            let vx = _mm256_loadu_si256(x.as_ptr() as *const __m256i);
            _mm256_storeu_si256(a.as_mut_ptr() as *mut __m256i, _mm256_add_epi32(va, vx));
        }
    }
    for (a, &x) in a_chunks.into_remainder().iter_mut().zip(x_chunks.remainder()) {
        *a = a.wrapping_add(x);
    }
}

// --- Contingency-table pair fill ----------------------------------------

/// Increments `counts[row·width + col]` for every pair drawn from
/// `zip(rows, cols)` where neither side equals `sentinel` — the inner
/// loop of contingency-table construction.
///
/// Exactly equivalent to the scalar zip-and-add loop: out-of-range codes
/// panic on the same slice index, counts are exact. The AVX2 path
/// vectorizes the sentinel screen and the `row·width + col` address
/// arithmetic eight pairs at a time (the increments themselves are
/// scatter stores, which stay scalar below AVX-512).
pub fn fill_pair_counts(counts: &mut [u64], width: usize, rows: &[u32], cols: &[u32], sentinel: u32) {
    fill_pair_counts_with(dispatch(), counts, width, rows, cols, sentinel)
}

/// [`fill_pair_counts`] with an explicit dispatch.
pub fn fill_pair_counts_with(
    d: SimdDispatch,
    counts: &mut [u64],
    width: usize,
    rows: &[u32],
    cols: &[u32],
    sentinel: u32,
) {
    match d {
        #[cfg(target_arch = "x86_64")]
        SimdDispatch::Avx2 if width <= i32::MAX as usize => {
            // SAFETY: Avx2 only selected when the CPU supports it.
            unsafe { fill_pair_counts_avx2(counts, width, rows, cols, sentinel) }
        }
        _ => fill_pair_counts_scalar(counts, width, rows, cols, sentinel),
    }
}

fn fill_pair_counts_scalar(
    counts: &mut [u64],
    width: usize,
    rows: &[u32],
    cols: &[u32],
    sentinel: u32,
) {
    for (&r, &c) in rows.iter().zip(cols) {
        if r != sentinel && c != sentinel {
            counts[r as usize * width + c as usize] += 1;
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fill_pair_counts_avx2(
    counts: &mut [u64],
    width: usize,
    rows: &[u32],
    cols: &[u32],
    sentinel: u32,
) {
    use std::arch::x86_64::*;
    let n = rows.len().min(cols.len());
    // SAFETY for the whole block: all loads read exactly 8 u32 from within
    // `rows`/`cols` (i + 8 <= n bounds every lane), and the only writes go
    // through the bounds-checked `counts[idx]` slice index.
    unsafe {
        let vsent = _mm256_set1_epi32(sentinel as i32);
        let vwidth = _mm256_set1_epi32(width as i32);
        let mut idx = [0u32; 8];
        let mut i = 0usize;
        while i + 8 <= n {
            let vr = _mm256_loadu_si256(rows.as_ptr().add(i) as *const __m256i);
            let vc = _mm256_loadu_si256(cols.as_ptr().add(i) as *const __m256i);
            let null_mask = _mm256_or_si256(
                _mm256_cmpeq_epi32(vr, vsent),
                _mm256_cmpeq_epi32(vc, vsent),
            );
            if _mm256_movemask_epi8(null_mask) == 0 {
                // Common case: no NULLs in the block. `row·width + col`
                // fits u32 because the scalar path's `counts` index does.
                let vidx = _mm256_add_epi32(_mm256_mullo_epi32(vr, vwidth), vc);
                _mm256_storeu_si256(idx.as_mut_ptr() as *mut __m256i, vidx);
                for &j in &idx {
                    counts[j as usize] += 1;
                }
            } else {
                for j in i..i + 8 {
                    let (r, c) = (rows[j], cols[j]);
                    if r != sentinel && c != sentinel {
                        counts[r as usize * width + c as usize] += 1;
                    }
                }
            }
            i += 8;
        }
        for j in i..n {
            let (r, c) = (rows[j], cols[j]);
            if r != sentinel && c != sentinel {
                counts[r as usize * width + c as usize] += 1;
            }
        }
    }
}

// --- Batch histogram binning --------------------------------------------

/// Writes the bin index of every value into `out` (same length), using
/// the branchless formulation
/// `bin(v) = min(count(e ≤ v) − 1 clamped at 0, last)` — exactly
/// equivalent to the sequential `partition_point` search for every input,
/// including NaN (count 0 → bin 0) and ±∞ (clamped to the first/last
/// bin).
///
/// `edges` must be strictly increasing with at least two entries (the
/// `Histogram` invariant).
pub fn bin_of_batch(edges: &[f64], values: &[f64], out: &mut [u32]) {
    bin_of_batch_with(dispatch(), edges, values, out)
}

/// [`bin_of_batch`] with an explicit dispatch.
pub fn bin_of_batch_with(d: SimdDispatch, edges: &[f64], values: &[f64], out: &mut [u32]) {
    assert_eq!(values.len(), out.len(), "bin_of_batch: length mismatch");
    assert!(edges.len() >= 2, "bin_of_batch: degenerate histogram");
    match d {
        #[cfg(target_arch = "x86_64")]
        SimdDispatch::Avx2 => {
            // SAFETY: Avx2 only selected when the CPU supports it.
            unsafe { bin_of_batch_avx2(edges, values, out) }
        }
        _ => bin_of_batch_scalar(edges, values, out),
    }
}

fn bin_of_batch_scalar(edges: &[f64], values: &[f64], out: &mut [u32]) {
    let last = (edges.len() - 2) as u32;
    for (&v, slot) in values.iter().zip(out.iter_mut()) {
        // NaN compares false to every edge, so `le` stays 0 and NaN lands
        // in bin 0 — same as Histogram::bin_of.
        let mut le = 0u32;
        for &e in edges {
            le += u32::from(e <= v);
        }
        *slot = le.saturating_sub(1).min(last);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn bin_of_batch_avx2(edges: &[f64], values: &[f64], out: &mut [u32]) {
    use std::arch::x86_64::*;
    let last = (edges.len() - 2) as i64;
    // SAFETY for the whole block: loads read exactly 4 f64 from within
    // `values` (i + 4 <= n), stores write the 4-entry stack buffer `lanes`.
    unsafe {
        let vlast = _mm256_set1_epi64x(last);
        let vone = _mm256_set1_epi64x(1);
        let mut lanes = [0i64; 4];
        let n = values.len();
        let mut i = 0usize;
        while i + 4 <= n {
            let vv = _mm256_loadu_pd(values.as_ptr().add(i));
            // Count edges ≤ v per lane: a GE compare yields all-ones
            // (-1 as i64) per satisfied lane, so subtracting the mask
            // increments the count. NaN compares false (ordered,
            // non-signaling), matching the scalar path.
            let mut le = _mm256_setzero_si256();
            for &e in edges {
                let ve = _mm256_set1_pd(e);
                let ge = _mm256_cmp_pd::<_CMP_GE_OQ>(vv, ve);
                le = _mm256_sub_epi64(le, _mm256_castpd_si256(ge));
            }
            // saturating_sub(1).min(last) in 64-bit lanes. The counts are
            // tiny non-negative integers, so signed max/min are exact:
            // max(le − 1, 0) then min(·, last). AVX2 lacks 64-bit min/max,
            // so do it with a compare+blend.
            let dec = _mm256_sub_epi64(le, vone);
            let neg = _mm256_cmpgt_epi64(_mm256_setzero_si256(), dec);
            let clamped0 = _mm256_andnot_si256(neg, dec);
            let over = _mm256_cmpgt_epi64(clamped0, vlast);
            let binv = _mm256_blendv_epi8(clamped0, vlast, over);
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, binv);
            for (j, &lane) in lanes.iter().enumerate() {
                out[i + j] = lane as u32;
            }
            i += 4;
        }
        if i < n {
            bin_of_batch_scalar(edges, &values[i..], &mut out[i..]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: &[SimdDispatch] = &[
        SimdDispatch::Scalar,
        SimdDispatch::Sse2,
        SimdDispatch::Avx2,
        SimdDispatch::Neon,
    ];

    #[test]
    fn dispatch_is_supported_and_stable() {
        let d = dispatch();
        assert_eq!(d, dispatch());
        assert!(d <= detected() || d == SimdDispatch::Neon);
        assert!(!d.name().is_empty());
    }

    #[test]
    fn names_and_codes_are_stable() {
        let names: Vec<&str> = ALL.iter().map(|d| d.name()).collect();
        assert_eq!(names, vec!["scalar", "sse2", "avx2", "neon"]);
        let codes: Vec<i64> = ALL.iter().map(|d| d.code()).collect();
        assert_eq!(codes, vec![0, 1, 2, 3]);
        for d in ALL {
            assert_eq!(SimdDispatch::parse(d.name()), Some(*d));
        }
        assert_eq!(SimdDispatch::parse("AVX2 "), Some(SimdDispatch::Avx2));
        assert_eq!(SimdDispatch::parse("bogus"), None);
    }

    #[test]
    fn cpu_features_names_the_arch() {
        let f = cpu_features();
        assert!(f.contains(':'), "{f}");
    }

    /// Every dispatch value routes to a kernel that reproduces the scalar
    /// result exactly (unsupported families fall through to scalar via
    /// the match arms' cfg gates).
    #[test]
    fn sums_match_scalar_for_every_dispatch() {
        let xs: Vec<u64> = (0..103).map(|i| i * i * 31 + 7).collect();
        let want = sum_u64_with(SimdDispatch::Scalar, &xs);
        for &d in ALL {
            assert_eq!(sum_u64_with(d, &xs), want, "{d:?}");
        }
        assert_eq!(sum_u64_with(dispatch(), &[]), 0);
    }

    #[test]
    fn add_assign_matches_scalar_for_every_dispatch() {
        let xs: Vec<u64> = (0..37).map(|i| i * 1013 + 5).collect();
        let mut want: Vec<u64> = (0..37).map(|i| i + 1).collect();
        add_assign_u64_with(SimdDispatch::Scalar, &mut want, &xs);
        for &d in ALL {
            let mut acc: Vec<u64> = (0..37).map(|i| i + 1).collect();
            add_assign_u64_with(d, &mut acc, &xs);
            assert_eq!(acc, want, "{d:?}");
        }
        let xs32: Vec<u32> = (0..29).map(|i| i * 7 + 3).collect();
        let mut want32: Vec<u32> = (0..29).collect();
        add_assign_u32_with(SimdDispatch::Scalar, &mut want32, &xs32);
        for &d in ALL {
            let mut acc: Vec<u32> = (0..29).collect();
            add_assign_u32_with(d, &mut acc, &xs32);
            assert_eq!(acc, want32, "{d:?}");
        }
    }

    #[test]
    fn pair_fill_matches_scalar_for_every_dispatch() {
        let sentinel = u32::MAX;
        let rows: Vec<u32> = (0..100)
            .map(|i| if i % 11 == 0 { sentinel } else { i % 4 })
            .collect();
        let cols: Vec<u32> = (0..100)
            .map(|i| if i % 13 == 0 { sentinel } else { (i * 7) % 6 })
            .collect();
        let mut want = vec![0u64; 4 * 6];
        fill_pair_counts_with(SimdDispatch::Scalar, &mut want, 6, &rows, &cols, sentinel);
        assert_eq!(sum_u64(&want) as usize, (0..100).filter(|i| i % 11 != 0 && i % 13 != 0).count());
        for &d in ALL {
            let mut counts = vec![0u64; 4 * 6];
            fill_pair_counts_with(d, &mut counts, 6, &rows, &cols, sentinel);
            assert_eq!(counts, want, "{d:?}");
        }
    }

    #[test]
    fn batch_binning_matches_scalar_for_every_dispatch() {
        let edges = [0.0, 1.5, 3.0, 10.0];
        let values: Vec<f64> = vec![
            -5.0,
            0.0,
            0.1,
            1.5,
            2.9,
            3.0,
            9.99,
            10.0,
            11.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1.49,
        ];
        let mut want = vec![0u32; values.len()];
        bin_of_batch_with(SimdDispatch::Scalar, &edges, &values, &mut want);
        assert_eq!(want, vec![0, 0, 0, 1, 1, 2, 2, 2, 2, 0, 2, 0, 0]);
        for &d in ALL {
            let mut out = vec![0u32; values.len()];
            bin_of_batch_with(d, &edges, &values, &mut out);
            assert_eq!(out, want, "{d:?}");
        }
    }
}
