//! Memoized per-view statistics.
//!
//! CAD View construction and faceted refinement recompute the same
//! statistics over and over: a TPFacet toggle rebuilds histograms for every
//! attribute of an unchanged result set, and repeated `CREATE CADVIEW` /
//! `EXPLAIN CADVIEW` calls on the same result set redo every contingency
//! table. [`StatsCache`] memoizes the two expensive artifacts — attribute
//! codecs (which embed the histogram for numeric attributes) and chi-square
//! contingency tables — keyed on the *view fingerprint* plus the statistic's
//! parameters.
//!
//! # Keying and invalidation
//!
//! [`dbex_table::View::fingerprint`] hashes the table's process-unique id
//! together with the exact row selection, so there is no explicit
//! invalidation protocol: any change to the selection (or a reloaded table)
//! produces a different key and simply misses. Entries for dead views are
//! bounded by [`MAX_ENTRIES`] per map — when a map fills up the
//! least-recently-used entry is evicted, which only costs recomputation,
//! never correctness: a fingerprint either finds the value built for
//! exactly that key or misses and rebuilds.
//!
//! # Concurrency
//!
//! The cache is `Sync` and shared process-wide by `dbex-serve`: every
//! connection's session points at the same instance, so one client's CAD
//! build warms every other client's refinements. Each map is sharded
//! ([`SHARD_COUNT`] ways, keyed on the entry hash) so concurrent sessions
//! touching different keys rarely contend on the same `Mutex`, and builds
//! run *outside* the lock, so parallel workers scoring different
//! attributes never serialize on each other's computation. Two threads
//! racing on the same key may both build; the results are deterministic
//! and identical, so either insert is fine.

use crate::chi2::ContingencyTable;
use crate::discretize::AttributeCodec;
use crate::error::StatsError;
use crate::histogram::BinningStrategy;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Per-map entry cap; reaching it evicts the least-recently-used entry
/// (see the module docs).
pub const MAX_ENTRIES: usize = 1024;

/// Lock shards per map. Sized for "a few dozen concurrent sessions": the
/// probability of two random keys colliding on a shard is 1/8, and the
/// critical sections are a `HashMap` probe, so contention is negligible.
pub const SHARD_COUNT: usize = 8;

/// Key for a memoized [`AttributeCodec`] (histogram + labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CodecKey {
    /// [`dbex_table::View::fingerprint`] of the view the codec was built on.
    pub view_fp: u64,
    /// Schema index of the discretized attribute.
    pub attr: usize,
    /// Bin count for numeric attributes.
    pub bins: usize,
    /// Binning strategy for numeric attributes.
    pub strategy: BinningStrategy,
}

/// Key for a memoized chi-square [`ContingencyTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContingencyKey {
    /// [`dbex_table::View::fingerprint`] of the scoring view.
    pub view_fp: u64,
    /// Hash of the class-label assignment (pivot column + selected pivot
    /// codes): the same view crossed with a different pivot must not share
    /// contingency tables.
    pub class_ctx: u64,
    /// Schema index of the scored attribute.
    pub attr: usize,
    /// Bin count used to discretize the attribute.
    pub bins: usize,
    /// Binning strategy used to discretize the attribute.
    pub strategy: BinningStrategy,
}

/// Key for a memoized per-pivot-partition cluster solution.
///
/// The fingerprint half identifies the *data*: the CAD builder hashes the
/// partition's member row ids together with every compare attribute's
/// dictionary codes and cardinality at those rows, so any change to the
/// partition's membership, the attribute set, or a numeric attribute's
/// re-binned codes misses automatically. The remaining fields pin the
/// clustering parameters that shape the solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterKey {
    /// Hash of (table id, member row ids, per-attribute codes + cardinality).
    pub partition_fp: u64,
    /// Candidate cluster count `l` after any adaptive clamping.
    pub l: usize,
    /// k-means iteration cap after any budget clamping.
    pub iters: usize,
    /// Clustering PRNG seed.
    pub seed: u64,
    /// Whether k-means++ seeding was used.
    pub plus_plus: bool,
    /// Effective training-sample cap (`usize::MAX` = cluster every member).
    pub sample: usize,
}

/// A memoized cluster solution: the partition's members bucketed into
/// non-empty clusters, in cluster-index order.
///
/// Members are stored as **indices into the partition's member list**, not
/// as view positions — a facet refinement renumbers positions, but as long
/// as the partition holds the same rows in the same order (which the
/// [`ClusterKey`] fingerprint guarantees) the indices remap exactly. The
/// consumer rebuilds IUnits from the remapped members, so labels and
/// scores are recomputed identically rather than trusted stale.
#[derive(Debug, Clone)]
pub struct ClusterSolution {
    /// Non-empty clusters of member-list indices, in discovery order.
    pub clusters: Vec<Vec<u32>>,
}

/// A Lloyd centroid in integer-histogram form: per-one-hot-dimension
/// member counts plus the cluster size (the conceptual centroid is
/// `counts / size`). Stored for warm-starting k-means on a changed
/// partition; mini-batch centroids have no such form and are never
/// stored.
pub type CentroidHistogram = (Vec<u32>, u32);

/// Counters and sizes reported by [`StatsCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries dropped by LRU eviction (capacity pressure, not staleness).
    pub evictions: u64,
    /// Live codec entries.
    pub codec_entries: usize,
    /// Live contingency-table entries.
    pub contingency_entries: usize,
    /// Live cluster-reuse entries (exact solutions + warm centroid sets).
    pub cluster_entries: usize,
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits, {} misses, {} entries",
            self.hits,
            self.misses,
            self.codec_entries + self.contingency_entries + self.cluster_entries
        )
    }
}

/// Locks a shard, recovering the data from a poisoned mutex: every value
/// in the maps is immutable once inserted (entries are `Arc`ed and only
/// added or removed whole), so a panic mid-operation cannot leave a
/// half-written value behind.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One shard's storage: value plus its last-touched stamp.
type Shard<K, V> = HashMap<K, (Arc<V>, u64)>;

/// A sharded, LRU-evicting map from `K` to `Arc<V>`.
///
/// Each shard is an independent `Mutex<HashMap>` holding entries tagged
/// with a last-touched stamp drawn from one shared atomic tick. Lookups
/// refresh the stamp; inserts into a full shard evict that shard's
/// least-recently-touched entry first. Eviction scans the shard (O(shard
/// size)), which at ≤ [`MAX_ENTRIES`]`/`[`SHARD_COUNT`] entries is cheaper
/// than maintaining linked LRU order on every hit.
#[derive(Debug)]
struct ShardedLru<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    cap_per_shard: usize,
    tick: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Eq + Hash + Clone, V> ShardedLru<K, V> {
    fn new(total_cap: usize) -> Self {
        ShardedLru {
            shards: (0..SHARD_COUNT).map(|_| Mutex::new(HashMap::new())).collect(),
            cap_per_shard: total_cap.div_ceil(SHARD_COUNT).max(1),
            tick: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, (Arc<V>, u64)>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARD_COUNT]
    }

    /// Looks `key` up, refreshing its recency stamp on a hit.
    fn get(&self, key: &K) -> Option<Arc<V>> {
        let mut map = lock(self.shard(key));
        map.get_mut(key).map(|entry| {
            entry.1 = self.tick.fetch_add(1, Ordering::Relaxed);
            Arc::clone(&entry.0)
        })
    }

    /// Inserts `key`, evicting the shard's least-recently-used entry when
    /// the shard is full and `key` is new.
    fn insert(&self, key: K, value: Arc<V>) {
        let stamp = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut map = lock(self.shard(&key));
        if map.len() >= self.cap_per_shard && !map.contains_key(&key) {
            let victim = map
                .iter()
                .min_by_key(|(_, (_, touched))| *touched)
                .map(|(k, _)| k.clone());
            if let Some(victim) = victim {
                map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                dbex_obs::counter!("stats.cache.evictions").incr(1);
            }
        }
        map.insert(key, (value, stamp));
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).len()).sum()
    }

    /// Snapshot of every live entry, shard by shard (order unspecified).
    fn entries(&self) -> Vec<(K, Arc<V>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let map = lock(shard);
            out.extend(map.iter().map(|(k, (v, _))| (k.clone(), Arc::clone(v))));
        }
        out
    }

    fn clear(&self) {
        for shard in &self.shards {
            lock(shard).clear();
        }
    }

    fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

/// Memoization cache for per-view statistics. See the module docs.
#[derive(Debug)]
pub struct StatsCache {
    codecs: ShardedLru<CodecKey, AttributeCodec>,
    tables: ShardedLru<ContingencyKey, ContingencyTable>,
    clusters: ShardedLru<ClusterKey, ClusterSolution>,
    /// Latest centroid histograms per warm-start identity (pivot value +
    /// attribute set + params), for seeding k-means after the partition
    /// *changed*.
    warm: ShardedLru<u64, Vec<CentroidHistogram>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for StatsCache {
    fn default() -> Self {
        Self::with_capacity(MAX_ENTRIES)
    }
}

impl StatsCache {
    /// Creates an empty cache holding up to [`MAX_ENTRIES`] entries per
    /// map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache holding up to `entries` entries in **each**
    /// of its four maps (codecs, contingency tables, cluster solutions,
    /// warm-start centroids); zero is clamped to one.
    ///
    /// The default suits a single session's working set. A server shared
    /// by hundreds of concurrent sessions needs proportionally more: at
    /// 1024 sessions over the default capacity the exploration benchmark
    /// measured evictions ≈ misses (the cache thrashing instead of
    /// retaining), which `dbex-serve`'s `--cache-entries` knob exists to
    /// fix.
    pub fn with_capacity(entries: usize) -> Self {
        let entries = entries.max(1);
        StatsCache {
            codecs: ShardedLru::new(entries),
            tables: ShardedLru::new(entries),
            clusters: ShardedLru::new(entries),
            warm: ShardedLru::new(entries),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Records a hit on this cache and in the process-wide registry.
    fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        dbex_obs::counter!("stats.cache.hits").incr(1);
    }

    /// Records a miss on this cache and in the process-wide registry.
    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        dbex_obs::counter!("stats.cache.misses").incr(1);
    }

    /// Returns the codec for `key`, building it with `build` on a miss.
    ///
    /// Build errors are returned and not cached, so a transient failure
    /// (e.g. injected fault) does not poison the key.
    pub fn codec_with(
        &self,
        key: CodecKey,
        build: impl FnOnce() -> Result<AttributeCodec, StatsError>,
    ) -> Result<Arc<AttributeCodec>, StatsError> {
        if let Some(hit) = self.codecs.get(&key) {
            self.hit();
            return Ok(hit);
        }
        self.miss();
        let built = Arc::new(build()?);
        self.codecs.insert(key, Arc::clone(&built));
        Ok(built)
    }

    /// Returns the contingency table for `key`, building on a miss.
    ///
    /// `build` returning `None` (attribute cannot be discretized) is passed
    /// through and not cached.
    pub fn contingency_with(
        &self,
        key: ContingencyKey,
        build: impl FnOnce() -> Option<ContingencyTable>,
    ) -> Option<Arc<ContingencyTable>> {
        if let Some(hit) = self.tables.get(&key) {
            self.hit();
            return Some(hit);
        }
        self.miss();
        let built = Arc::new(build()?);
        self.tables.insert(key, Arc::clone(&built));
        Some(built)
    }

    /// Returns the memoized cluster solution for `key`, if any.
    ///
    /// Unlike [`Self::codec_with`] this is a pure lookup: the build runs in
    /// the caller (the CAD degradation ladder), which then publishes a
    /// success via [`Self::cluster_insert`]. Hits and misses count toward
    /// [`Self::stats`].
    pub fn cluster_lookup(&self, key: &ClusterKey) -> Option<Arc<ClusterSolution>> {
        if let Some(hit) = self.clusters.get(key) {
            self.hit();
            return Some(hit);
        }
        self.miss();
        None
    }

    /// Memoizes a cluster solution under `key` (see [`Self::cluster_lookup`]).
    pub fn cluster_insert(&self, key: ClusterKey, solution: ClusterSolution) {
        self.clusters.insert(key, Arc::new(solution));
    }

    /// The most recent centroid histograms stored under a warm-start
    /// identity.
    ///
    /// Warm lookups do **not** count toward hit/miss statistics: they are
    /// seeding hints for a clustering that runs regardless, not avoided
    /// recomputation.
    pub fn warm_centroids(&self, key: u64) -> Option<Arc<Vec<CentroidHistogram>>> {
        self.warm.get(&key)
    }

    /// Stores (replacing) the centroid histograms for a warm-start
    /// identity.
    pub fn set_warm_centroids(&self, key: u64, centroids: Vec<CentroidHistogram>) {
        self.warm.insert(key, Arc::new(centroids));
    }

    /// Snapshot of every memoized exact cluster solution, for persistence:
    /// `dbex-store` saves these alongside the catalog so a warm-restarted
    /// server's first CAD build reuses partitions instead of re-clustering.
    /// Order is unspecified; callers needing deterministic output sort by
    /// key. Warm-start centroids are deliberately excluded — they are
    /// seeding hints, not reusable answers.
    pub fn export_clusters(&self) -> Vec<(ClusterKey, ClusterSolution)> {
        self.clusters
            .entries()
            .into_iter()
            .map(|(k, v)| (k, (*v).clone()))
            .collect()
    }

    /// Number of exact cluster solutions currently memoized (excludes
    /// warm-start centroid sets, unlike [`CacheStats::cluster_entries`]).
    pub fn exact_cluster_entries(&self) -> usize {
        self.clusters.len()
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        self.codecs.clear();
        self.tables.clear();
        self.clusters.clear();
        self.warm.clear();
    }

    /// Snapshot of hit/miss/eviction counters and live entry counts.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.codecs.evictions()
                + self.tables.evictions()
                + self.clusters.evictions()
                + self.warm.evictions(),
            codec_entries: self.codecs.len(),
            contingency_entries: self.tables.len(),
            cluster_entries: self.clusters.len() + self.warm.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec_key(fp: u64, attr: usize) -> CodecKey {
        CodecKey {
            view_fp: fp,
            attr,
            bins: 4,
            strategy: BinningStrategy::EquiDepth,
        }
    }

    fn some_codec() -> Result<AttributeCodec, StatsError> {
        Ok(AttributeCodec::Categorical {
            labels: vec!["a".into(), "b".into()],
        })
    }

    /// A codec whose labels encode the key that built it, so a lookup can
    /// verify it got the value for *its* fingerprint and nobody else's.
    fn codec_for(fp: u64) -> Result<AttributeCodec, StatsError> {
        Ok(AttributeCodec::Categorical {
            labels: vec![format!("fp{fp}")],
        })
    }

    fn codec_label(codec: &AttributeCodec) -> String {
        match codec {
            AttributeCodec::Categorical { labels } => labels.join(","),
            other => format!("{other:?}"),
        }
    }

    #[test]
    fn codec_hits_after_miss() {
        let cache = StatsCache::new();
        let a = cache.codec_with(codec_key(1, 0), some_codec).unwrap();
        let b = cache.codec_with(codec_key(1, 0), || panic!("must hit")).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.codec_entries), (1, 1, 1));
    }

    #[test]
    fn different_keys_do_not_collide() {
        let cache = StatsCache::new();
        cache.codec_with(codec_key(1, 0), some_codec).unwrap();
        cache.codec_with(codec_key(2, 0), some_codec).unwrap();
        cache.codec_with(codec_key(1, 1), some_codec).unwrap();
        assert_eq!(cache.stats().codec_entries, 3);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = StatsCache::new();
        let err = cache.codec_with(codec_key(1, 0), || {
            Err(StatsError::NoUsableValues { attr: 0 })
        });
        assert!(err.is_err());
        // The next call builds again and can succeed.
        assert!(cache.codec_with(codec_key(1, 0), some_codec).is_ok());
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn contingency_round_trip() {
        let cache = StatsCache::new();
        let key = ContingencyKey {
            view_fp: 7,
            class_ctx: 3,
            attr: 2,
            bins: 4,
            strategy: BinningStrategy::EquiWidth,
        };
        let built = cache
            .contingency_with(key, || {
                let mut t = ContingencyTable::new(2, 2);
                t.add(0, 1);
                Some(t)
            })
            .unwrap();
        let hit = cache.contingency_with(key, || panic!("must hit")).unwrap();
        assert!(Arc::ptr_eq(&built, &hit));
        assert!(cache
            .contingency_with(
                ContingencyKey { class_ctx: 4, ..key },
                || Some(ContingencyTable::new(2, 2))
            )
            .is_some());
        assert_eq!(cache.stats().contingency_entries, 2);
    }

    #[test]
    fn cluster_solution_round_trip() {
        let cache = StatsCache::new();
        let key = ClusterKey {
            partition_fp: 42,
            l: 5,
            iters: 20,
            seed: 7,
            plus_plus: true,
            sample: usize::MAX,
        };
        assert!(cache.cluster_lookup(&key).is_none());
        cache.cluster_insert(
            key,
            ClusterSolution {
                clusters: vec![vec![0, 2], vec![1]],
            },
        );
        let hit = cache.cluster_lookup(&key).expect("must hit");
        assert_eq!(hit.clusters, vec![vec![0, 2], vec![1]]);
        // A different fingerprint or parameter misses.
        assert!(cache
            .cluster_lookup(&ClusterKey { partition_fp: 43, ..key })
            .is_none());
        assert!(cache.cluster_lookup(&ClusterKey { l: 6, ..key }).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.cluster_entries), (1, 3, 1));
    }

    #[test]
    fn export_clusters_round_trips_through_a_fresh_cache() {
        let cache = StatsCache::new();
        let key = |fp: u64| ClusterKey {
            partition_fp: fp,
            l: 4,
            iters: 20,
            seed: 7,
            plus_plus: true,
            sample: usize::MAX,
        };
        cache.cluster_insert(key(1), ClusterSolution { clusters: vec![vec![0, 1], vec![2]] });
        cache.cluster_insert(key(2), ClusterSolution { clusters: vec![vec![3]] });
        cache.set_warm_centroids(9, vec![(vec![1, 0], 1)]); // must NOT be exported
        assert_eq!(cache.exact_cluster_entries(), 2);

        let mut exported = cache.export_clusters();
        exported.sort_by_key(|(k, _)| k.partition_fp);
        assert_eq!(exported.len(), 2);
        assert_eq!(exported[0].1.clusters, vec![vec![0, 1], vec![2]]);

        let rehydrated = StatsCache::new();
        for (k, v) in exported {
            rehydrated.cluster_insert(k, v);
        }
        let hit = rehydrated.cluster_lookup(&key(1)).expect("rehydrated entry hits");
        assert_eq!(hit.clusters, vec![vec![0, 1], vec![2]]);
        assert!(rehydrated.warm_centroids(9).is_none());
    }

    #[test]
    fn warm_centroids_replace_and_skip_counters() {
        let cache = StatsCache::new();
        assert!(cache.warm_centroids(9).is_none());
        cache.set_warm_centroids(9, vec![(vec![1, 0], 1)]);
        cache.set_warm_centroids(9, vec![(vec![0, 2], 2)]);
        assert_eq!(*cache.warm_centroids(9).expect("stored"), vec![(vec![0, 2], 2)]);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 0), "warm lookups are not hits/misses");
        assert_eq!(s.cluster_entries, 1);
        cache.clear();
        assert!(cache.warm_centroids(9).is_none());
        assert_eq!(cache.stats().cluster_entries, 0);
    }

    #[test]
    fn capacity_is_bounded_by_lru_eviction() {
        let cache = StatsCache::new();
        // Twice the cap: the map must stay bounded and evict, not grow.
        for i in 0..2 * MAX_ENTRIES {
            cache.codec_with(codec_key(i as u64, 0), some_codec).unwrap();
        }
        let s = cache.stats();
        assert!(
            s.codec_entries <= MAX_ENTRIES,
            "codec map exceeded its cap: {} entries",
            s.codec_entries
        );
        assert!(s.codec_entries > 0);
        assert!(s.evictions > 0, "over-cap inserts must evict");
        cache.clear();
        assert_eq!(cache.stats().codec_entries, 0);
        assert!(cache.stats().misses > 0, "counters survive clear");
    }

    #[test]
    fn eviction_prefers_the_least_recently_used_entry() {
        let lru: ShardedLru<u64, u64> = ShardedLru::new(SHARD_COUNT); // 1 entry per shard
        // Find two keys landing on the same shard.
        let hasher = |k: &u64| {
            let mut h = DefaultHasher::new();
            k.hash(&mut h);
            (h.finish() as usize) % SHARD_COUNT
        };
        let a = 0u64;
        let b = (1..).find(|k| hasher(k) == hasher(&a)).unwrap();
        let c = (b + 1..).find(|k| hasher(k) == hasher(&a)).unwrap();
        lru.insert(a, Arc::new(100));
        lru.insert(b, Arc::new(200)); // shard full: evicts a (LRU)
        assert!(lru.get(&a).is_none());
        assert_eq!(*lru.get(&b).unwrap(), 200);
        lru.insert(c, Arc::new(300)); // b was just touched, still evict-safe? no: shard cap 1
        assert!(lru.get(&b).is_none(), "cap-1 shard keeps only the newest");
        assert_eq!(*lru.get(&c).unwrap(), 300);
        assert_eq!(lru.evictions(), 2);
    }

    #[test]
    fn eviction_never_serves_a_stale_fingerprint() {
        let cache = StatsCache::new();
        // Fill far past capacity with self-describing values.
        for i in 0..3 * MAX_ENTRIES as u64 {
            cache.codec_with(codec_key(i, 0), || codec_for(i)).unwrap();
        }
        assert!(cache.stats().evictions > 0);
        // Every fingerprint — evicted or live — must come back with *its*
        // value: a hit returns the codec built for that exact key, and an
        // evicted key rebuilds rather than aliasing another entry.
        for i in (0..3 * MAX_ENTRIES as u64).step_by(17) {
            let got = cache.codec_with(codec_key(i, 0), || codec_for(i)).unwrap();
            assert_eq!(
                codec_label(&got),
                format!("fp{i}"),
                "fingerprint {i} served a stale or aliased entry"
            );
        }
        // Same check after re-inserting over an evicted key: the rebuilt
        // value replaces, never resurrects, the old entry.
        let fresh = cache
            .codec_with(
                CodecKey { bins: 9, ..codec_key(0, 0) },
                || codec_for(999),
            )
            .unwrap();
        assert_eq!(codec_label(&fresh), "fp999");
    }

    #[test]
    fn hot_entries_survive_cold_scans() {
        let cache = StatsCache::new();
        let hot = codec_key(u64::MAX, 7);
        cache.codec_with(hot, || codec_for(7)).unwrap();
        // A cold scan twice the cache size, touching the hot key between
        // batches the way a session's pinned view does.
        for i in 0..2 * MAX_ENTRIES as u64 {
            cache.codec_with(codec_key(i, 0), some_codec).unwrap();
            if i % 64 == 0 {
                cache.codec_with(hot, || panic!("hot entry evicted")).unwrap();
            }
        }
        let got = cache.codec_with(hot, || panic!("hot entry evicted")).unwrap();
        assert_eq!(codec_label(&got), "fp7");
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let cache = Arc::new(StatsCache::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for i in 0..50 {
                        cache
                            .codec_with(codec_key(i as u64 % 8, t), some_codec)
                            .unwrap();
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 200);
        assert!(s.codec_entries >= 8);
    }

    #[test]
    fn concurrent_insert_scan_keeps_every_lookup_consistent() {
        // Hammer one cache from writers that overflow capacity and readers
        // that verify value identity: no lookup may ever observe a value
        // that belongs to a different key.
        let cache = Arc::new(StatsCache::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for round in 0..3u64 {
                        for i in 0..MAX_ENTRIES as u64 {
                            let fp = (t * 31 + round * 7 + i) % (MAX_ENTRIES as u64 * 2);
                            let got = cache
                                .codec_with(codec_key(fp, 0), || codec_for(fp))
                                .unwrap();
                            assert_eq!(codec_label(&got), format!("fp{fp}"));
                        }
                    }
                });
            }
        });
    }
}
