//! Memoized per-view statistics.
//!
//! CAD View construction and faceted refinement recompute the same
//! statistics over and over: a TPFacet toggle rebuilds histograms for every
//! attribute of an unchanged result set, and repeated `CREATE CADVIEW` /
//! `EXPLAIN CADVIEW` calls on the same result set redo every contingency
//! table. [`StatsCache`] memoizes the two expensive artifacts — attribute
//! codecs (which embed the histogram for numeric attributes) and chi-square
//! contingency tables — keyed on the *view fingerprint* plus the statistic's
//! parameters.
//!
//! # Keying and invalidation
//!
//! [`dbex_table::View::fingerprint`] hashes the table's process-unique id
//! together with the exact row selection, so there is no explicit
//! invalidation protocol: any change to the selection (or a reloaded table)
//! produces a different key and simply misses. Stale entries for dead views
//! are bounded by [`MAX_ENTRIES`] per map — when a map fills up it is
//! cleared wholesale, which only costs recomputation, never correctness.
//!
//! # Concurrency
//!
//! The cache is `Sync` and lock-based; builds run *outside* the lock, so
//! parallel workers scoring different attributes never serialize on each
//! other's computation. Two threads racing on the same key may both build;
//! the results are deterministic and identical, so either insert is fine.

use crate::chi2::ContingencyTable;
use crate::discretize::AttributeCodec;
use crate::error::StatsError;
use crate::histogram::BinningStrategy;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Per-map entry cap; reaching it clears the map (see module docs).
pub const MAX_ENTRIES: usize = 1024;

/// Key for a memoized [`AttributeCodec`] (histogram + labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CodecKey {
    /// [`dbex_table::View::fingerprint`] of the view the codec was built on.
    pub view_fp: u64,
    /// Schema index of the discretized attribute.
    pub attr: usize,
    /// Bin count for numeric attributes.
    pub bins: usize,
    /// Binning strategy for numeric attributes.
    pub strategy: BinningStrategy,
}

/// Key for a memoized chi-square [`ContingencyTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContingencyKey {
    /// [`dbex_table::View::fingerprint`] of the scoring view.
    pub view_fp: u64,
    /// Hash of the class-label assignment (pivot column + selected pivot
    /// codes): the same view crossed with a different pivot must not share
    /// contingency tables.
    pub class_ctx: u64,
    /// Schema index of the scored attribute.
    pub attr: usize,
    /// Bin count used to discretize the attribute.
    pub bins: usize,
    /// Binning strategy used to discretize the attribute.
    pub strategy: BinningStrategy,
}

/// Key for a memoized per-pivot-partition cluster solution.
///
/// The fingerprint half identifies the *data*: the CAD builder hashes the
/// partition's member row ids together with every compare attribute's
/// dictionary codes and cardinality at those rows, so any change to the
/// partition's membership, the attribute set, or a numeric attribute's
/// re-binned codes misses automatically. The remaining fields pin the
/// clustering parameters that shape the solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterKey {
    /// Hash of (table id, member row ids, per-attribute codes + cardinality).
    pub partition_fp: u64,
    /// Candidate cluster count `l` after any adaptive clamping.
    pub l: usize,
    /// k-means iteration cap after any budget clamping.
    pub iters: usize,
    /// Clustering PRNG seed.
    pub seed: u64,
    /// Whether k-means++ seeding was used.
    pub plus_plus: bool,
    /// Effective training-sample cap (`usize::MAX` = cluster every member).
    pub sample: usize,
}

/// A memoized cluster solution: the partition's members bucketed into
/// non-empty clusters, in cluster-index order.
///
/// Members are stored as **indices into the partition's member list**, not
/// as view positions — a facet refinement renumbers positions, but as long
/// as the partition holds the same rows in the same order (which the
/// [`ClusterKey`] fingerprint guarantees) the indices remap exactly. The
/// consumer rebuilds IUnits from the remapped members, so labels and
/// scores are recomputed identically rather than trusted stale.
#[derive(Debug, Clone)]
pub struct ClusterSolution {
    /// Non-empty clusters of member-list indices, in discovery order.
    pub clusters: Vec<Vec<u32>>,
}

/// A Lloyd centroid in integer-histogram form: per-one-hot-dimension
/// member counts plus the cluster size (the conceptual centroid is
/// `counts / size`). Stored for warm-starting k-means on a changed
/// partition; mini-batch centroids have no such form and are never
/// stored.
pub type CentroidHistogram = (Vec<u32>, u32);

/// Counters and sizes reported by [`StatsCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Live codec entries.
    pub codec_entries: usize,
    /// Live contingency-table entries.
    pub contingency_entries: usize,
    /// Live cluster-reuse entries (exact solutions + warm centroid sets).
    pub cluster_entries: usize,
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits, {} misses, {} entries",
            self.hits,
            self.misses,
            self.codec_entries + self.contingency_entries + self.cluster_entries
        )
    }
}

/// Memoization cache for per-view statistics. See the module docs.
#[derive(Debug, Default)]
pub struct StatsCache {
    codecs: Mutex<HashMap<CodecKey, Arc<AttributeCodec>>>,
    tables: Mutex<HashMap<ContingencyKey, Arc<ContingencyTable>>>,
    clusters: Mutex<HashMap<ClusterKey, Arc<ClusterSolution>>>,
    /// Latest centroid histograms per warm-start identity (pivot value +
    /// attribute set + params), for seeding k-means after the partition
    /// *changed*.
    warm: Mutex<HashMap<u64, Arc<Vec<CentroidHistogram>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl StatsCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a hit on this cache and in the process-wide registry.
    fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        dbex_obs::counter!("stats.cache.hits").incr(1);
    }

    /// Records a miss on this cache and in the process-wide registry.
    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        dbex_obs::counter!("stats.cache.misses").incr(1);
    }

    /// Returns the codec for `key`, building it with `build` on a miss.
    ///
    /// Build errors are returned and not cached, so a transient failure
    /// (e.g. injected fault) does not poison the key.
    pub fn codec_with(
        &self,
        key: CodecKey,
        build: impl FnOnce() -> Result<AttributeCodec, StatsError>,
    ) -> Result<Arc<AttributeCodec>, StatsError> {
        if let Ok(map) = self.codecs.lock() {
            if let Some(hit) = map.get(&key) {
                self.hit();
                return Ok(Arc::clone(hit));
            }
        }
        self.miss();
        let built = Arc::new(build()?);
        if let Ok(mut map) = self.codecs.lock() {
            if map.len() >= MAX_ENTRIES {
                map.clear();
            }
            map.insert(key, Arc::clone(&built));
        }
        Ok(built)
    }

    /// Returns the contingency table for `key`, building on a miss.
    ///
    /// `build` returning `None` (attribute cannot be discretized) is passed
    /// through and not cached.
    pub fn contingency_with(
        &self,
        key: ContingencyKey,
        build: impl FnOnce() -> Option<ContingencyTable>,
    ) -> Option<Arc<ContingencyTable>> {
        if let Ok(map) = self.tables.lock() {
            if let Some(hit) = map.get(&key) {
                self.hit();
                return Some(Arc::clone(hit));
            }
        }
        self.miss();
        let built = Arc::new(build()?);
        if let Ok(mut map) = self.tables.lock() {
            if map.len() >= MAX_ENTRIES {
                map.clear();
            }
            map.insert(key, Arc::clone(&built));
        }
        Some(built)
    }

    /// Returns the memoized cluster solution for `key`, if any.
    ///
    /// Unlike [`Self::codec_with`] this is a pure lookup: the build runs in
    /// the caller (the CAD degradation ladder), which then publishes a
    /// success via [`Self::cluster_insert`]. Hits and misses count toward
    /// [`Self::stats`].
    pub fn cluster_lookup(&self, key: &ClusterKey) -> Option<Arc<ClusterSolution>> {
        if let Ok(map) = self.clusters.lock() {
            if let Some(hit) = map.get(key) {
                self.hit();
                return Some(Arc::clone(hit));
            }
        }
        self.miss();
        None
    }

    /// Memoizes a cluster solution under `key` (see [`Self::cluster_lookup`]).
    pub fn cluster_insert(&self, key: ClusterKey, solution: ClusterSolution) {
        if let Ok(mut map) = self.clusters.lock() {
            if map.len() >= MAX_ENTRIES {
                map.clear();
            }
            map.insert(key, Arc::new(solution));
        }
    }

    /// The most recent centroid histograms stored under a warm-start
    /// identity.
    ///
    /// Warm lookups do **not** count toward hit/miss statistics: they are
    /// seeding hints for a clustering that runs regardless, not avoided
    /// recomputation.
    pub fn warm_centroids(&self, key: u64) -> Option<Arc<Vec<CentroidHistogram>>> {
        self.warm
            .lock()
            .ok()
            .and_then(|map| map.get(&key).map(Arc::clone))
    }

    /// Stores (replacing) the centroid histograms for a warm-start
    /// identity.
    pub fn set_warm_centroids(&self, key: u64, centroids: Vec<CentroidHistogram>) {
        if let Ok(mut map) = self.warm.lock() {
            if map.len() >= MAX_ENTRIES {
                map.clear();
            }
            map.insert(key, Arc::new(centroids));
        }
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        if let Ok(mut map) = self.codecs.lock() {
            map.clear();
        }
        if let Ok(mut map) = self.tables.lock() {
            map.clear();
        }
        if let Ok(mut map) = self.clusters.lock() {
            map.clear();
        }
        if let Ok(mut map) = self.warm.lock() {
            map.clear();
        }
    }

    /// Snapshot of hit/miss counters and live entry counts.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            codec_entries: self.codecs.lock().map(|m| m.len()).unwrap_or(0),
            contingency_entries: self.tables.lock().map(|m| m.len()).unwrap_or(0),
            cluster_entries: self.clusters.lock().map(|m| m.len()).unwrap_or(0)
                + self.warm.lock().map(|m| m.len()).unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec_key(fp: u64, attr: usize) -> CodecKey {
        CodecKey {
            view_fp: fp,
            attr,
            bins: 4,
            strategy: BinningStrategy::EquiDepth,
        }
    }

    fn some_codec() -> Result<AttributeCodec, StatsError> {
        Ok(AttributeCodec::Categorical {
            labels: vec!["a".into(), "b".into()],
        })
    }

    #[test]
    fn codec_hits_after_miss() {
        let cache = StatsCache::new();
        let a = cache.codec_with(codec_key(1, 0), some_codec).unwrap();
        let b = cache.codec_with(codec_key(1, 0), || panic!("must hit")).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.codec_entries), (1, 1, 1));
    }

    #[test]
    fn different_keys_do_not_collide() {
        let cache = StatsCache::new();
        cache.codec_with(codec_key(1, 0), some_codec).unwrap();
        cache.codec_with(codec_key(2, 0), some_codec).unwrap();
        cache.codec_with(codec_key(1, 1), some_codec).unwrap();
        assert_eq!(cache.stats().codec_entries, 3);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = StatsCache::new();
        let err = cache.codec_with(codec_key(1, 0), || {
            Err(StatsError::NoUsableValues { attr: 0 })
        });
        assert!(err.is_err());
        // The next call builds again and can succeed.
        assert!(cache.codec_with(codec_key(1, 0), some_codec).is_ok());
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn contingency_round_trip() {
        let cache = StatsCache::new();
        let key = ContingencyKey {
            view_fp: 7,
            class_ctx: 3,
            attr: 2,
            bins: 4,
            strategy: BinningStrategy::EquiWidth,
        };
        let built = cache
            .contingency_with(key, || {
                let mut t = ContingencyTable::new(2, 2);
                t.add(0, 1);
                Some(t)
            })
            .unwrap();
        let hit = cache.contingency_with(key, || panic!("must hit")).unwrap();
        assert!(Arc::ptr_eq(&built, &hit));
        assert!(cache
            .contingency_with(
                ContingencyKey { class_ctx: 4, ..key },
                || Some(ContingencyTable::new(2, 2))
            )
            .is_some());
        assert_eq!(cache.stats().contingency_entries, 2);
    }

    #[test]
    fn cluster_solution_round_trip() {
        let cache = StatsCache::new();
        let key = ClusterKey {
            partition_fp: 42,
            l: 5,
            iters: 20,
            seed: 7,
            plus_plus: true,
            sample: usize::MAX,
        };
        assert!(cache.cluster_lookup(&key).is_none());
        cache.cluster_insert(
            key,
            ClusterSolution {
                clusters: vec![vec![0, 2], vec![1]],
            },
        );
        let hit = cache.cluster_lookup(&key).expect("must hit");
        assert_eq!(hit.clusters, vec![vec![0, 2], vec![1]]);
        // A different fingerprint or parameter misses.
        assert!(cache
            .cluster_lookup(&ClusterKey { partition_fp: 43, ..key })
            .is_none());
        assert!(cache.cluster_lookup(&ClusterKey { l: 6, ..key }).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.cluster_entries), (1, 3, 1));
    }

    #[test]
    fn warm_centroids_replace_and_skip_counters() {
        let cache = StatsCache::new();
        assert!(cache.warm_centroids(9).is_none());
        cache.set_warm_centroids(9, vec![(vec![1, 0], 1)]);
        cache.set_warm_centroids(9, vec![(vec![0, 2], 2)]);
        assert_eq!(*cache.warm_centroids(9).expect("stored"), vec![(vec![0, 2], 2)]);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 0), "warm lookups are not hits/misses");
        assert_eq!(s.cluster_entries, 1);
        cache.clear();
        assert!(cache.warm_centroids(9).is_none());
        assert_eq!(cache.stats().cluster_entries, 0);
    }

    #[test]
    fn clear_and_capacity() {
        let cache = StatsCache::new();
        for i in 0..MAX_ENTRIES {
            cache.codec_with(codec_key(i as u64, 0), some_codec).unwrap();
        }
        assert_eq!(cache.stats().codec_entries, MAX_ENTRIES);
        // At capacity the map is cleared before the next insert.
        cache
            .codec_with(codec_key(u64::MAX, 0), some_codec)
            .unwrap();
        assert_eq!(cache.stats().codec_entries, 1);
        cache.clear();
        assert_eq!(cache.stats().codec_entries, 0);
        assert!(cache.stats().misses > 0, "counters survive clear");
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let cache = Arc::new(StatsCache::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let cache = Arc::clone(&cache);
                s.spawn(move || {
                    for i in 0..50 {
                        cache
                            .codec_with(codec_key(i as u64 % 8, t), some_codec)
                            .unwrap();
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 200);
        assert!(s.codec_entries >= 8);
    }
}
