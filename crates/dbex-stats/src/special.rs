//! Special functions: log-gamma, regularized incomplete gamma, and the
//! chi-square distribution built on them.
//!
//! Implementations follow the classical series / continued-fraction
//! formulations (Lanczos approximation for `ln Γ`; power series and
//! Lentz-method continued fraction for the incomplete gamma), which are
//! accurate to ~1e-12 over the parameter ranges this project uses (degrees
//! of freedom up to a few hundred).

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Lanczos approximation with g = 7, n = 9 coefficients.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients (g=7, n=9).
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// `P(a, x) = γ(a, x) / Γ(a)`, with `P(a, 0) = 0` and `P(a, ∞) = 1`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain error: a={a}, x={x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q domain error: a={a}, x={x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Power-series evaluation of `P(a, x)`; converges fast for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction evaluation of `Q(a, x)` (modified Lentz method);
/// converges fast for `x ≥ a + 1`.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Survival function of the chi-square distribution:
/// `Pr[X > x]` for `X ~ χ²(dof)`.
///
/// This is the p-value of a chi-square test with statistic `x`.
pub fn chi2_sf(x: f64, dof: f64) -> f64 {
    assert!(dof > 0.0, "chi2_sf requires dof > 0");
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(dof / 2.0, x / 2.0)
}

/// CDF of the chi-square distribution: `Pr[X ≤ x]`.
pub fn chi2_cdf(x: f64, dof: f64) -> f64 {
    1.0 - chi2_sf(x, dof)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1; Γ(5) = 24; Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!(close(ln_gamma(5.0), 24f64.ln(), 1e-12));
        assert!(close(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-12
        ));
    }

    #[test]
    fn gamma_p_q_complementary() {
        for &(a, x) in &[(0.5, 0.3), (1.0, 1.0), (2.5, 4.0), (10.0, 3.0), (10.0, 20.0)] {
            let p = gamma_p(a, x);
            let q = gamma_q(a, x);
            assert!(close(p + q, 1.0, 1e-12), "a={a} x={x}: p+q={}", p + q);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 − e^{-x}.
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0] {
            assert!(close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12));
        }
    }

    #[test]
    fn chi2_sf_reference_values() {
        // Reference values from standard chi-square tables.
        // χ²(1): x = 3.841 → p ≈ 0.05
        assert!((chi2_sf(3.841, 1.0) - 0.05).abs() < 1e-3);
        // χ²(1): x = 6.635 → p ≈ 0.01
        assert!((chi2_sf(6.635, 1.0) - 0.01).abs() < 1e-3);
        // χ²(4): x = 9.488 → p ≈ 0.05
        assert!((chi2_sf(9.488, 4.0) - 0.05).abs() < 1e-3);
        // χ²(10): x = 18.307 → p ≈ 0.05
        assert!((chi2_sf(18.307, 10.0) - 0.05).abs() < 1e-3);
    }

    #[test]
    fn chi2_sf_edges() {
        assert_eq!(chi2_sf(0.0, 3.0), 1.0);
        assert_eq!(chi2_sf(-1.0, 3.0), 1.0);
        assert!(chi2_sf(1e6, 3.0) < 1e-10);
        assert!(close(chi2_cdf(3.841, 1.0), 0.95, 1e-3));
    }

    #[test]
    fn chi2_sf_median_of_dof2_is_ln4() {
        // For dof=2 the chi-square is Exp(1/2); median = 2 ln 2.
        let median = 2.0 * 2f64.ln();
        assert!(close(chi2_sf(median, 2.0), 0.5, 1e-12));
    }
}
