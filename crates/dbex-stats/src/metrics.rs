//! Classification metrics used by the user-study tasks.
//!
//! Task 1 ("Simple Classifier", Section 6.2.1) scores user-built selections
//! with "standard F1 accuracy score"; these helpers compute it from a
//! predicted-vs-actual partition of a result set.

/// Confusion-matrix counts for a binary classification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionCounts {
    /// Predicted positive, actually positive.
    pub tp: usize,
    /// Predicted positive, actually negative.
    pub fp: usize,
    /// Predicted negative, actually positive.
    pub fn_: usize,
    /// Predicted negative, actually negative.
    pub tn: usize,
}

impl ConfusionCounts {
    /// Builds counts from parallel prediction/truth slices.
    pub fn from_labels(predicted: &[bool], actual: &[bool]) -> ConfusionCounts {
        assert_eq!(predicted.len(), actual.len(), "label length mismatch");
        let mut c = ConfusionCounts::default();
        for (&p, &a) in predicted.iter().zip(actual) {
            match (p, a) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, true) => c.fn_ += 1,
                (false, false) => c.tn += 1,
            }
        }
        c
    }

    /// Precision: `tp / (tp + fp)`; 0 when undefined.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall: `tp / (tp + fn)`; 0 when undefined.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1: harmonic mean of precision and recall; 0 when undefined.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// F1 score from prediction/truth slices. See [`ConfusionCounts::f1`].
pub fn f1_score(predicted: &[bool], actual: &[bool]) -> f64 {
    ConfusionCounts::from_labels(predicted, actual).f1()
}

/// Precision and recall from prediction/truth slices.
pub fn precision_recall(predicted: &[bool], actual: &[bool]) -> (f64, f64) {
    let c = ConfusionCounts::from_labels(predicted, actual);
    (c.precision(), c.recall())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let labels = [true, false, true, false];
        assert_eq!(f1_score(&labels, &labels), 1.0);
    }

    #[test]
    fn all_wrong_classifier() {
        let predicted = [true, false];
        let actual = [false, true];
        assert_eq!(f1_score(&predicted, &actual), 0.0);
    }

    #[test]
    fn known_confusion_counts() {
        let c = ConfusionCounts {
            tp: 6,
            fp: 2,
            fn_: 3,
            tn: 9,
        };
        assert!((c.precision() - 0.75).abs() < 1e-12);
        assert!((c.recall() - 6.0 / 9.0).abs() < 1e-12);
        let f1 = 2.0 * 0.75 * (6.0 / 9.0) / (0.75 + 6.0 / 9.0);
        assert!((c.f1() - f1).abs() < 1e-12);
    }

    #[test]
    fn degenerate_empty_prediction() {
        // Predicts nothing positive: precision undefined → 0, F1 = 0.
        let predicted = [false, false];
        let actual = [true, false];
        let (p, r) = precision_recall(&predicted, &actual);
        assert_eq!(p, 0.0);
        assert_eq!(r, 0.0);
        assert_eq!(f1_score(&predicted, &actual), 0.0);
    }

    #[test]
    #[should_panic(expected = "label length mismatch")]
    fn mismatched_lengths_panic() {
        f1_score(&[true], &[true, false]);
    }
}
