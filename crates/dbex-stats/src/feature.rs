//! Compare Attribute selection (paper Problem 1.1, Section 3.1.1).
//!
//! "Choosing Compare Attributes is a feature selection problem with a
//! specialized way of evaluating the quality of a feature: good features
//! yield sharply contrasting IUnits across the different Pivot Attribute
//! values." The paper uses Weka's ChiSquare evaluator with a p-value
//! threshold; we do the same: each candidate attribute is scored by the
//! chi-square statistic of its contingency table against the pivot classes,
//! attributes failing the significance threshold are dropped, and the
//! remainder are ranked by decreasing statistic.

use crate::cache::{ContingencyKey, StatsCache};
use crate::chi2::ContingencyTable;
use crate::discretize::AttributeCodec;
use crate::entropy::{information_gain, symmetrical_uncertainty};
use crate::histogram::BinningStrategy;
use dbex_table::dict::NULL_CODE;
use dbex_table::View;
use std::sync::Arc;

/// Relevance measure used to rank candidate Compare Attributes.
///
/// The paper ships chi-square (Weka's `ChiSquare`); the two
/// information-theoretic alternatives are standard in the feature-selection
/// literature the paper cites and are compared in the ablation benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FeatureScorer {
    /// Pearson chi-square statistic (paper default).
    #[default]
    ChiSquare,
    /// Mutual information between attribute and pivot classes.
    InfoGain,
    /// Symmetrical uncertainty (entropy-normalized mutual information,
    /// unbiased toward high-cardinality attributes).
    SymmetricalUncertainty,
}

/// Configuration for Compare Attribute selection.
#[derive(Debug, Clone)]
pub struct FeatureSelectionConfig {
    /// Maximum number of Compare Attributes to return (`c` in the paper,
    /// driven by available screen space).
    pub max_attrs: usize,
    /// Significance level: attributes with `p > alpha` are considered
    /// uninformative and excluded (paper suggests 0.01 / 0.05 / 0.10).
    pub alpha: f64,
    /// Bins used to discretize numeric candidates.
    pub bins: usize,
    /// Binning strategy for numeric candidates.
    pub strategy: BinningStrategy,
    /// Rows to subsample before scoring (paper Optimization 1). `None`
    /// scores on the full result set.
    pub sample: Option<usize>,
    /// Relevance measure used for ranking (the chi-square significance
    /// gate applies regardless).
    pub scorer: FeatureScorer,
}

impl Default for FeatureSelectionConfig {
    fn default() -> Self {
        FeatureSelectionConfig {
            max_attrs: 5,
            alpha: 0.05,
            bins: 6,
            strategy: BinningStrategy::EquiDepth,
            sample: None,
            scorer: FeatureScorer::ChiSquare,
        }
    }
}

/// Score of one candidate attribute against the pivot classes.
#[derive(Debug, Clone)]
pub struct FeatureScore {
    /// The attribute's position in the table schema.
    pub attr_index: usize,
    /// Chi-square statistic (larger = more contrast between pivot values).
    pub statistic: f64,
    /// Degrees of freedom of the test.
    pub dof: f64,
    /// Upper-tail p-value of the chi-square test.
    pub p_value: f64,
    /// The ranking score under the configured [`FeatureScorer`] (equals
    /// `statistic` for chi-square).
    pub score: f64,
}

/// Selects Compare Attributes for a CAD View.
///
/// * `view` — the result set `R`.
/// * `pivot_col` — schema index of the Pivot Attribute (categorical).
/// * `pivot_codes` — the selected pivot values `V` (dictionary codes).
/// * `forced` — attributes the user explicitly listed in the `SELECT`
///   clause; they are always included, first, in the given order, and do not
///   count against the significance filter.
/// * `candidates` — attributes eligible for automatic selection.
///
/// Returns the selected attribute indices (forced first, then auto-selected
/// by decreasing chi-square), plus the full scored list for diagnostics.
pub fn select_compare_attributes(
    view: &View<'_>,
    pivot_col: usize,
    pivot_codes: &[u32],
    forced: &[usize],
    candidates: &[usize],
    config: &FeatureSelectionConfig,
) -> (Vec<usize>, Vec<FeatureScore>) {
    // Class label per row: position of the row's pivot dictionary code
    // within V.
    let pivot_column = view.table().column(pivot_col);
    let class_of = move |row: usize| -> Option<usize> {
        let code = pivot_column.get_code(row)?;
        if code == NULL_CODE {
            return None;
        }
        pivot_codes.iter().position(|&c| c == code)
    };
    select_compare_attributes_by(
        view,
        pivot_codes.len(),
        &class_of,
        pivot_col,
        forced,
        candidates,
        config,
    )
}

/// Execution context for Compare Attribute selection: parallelism and
/// memoization. The default is sequential and uncached — exactly the
/// behavior of [`select_compare_attributes_by`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ScoringCtx<'a> {
    /// Worker threads for per-attribute scoring; `0`/`1` score on the
    /// caller's thread (see `dbex_par::par_map`).
    pub threads: usize,
    /// Memoization cache for contingency tables, if any.
    pub cache: Option<&'a StatsCache>,
    /// Hash identifying the class-label assignment (e.g. pivot column +
    /// selected pivot codes). Only used as part of the cache key; callers
    /// passing a cache must make this collision-free across different
    /// `class_of` functions used with the same view.
    pub class_ctx: u64,
}

/// Generalized Compare Attribute selection with caller-provided class
/// labels.
///
/// `class_of(row_id)` maps a base-table row to its pivot class in
/// `0..num_classes` (or `None` to skip the row) — this supports pivots
/// that are not plain dictionary codes, e.g. binned numeric pivots.
/// `pivot_col` is only used to exclude the pivot from the candidates.
pub fn select_compare_attributes_by(
    view: &View<'_>,
    num_classes: usize,
    class_of: &(dyn Fn(usize) -> Option<usize> + Sync),
    pivot_col: usize,
    forced: &[usize],
    candidates: &[usize],
    config: &FeatureSelectionConfig,
) -> (Vec<usize>, Vec<FeatureScore>) {
    select_compare_attributes_ctx(
        view,
        num_classes,
        class_of,
        pivot_col,
        forced,
        candidates,
        config,
        ScoringCtx::default(),
    )
}

/// [`select_compare_attributes_by`] with an explicit [`ScoringCtx`]:
/// candidate attributes are scored across `ctx.threads` workers, and
/// contingency tables are memoized in `ctx.cache` when present.
///
/// The scored list is identical to the sequential, uncached path for any
/// thread count: each attribute's score is computed independently and
/// results are collected in candidate order before the stable sort.
#[allow(clippy::too_many_arguments)]
pub fn select_compare_attributes_ctx(
    view: &View<'_>,
    num_classes: usize,
    class_of: &(dyn Fn(usize) -> Option<usize> + Sync),
    pivot_col: usize,
    forced: &[usize],
    candidates: &[usize],
    config: &FeatureSelectionConfig,
    ctx: ScoringCtx<'_>,
) -> (Vec<usize>, Vec<FeatureScore>) {
    let scoring_view = match config.sample {
        Some(n) => view.sample(n),
        None => view.clone(),
    };
    let view_fp = ctx.cache.map(|_| scoring_view.fingerprint());

    // Resolve the class label of every scoring row once, up front —
    // `class_of` used to be re-evaluated per row *per candidate*. The
    // labels feed the batch contingency fill as a code slice with
    // `NULL_CODE` marking skipped rows (a class index can never collide
    // with the sentinel: contingency rows are bounded far below u32::MAX).
    let classes: Vec<u32> = scoring_view
        .row_ids()
        .iter()
        .map(|&r| match class_of(r as usize) {
            Some(c) => c as u32,
            None => NULL_CODE,
        })
        .collect();

    let score_one = |attr: usize| -> Option<FeatureScore> {
        if attr == pivot_col || forced.contains(&attr) {
            return None;
        }
        let build = || {
            contingency_for(&scoring_view, attr, num_classes, &classes, config)
        };
        let table: Arc<ContingencyTable> = match (ctx.cache, view_fp) {
            (Some(cache), Some(fp)) => cache.contingency_with(
                ContingencyKey {
                    view_fp: fp,
                    class_ctx: ctx.class_ctx,
                    attr,
                    bins: config.bins,
                    strategy: config.strategy,
                },
                build,
            )?,
            _ => Arc::new(build()?),
        };
        let result = table.chi_square()?;
        let score = match config.scorer {
            FeatureScorer::ChiSquare => result.statistic,
            FeatureScorer::InfoGain => information_gain(&table),
            FeatureScorer::SymmetricalUncertainty => symmetrical_uncertainty(&table),
        };
        Some(FeatureScore {
            attr_index: attr,
            statistic: result.statistic,
            dof: result.dof,
            p_value: result.p_value,
            score,
        })
    };

    let mut scores: Vec<FeatureScore> =
        dbex_par::par_map(ctx.threads, candidates, |_, &attr| score_one(attr))
            .into_iter()
            .flatten()
            .collect();

    scores.sort_by(|a, b| b.score.total_cmp(&a.score));

    let mut selected: Vec<usize> = forced.to_vec();
    for s in &scores {
        if selected.len() >= config.max_attrs {
            break;
        }
        if s.p_value <= config.alpha && !selected.contains(&s.attr_index) {
            selected.push(s.attr_index);
        }
    }
    (selected, scores)
}

/// Builds the (class × code) contingency table for one candidate attribute,
/// or `None` when the attribute cannot be discretized over the view.
///
/// `classes` carries the precomputed per-row class labels (`NULL_CODE` =
/// skip), parallel to the scoring view's `row_ids()`. The attribute is
/// batch-encoded and the table filled through the vectorized pair kernel —
/// counts identical to the old per-row `add` loop.
fn contingency_for(
    scoring_view: &View<'_>,
    attr: usize,
    num_classes: usize,
    classes: &[u32],
    config: &FeatureSelectionConfig,
) -> Option<ContingencyTable> {
    let codec = AttributeCodec::build(scoring_view, attr, config.bins, config.strategy).ok()?;
    let column = scoring_view.table().column(attr);
    let codes = codec.encode_rows(column, scoring_view.row_ids());
    let mut table = ContingencyTable::new(num_classes, codec.cardinality());
    table.fill_pairs(classes, &codes, NULL_CODE);
    Some(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbex_table::{DataType, Field, TableBuilder};

    /// Builds a table where `Dependent` is perfectly determined by `Make`,
    /// `Noise` is independent of it, and `Price` is numerically correlated.
    fn table() -> dbex_table::Table {
        let mut b = TableBuilder::new(vec![
            Field::new("Make", DataType::Categorical),
            Field::new("Dependent", DataType::Categorical),
            Field::new("Noise", DataType::Categorical),
            Field::new("Price", DataType::Int),
        ])
        .unwrap();
        for i in 0..200 {
            let make = if i % 2 == 0 { "Ford" } else { "Jeep" };
            let dep = if i % 2 == 0 { "A" } else { "B" };
            let noise = ["x", "y", "z"][i % 3];
            let price = if i % 2 == 0 { 10_000 + (i as i64) } else { 40_000 + (i as i64) };
            b.push_row(vec![make.into(), dep.into(), noise.into(), price.into()])
                .unwrap();
        }
        b.finish()
    }

    fn pivot_codes(t: &dbex_table::Table) -> Vec<u32> {
        let dict = t.column(0).dictionary().unwrap();
        vec![dict.code("Ford").unwrap(), dict.code("Jeep").unwrap()]
    }

    #[test]
    fn dependent_attribute_ranked_above_noise() {
        let t = table();
        let v = t.full_view();
        let codes = pivot_codes(&t);
        let (selected, scores) = select_compare_attributes(
            &v,
            0,
            &codes,
            &[],
            &[1, 2, 3],
            &FeatureSelectionConfig::default(),
        );
        // Dependent (attr 1) and Price (attr 3) are informative; Noise is not.
        assert!(selected.contains(&1));
        assert!(selected.contains(&3));
        assert!(!selected.contains(&2));
        let dep = scores.iter().find(|s| s.attr_index == 1).unwrap();
        let noise = scores.iter().find(|s| s.attr_index == 2).unwrap();
        assert!(dep.statistic > noise.statistic);
        assert!(dep.p_value < 1e-10);
        assert!(noise.p_value > 0.05);
    }

    #[test]
    fn forced_attributes_come_first() {
        let t = table();
        let v = t.full_view();
        let codes = pivot_codes(&t);
        let (selected, _) = select_compare_attributes(
            &v,
            0,
            &codes,
            &[2],
            &[1, 2, 3],
            &FeatureSelectionConfig::default(),
        );
        assert_eq!(selected[0], 2); // forced Noise leads despite being uninformative
        assert!(selected.contains(&1));
    }

    #[test]
    fn max_attrs_respected() {
        let t = table();
        let v = t.full_view();
        let codes = pivot_codes(&t);
        let config = FeatureSelectionConfig {
            max_attrs: 1,
            ..Default::default()
        };
        let (selected, _) =
            select_compare_attributes(&v, 0, &codes, &[], &[1, 2, 3], &config);
        assert_eq!(selected.len(), 1);
        assert_eq!(selected[0], 1); // the strongest signal
    }

    #[test]
    fn sampling_preserves_top_attribute() {
        let t = table();
        let v = t.full_view();
        let codes = pivot_codes(&t);
        let config = FeatureSelectionConfig {
            sample: Some(50),
            ..Default::default()
        };
        let (selected, _) =
            select_compare_attributes(&v, 0, &codes, &[], &[1, 2, 3], &config);
        assert_eq!(selected[0], 1);
    }

    /// Scoring across threads, with or without the cache, must reproduce
    /// the sequential uncached scores exactly.
    #[test]
    fn parallel_and_cached_scoring_match_sequential() {
        let t = table();
        let v = t.full_view();
        let codes = pivot_codes(&t);
        let pivot_column = t.column(0);
        let class_of = |row: usize| -> Option<usize> {
            let code = pivot_column.get_code(row)?;
            codes.iter().position(|&c| c == code)
        };
        let config = FeatureSelectionConfig::default();
        let run = |ctx: ScoringCtx<'_>| {
            select_compare_attributes_ctx(&v, codes.len(), &class_of, 0, &[], &[1, 2, 3], &config, ctx)
        };
        let (base_sel, base_scores) = run(ScoringCtx::default());
        let cache = StatsCache::new();
        for threads in [1, 2, 4] {
            for use_cache in [false, true] {
                let ctx = ScoringCtx {
                    threads,
                    cache: use_cache.then_some(&cache),
                    class_ctx: 17,
                };
                let (sel, scores) = run(ctx);
                assert_eq!(sel, base_sel, "threads={threads} cache={use_cache}");
                assert_eq!(scores.len(), base_scores.len());
                for (a, b) in scores.iter().zip(&base_scores) {
                    assert_eq!(a.attr_index, b.attr_index);
                    assert_eq!(a.statistic.to_bits(), b.statistic.to_bits());
                    assert_eq!(a.score.to_bits(), b.score.to_bits());
                }
            }
        }
        let stats = cache.stats();
        assert!(stats.hits > 0, "repeat cached runs must hit: {stats}");
    }

    #[test]
    fn pivot_attribute_never_selected() {
        let t = table();
        let v = t.full_view();
        let codes = pivot_codes(&t);
        let (selected, _) = select_compare_attributes(
            &v,
            0,
            &codes,
            &[],
            &[0, 1],
            &FeatureSelectionConfig::default(),
        );
        assert!(!selected.contains(&0));
    }
}
