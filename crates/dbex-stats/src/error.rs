//! Typed errors for the statistics layer.
//!
//! `dbex-stats` sits at the bottom of the CAD pipeline's error hierarchy:
//! [`StatsError`] values have no `source()` of their own, but are wrapped by
//! `dbex_cluster::ClusterError` / `dbex_core::CadError` so that failures
//! surfacing at the session layer carry a full chain down to the
//! statistical root cause.

use std::fmt;

/// An error from histogram construction or attribute discretization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// An input slice was empty where at least one value is required.
    EmptyInput {
        /// What was empty, e.g. `"histogram values"`.
        what: &'static str,
    },
    /// Every input value was NaN or infinite, leaving nothing to bin.
    NoFiniteValues {
        /// What contained only non-finite values.
        what: &'static str,
    },
    /// A histogram with zero bins was requested.
    ZeroBins,
    /// A categorical column is missing its dictionary (corrupt table).
    MissingDictionary {
        /// Schema index of the offending column.
        attr: usize,
    },
    /// A column has no non-NULL values to build a codec from.
    NoUsableValues {
        /// Schema index of the offending column.
        attr: usize,
    },
    /// A deliberately injected fault (testing only; see [`crate::fault`]).
    FaultInjected {
        /// The site that was armed.
        site: &'static str,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptyInput { what } => write!(f, "{what} is empty"),
            StatsError::NoFiniteValues { what } => {
                write!(f, "{what} contains no finite values (all NaN/inf)")
            }
            StatsError::ZeroBins => write!(f, "histogram requires at least one bin"),
            StatsError::MissingDictionary { attr } => {
                write!(f, "categorical column {attr} has no dictionary")
            }
            StatsError::NoUsableValues { attr } => {
                write!(f, "column {attr} has no non-NULL values to discretize")
            }
            StatsError::FaultInjected { site } => {
                write!(f, "injected fault at {site}")
            }
        }
    }
}

impl std::error::Error for StatsError {}
