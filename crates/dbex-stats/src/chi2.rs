//! Contingency tables and Pearson's chi-square test of independence.
//!
//! This is the statistical core of Compare Attribute selection (paper
//! Section 3.1.1): "ChiSquare evaluates the worth of an attribute by
//! computing the value of the chi-squared statistic with respect to the
//! class".

use crate::simd;
use crate::special::chi2_sf;

/// A dense `rows × cols` contingency table of observation counts.
///
/// Rows index the class variable (Pivot Attribute values); columns index the
/// candidate attribute's discrete values.
///
/// Counts are stored as `u64` internally and surfaced as `f64` — every
/// count is an exact integer far below 2⁵³, so the conversion is lossless
/// and the marginal sums (pure integer reductions, SIMD-dispatched via
/// [`crate::simd`]) are bit-identical to the old f64 accumulation in any
/// evaluation order.
#[derive(Debug, Clone)]
pub struct ContingencyTable {
    rows: usize,
    cols: usize,
    counts: Vec<u64>,
}

impl ContingencyTable {
    /// Creates an all-zero table of the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        ContingencyTable {
            rows,
            cols,
            counts: vec![0; rows * cols],
        }
    }

    /// Number of class rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of attribute-value columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Increments the `(row, col)` cell by one observation.
    pub fn add(&mut self, row: usize, col: usize) {
        self.counts[row * self.cols + col] += 1;
    }

    /// Batch fill from parallel code slices: for every position where
    /// neither `rows[i]` nor `cols[i]` is `sentinel` (the NULL code),
    /// increments cell `(rows[i], cols[i])`. The hot path of both the
    /// interaction matrix and Compare Attribute scoring; identical to
    /// calling [`ContingencyTable::add`] per pair, but the NULL screen and
    /// address arithmetic vectorize.
    pub fn fill_pairs(&mut self, rows: &[u32], cols: &[u32], sentinel: u32) {
        simd::fill_pair_counts(&mut self.counts, self.cols, rows, cols, sentinel);
    }

    /// Count in cell `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.counts[row * self.cols + col] as f64
    }

    /// Total number of observations.
    pub fn total(&self) -> f64 {
        simd::sum_u64(&self.counts) as f64
    }

    /// Row marginal sums.
    pub fn row_totals(&self) -> Vec<f64> {
        if self.cols == 0 {
            return vec![0.0; self.rows];
        }
        self.counts
            .chunks(self.cols)
            .map(|row| simd::sum_u64(row) as f64)
            .collect()
    }

    /// Column marginal sums.
    pub fn col_totals(&self) -> Vec<f64> {
        let mut totals = vec![0u64; self.cols];
        for row in self.counts.chunks(self.cols.max(1)) {
            simd::add_assign_u64(&mut totals, row);
        }
        totals.into_iter().map(|t| t as f64).collect()
    }

    /// Runs Pearson's chi-square test of independence on the table.
    ///
    /// Rows/columns whose marginal total is zero are excluded both from the
    /// statistic and from the degrees of freedom (they carry no
    /// information — Weka does the same). Returns `None` when fewer than two
    /// non-empty rows or columns remain (the test is undefined).
    pub fn chi_square(&self) -> Option<ChiSquareResult> {
        let row_totals = self.row_totals();
        let col_totals = self.col_totals();
        let n = self.total();
        let live_rows: Vec<usize> = (0..self.rows).filter(|&r| row_totals[r] > 0.0).collect();
        let live_cols: Vec<usize> = (0..self.cols).filter(|&c| col_totals[c] > 0.0).collect();
        if live_rows.len() < 2 || live_cols.len() < 2 || n <= 0.0 {
            return None;
        }
        let mut statistic = 0.0;
        for &r in &live_rows {
            for &c in &live_cols {
                let expected = row_totals[r] * col_totals[c] / n;
                let observed = self.get(r, c);
                let diff = observed - expected;
                statistic += diff * diff / expected;
            }
        }
        let dof = ((live_rows.len() - 1) * (live_cols.len() - 1)) as f64;
        Some(ChiSquareResult {
            statistic,
            dof,
            p_value: chi2_sf(statistic, dof),
        })
    }

    /// Cramér's V effect size, a `[0,1]`-normalized version of the statistic.
    ///
    /// Useful for comparing attributes with different cardinalities, and
    /// exposed for diagnostics in the feature-selection report.
    pub fn cramers_v(&self) -> Option<f64> {
        let result = self.chi_square()?;
        let n = self.total();
        let live_rows = self.row_totals().iter().filter(|&&t| t > 0.0).count();
        let live_cols = self.col_totals().iter().filter(|&&t| t > 0.0).count();
        let k = (live_rows.min(live_cols) - 1) as f64;
        if k <= 0.0 || n <= 0.0 {
            return None;
        }
        Some((result.statistic / (n * k)).sqrt())
    }
}

/// The outcome of a chi-square test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquareResult {
    /// Pearson's X² statistic.
    pub statistic: f64,
    /// Degrees of freedom, `(r−1)(c−1)` over non-empty rows/columns.
    pub dof: f64,
    /// Upper-tail p-value `Pr[χ²(dof) > statistic]`.
    pub p_value: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_table_small_statistic() {
        // Perfectly proportional table ⇒ statistic 0.
        let mut t = ContingencyTable::new(2, 2);
        for _ in 0..10 {
            t.add(0, 0);
            t.add(1, 0);
        }
        for _ in 0..30 {
            t.add(0, 1);
            t.add(1, 1);
        }
        let r = t.chi_square().unwrap();
        assert!(r.statistic.abs() < 1e-9);
        assert!((r.p_value - 1.0).abs() < 1e-9);
        assert_eq!(r.dof, 1.0);
    }

    #[test]
    fn dependent_table_large_statistic() {
        // Diagonal table ⇒ maximal dependence.
        let mut t = ContingencyTable::new(2, 2);
        for _ in 0..50 {
            t.add(0, 0);
            t.add(1, 1);
        }
        let r = t.chi_square().unwrap();
        assert!((r.statistic - 100.0).abs() < 1e-9); // n·V² = n for perfect association
        assert!(r.p_value < 1e-12);
        assert!((t.cramers_v().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn textbook_example() {
        // Classic 2×2 example: observed [[20,30],[30,20]], n=100.
        let mut t = ContingencyTable::new(2, 2);
        for (r, c, n) in [(0, 0, 20), (0, 1, 30), (1, 0, 30), (1, 1, 20)] {
            for _ in 0..n {
                t.add(r, c);
            }
        }
        let r = t.chi_square().unwrap();
        // X² = Σ (O-E)²/E with E=25 everywhere: 4 · 25/25 = 4.0.
        assert!((r.statistic - 4.0).abs() < 1e-9);
        assert!((r.p_value - 0.0455).abs() < 1e-3);
    }

    #[test]
    fn empty_rows_and_columns_dropped() {
        let mut t = ContingencyTable::new(3, 3);
        // Only rows 0,2 and cols 0,2 populated → effective 2×2, dof 1.
        for _ in 0..10 {
            t.add(0, 0);
            t.add(2, 2);
        }
        let r = t.chi_square().unwrap();
        assert_eq!(r.dof, 1.0);
    }

    #[test]
    fn degenerate_tables_return_none() {
        let t = ContingencyTable::new(2, 2);
        assert!(t.chi_square().is_none()); // all zero
        let mut t = ContingencyTable::new(2, 2);
        t.add(0, 0);
        t.add(0, 1);
        assert!(t.chi_square().is_none()); // single non-empty row
    }

    #[test]
    fn fill_pairs_matches_per_pair_adds() {
        let sentinel = u32::MAX;
        let rows: Vec<u32> = (0..200)
            .map(|i| if i % 17 == 0 { sentinel } else { i % 3 })
            .collect();
        let cols: Vec<u32> = (0..200)
            .map(|i| if i % 23 == 0 { sentinel } else { (i * 5) % 4 })
            .collect();
        let mut batch = ContingencyTable::new(3, 4);
        batch.fill_pairs(&rows, &cols, sentinel);
        let mut reference = ContingencyTable::new(3, 4);
        for (&r, &c) in rows.iter().zip(&cols) {
            if r != sentinel && c != sentinel {
                reference.add(r as usize, c as usize);
            }
        }
        for r in 0..3 {
            for c in 0..4 {
                assert_eq!(batch.get(r, c), reference.get(r, c), "({r},{c})");
            }
        }
        assert_eq!(batch.total(), reference.total());
    }

    #[test]
    fn marginals() {
        let mut t = ContingencyTable::new(2, 3);
        t.add(0, 0);
        t.add(0, 2);
        t.add(1, 2);
        assert_eq!(t.row_totals(), vec![2.0, 1.0]);
        assert_eq!(t.col_totals(), vec![1.0, 0.0, 2.0]);
        assert_eq!(t.total(), 3.0);
    }
}
