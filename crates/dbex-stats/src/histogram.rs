//! Numeric discretization via histograms.
//!
//! The paper (Section 2.2.1) reduces the cardinality of numeric attributes
//! by binning values into ranges — "we suggest following the well-developed
//! techniques in histogram construction [Jagadish & Suel]". Three strategies
//! are provided:
//!
//! * **Equi-width** — fixed-width bins over `[min, max]`.
//! * **Equi-depth** — bins with (approximately) equal tuple counts.
//! * **V-optimal** — bins minimizing total within-bin variance (sum of
//!   squared errors), computed by the classical dynamic program over the
//!   sorted distinct-value frequency vector. This is the "optimal histogram
//!   with quality guarantees" of the paper's reference \[17\].

// Index loops below intentionally couple multiple arrays / triangular
// ranges; iterator adapters would obscure the math.
#![allow(clippy::needless_range_loop)]

use crate::error::StatsError;
use crate::fault;

/// Strategy used to place bin boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinningStrategy {
    /// Fixed-width bins over the value range.
    EquiWidth,
    /// Approximately equal tuple counts per bin.
    EquiDepth,
    /// Minimum total within-bin variance (V-optimal DP).
    VOptimal,
    /// Boundaries at the largest gaps between adjacent distinct values
    /// (the classical MaxDiff heuristic — near-V-optimal quality at sort
    /// cost).
    MaxDiff,
}

/// A one-dimensional histogram: an increasing sequence of bin edges.
///
/// With edges `e0 < e1 < ... < eB`, bin `i` covers `[e_i, e_{i+1})`, except
/// the last bin which is closed: `[e_{B-1}, e_B]`.
#[derive(Debug, Clone)]
pub struct Histogram {
    edges: Vec<f64>,
}

impl Histogram {
    /// Builds a histogram over `values` with at most `bins` bins.
    ///
    /// Returns a histogram with fewer bins when the data has fewer distinct
    /// values than requested. `values` may be in any order; NULLs must be
    /// filtered by the caller. Fails with a typed [`StatsError`] when
    /// `values` is empty, contains no finite value, or `bins == 0`.
    ///
    /// ```
    /// use dbex_stats::histogram::{Histogram, BinningStrategy};
    ///
    /// let prices = [12_000.0, 15_000.0, 22_000.0, 41_000.0, 44_000.0];
    /// let h = Histogram::build(&prices, 2, BinningStrategy::VOptimal).unwrap();
    /// assert_eq!(h.num_bins(), 2);
    /// assert_ne!(h.bin_of(15_000.0), h.bin_of(42_000.0));
    /// ```
    pub fn build(
        values: &[f64],
        bins: usize,
        strategy: BinningStrategy,
    ) -> Result<Histogram, StatsError> {
        fault::check("histogram::build")?;
        if values.is_empty() {
            return Err(StatsError::EmptyInput {
                what: "histogram values",
            });
        }
        if bins == 0 {
            return Err(StatsError::ZeroBins);
        }
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if sorted.is_empty() {
            return Err(StatsError::NoFiniteValues {
                what: "histogram values",
            });
        }
        sorted.sort_by(|a, b| a.total_cmp(b));
        let edges = match strategy {
            BinningStrategy::EquiWidth => equi_width_edges(&sorted, bins),
            BinningStrategy::EquiDepth => equi_depth_edges(&sorted, bins),
            BinningStrategy::VOptimal => v_optimal_edges(&sorted, bins),
            BinningStrategy::MaxDiff => max_diff_edges(&sorted, bins),
        };
        Ok(Histogram { edges })
    }

    /// The bin edges (length = number of bins + 1).
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.edges.len() - 1
    }

    /// Index of the bin containing `v`.
    ///
    /// Values below the first edge clamp to bin 0; values above the last
    /// edge clamp to the last bin, and NaN maps to bin 0. This makes the
    /// codec total, so rows that fall outside the range the histogram was
    /// built on (a sample, or non-finite values the build filtered out)
    /// still discretize.
    pub fn bin_of(&self, v: f64) -> usize {
        let last = self.num_bins() - 1;
        // NaN compares false against every edge; without this check it
        // would reach partition_point, get index 0, and underflow below.
        if v.is_nan() || v <= self.edges[0] {
            return 0;
        }
        if v >= self.edges[self.edges.len() - 1] {
            return last;
        }
        // partition_point: first edge strictly greater than v.
        let idx = self.edges.partition_point(|&e| e <= v);
        idx.saturating_sub(1).min(last)
    }

    /// Batch [`Histogram::bin_of`]: writes the bin of every value into
    /// `out` (same length). Identical results — including the NaN and
    /// out-of-range clamping — via the branchless count-of-edges
    /// formulation, which SIMD-vectorizes four values per op (see
    /// [`crate::simd::bin_of_batch`]).
    pub fn bin_of_batch(&self, values: &[f64], out: &mut [u32]) {
        crate::simd::bin_of_batch(&self.edges, values, out);
    }

    /// Human-readable label for bin `i`, e.g. `"15K-20K"` or `"2011-2012"`.
    pub fn label(&self, i: usize) -> String {
        let lo = self.edges[i];
        let hi = self.edges[i + 1];
        format!("{}-{}", format_edge(lo), format_edge(hi))
    }

    /// All bin labels in order.
    pub fn labels(&self) -> Vec<String> {
        (0..self.num_bins()).map(|i| self.label(i)).collect()
    }
}

/// Formats a bin edge compactly: integers ≥ 10 000 print as `25K`, other
/// integers print plain, fractional values keep one decimal.
fn format_edge(v: f64) -> String {
    if (v.fract()).abs() < 1e-9 {
        let i = v.round() as i64;
        if i.abs() >= 10_000 && i % 500 == 0 {
            let k = i as f64 / 1000.0;
            if (k.fract()).abs() < 1e-9 {
                return format!("{}K", k as i64);
            }
            return format!("{k:.1}K");
        }
        return format!("{i}");
    }
    format!("{v:.1}")
}

fn equi_width_edges(sorted: &[f64], bins: usize) -> Vec<f64> {
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    if min == max {
        return vec![min, max + 1.0];
    }
    let width = (max - min) / bins as f64;
    let mut edges: Vec<f64> = (0..=bins).map(|i| min + width * i as f64).collect();
    // Guard against floating error on the final edge.
    if let Some(last) = edges.last_mut() {
        *last = max;
    }
    dedup_edges(edges)
}

fn equi_depth_edges(sorted: &[f64], bins: usize) -> Vec<f64> {
    let n = sorted.len();
    let mut edges = Vec::with_capacity(bins + 1);
    edges.push(sorted[0]);
    for i in 1..bins {
        let idx = (i * n) / bins;
        edges.push(sorted[idx.min(n - 1)]);
    }
    edges.push(sorted[n - 1]);
    dedup_edges(edges)
}

/// V-optimal histogram via dynamic programming on the distinct-value
/// frequency vector.
///
/// Cost of a bucket spanning distinct values `i..j` is the frequency-
/// weighted sum of squared deviations from the bucket mean, computed in
/// O(1) from prefix sums. The DP is `O(d² · bins)` where `d` is the number
/// of distinct values; inputs with more than [`VOPT_MAX_DISTINCT`] distinct
/// values are pre-aggregated into that many equi-depth micro-bins, which
/// preserves the shape of the distribution while bounding runtime.
fn v_optimal_edges(sorted: &[f64], bins: usize) -> Vec<f64> {
    // Distinct values + frequencies.
    let mut xs: Vec<f64> = Vec::new();
    let mut fs: Vec<f64> = Vec::new();
    for &v in sorted {
        if xs.last() == Some(&v) {
            if let Some(f) = fs.last_mut() {
                *f += 1.0;
            }
            continue;
        }
        xs.push(v);
        fs.push(1.0);
    }
    if xs.len() > VOPT_MAX_DISTINCT {
        (xs, fs) = micro_aggregate(&xs, &fs, VOPT_MAX_DISTINCT);
    }
    let d = xs.len();
    let b = bins.min(d);
    if b <= 1 {
        return dedup_edges(vec![xs[0], xs[d - 1]]);
    }

    // Prefix sums for O(1) SSE(i..=j).
    let mut pf = vec![0.0; d + 1]; // Σ f
    let mut pfx = vec![0.0; d + 1]; // Σ f·x
    let mut pfx2 = vec![0.0; d + 1]; // Σ f·x²
    for i in 0..d {
        pf[i + 1] = pf[i] + fs[i];
        pfx[i + 1] = pfx[i] + fs[i] * xs[i];
        pfx2[i + 1] = pfx2[i] + fs[i] * xs[i] * xs[i];
    }
    let sse = |i: usize, j: usize| -> f64 {
        // inclusive i..=j over distinct indices
        let f = pf[j + 1] - pf[i];
        if f <= 0.0 {
            return 0.0;
        }
        let sx = pfx[j + 1] - pfx[i];
        let sx2 = pfx2[j + 1] - pfx2[i];
        (sx2 - sx * sx / f).max(0.0)
    };

    // dp[k][j] = min cost of covering distinct values 0..=j with k+1 buckets.
    let mut dp = vec![vec![f64::INFINITY; d]; b];
    let mut back = vec![vec![0usize; d]; b];
    for j in 0..d {
        dp[0][j] = sse(0, j);
    }
    for k in 1..b {
        for j in k..d {
            for split in (k - 1)..j {
                let cost = dp[k - 1][split] + sse(split + 1, j);
                if cost < dp[k][j] {
                    dp[k][j] = cost;
                    back[k][j] = split;
                }
            }
        }
    }

    // Recover boundaries.
    let mut cut_after = Vec::new(); // indices i such that a boundary lies between xs[i] and xs[i+1]
    let mut k = b - 1;
    let mut j = d - 1;
    while k > 0 {
        let split = back[k][j];
        cut_after.push(split);
        j = split;
        k -= 1;
    }
    cut_after.reverse();

    let mut edges = Vec::with_capacity(b + 1);
    edges.push(xs[0]);
    for &i in &cut_after {
        // Boundary at midpoint between adjacent distinct values.
        edges.push((xs[i] + xs[i + 1]) / 2.0);
    }
    edges.push(xs[d - 1]);
    dedup_edges(edges)
}

/// MaxDiff: place the `bins − 1` boundaries at the largest gaps between
/// adjacent distinct values.
fn max_diff_edges(sorted: &[f64], bins: usize) -> Vec<f64> {
    let mut xs: Vec<f64> = sorted.to_vec();
    xs.dedup();
    let d = xs.len();
    if d <= 1 || bins <= 1 {
        return dedup_edges(vec![xs[0], xs[d - 1]]);
    }
    // Gaps between adjacent distinct values, largest first.
    let mut gaps: Vec<(f64, usize)> = xs
        .windows(2)
        .enumerate()
        .map(|(i, w)| (w[1] - w[0], i))
        .collect();
    gaps.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut cut_after: Vec<usize> = gaps
        .into_iter()
        .take(bins - 1)
        .map(|(_, i)| i)
        .collect();
    cut_after.sort_unstable();
    let mut edges = Vec::with_capacity(cut_after.len() + 2);
    edges.push(xs[0]);
    for i in cut_after {
        edges.push((xs[i] + xs[i + 1]) / 2.0);
    }
    edges.push(xs[d - 1]);
    dedup_edges(edges)
}

/// Maximum distinct values fed to the V-optimal DP before pre-aggregation.
const VOPT_MAX_DISTINCT: usize = 1024;

fn micro_aggregate(xs: &[f64], fs: &[f64], target: usize) -> (Vec<f64>, Vec<f64>) {
    let total: f64 = fs.iter().sum();
    let per = total / target as f64;
    let mut out_x = Vec::with_capacity(target);
    let mut out_f = Vec::with_capacity(target);
    let mut acc_f = 0.0;
    let mut acc_fx = 0.0;
    for (&x, &f) in xs.iter().zip(fs) {
        acc_f += f;
        acc_fx += f * x;
        if acc_f >= per {
            out_x.push(acc_fx / acc_f);
            out_f.push(acc_f);
            acc_f = 0.0;
            acc_fx = 0.0;
        }
    }
    if acc_f > 0.0 {
        out_x.push(acc_fx / acc_f);
        out_f.push(acc_f);
    }
    (out_x, out_f)
}

fn dedup_edges(mut edges: Vec<f64>) -> Vec<f64> {
    edges.dedup();
    if edges.len() < 2 {
        let v = edges.first().copied().unwrap_or(0.0);
        // Additive bump scaled to the value's magnitude so the upper edge
        // is strictly greater even for very large |v|.
        let bump = (v.abs() * 1e-9).max(1.0);
        return vec![v, v + bump];
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equi_width_basic() {
        let h = Histogram::build(&[0.0, 10.0, 5.0, 2.0], 2, BinningStrategy::EquiWidth).unwrap();
        assert_eq!(h.edges(), &[0.0, 5.0, 10.0]);
        assert_eq!(h.bin_of(4.9), 0);
        assert_eq!(h.bin_of(5.0), 1);
        assert_eq!(h.bin_of(10.0), 1);
        assert_eq!(h.bin_of(-3.0), 0);
        assert_eq!(h.bin_of(99.0), 1);
    }

    #[test]
    fn equi_depth_balances_counts() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = Histogram::build(&values, 4, BinningStrategy::EquiDepth).unwrap();
        assert_eq!(h.num_bins(), 4);
        let mut counts = vec![0usize; 4];
        for &v in &values {
            counts[h.bin_of(v)] += 1;
        }
        for &c in &counts {
            assert!((20..=30).contains(&c), "unbalanced: {counts:?}");
        }
    }

    #[test]
    fn equi_depth_skewed_data() {
        // 90 copies of 1.0, ten distinct tail values: duplicate edges must
        // collapse rather than produce empty/invalid bins.
        let mut values = vec![1.0; 90];
        values.extend((2..12).map(|i| i as f64));
        let h = Histogram::build(&values, 5, BinningStrategy::EquiDepth).unwrap();
        assert!(h.num_bins() >= 1);
        let edges = h.edges();
        for w in edges.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn v_optimal_finds_cluster_gaps() {
        // Two tight clusters: the optimal 2-bin split is between them.
        let mut values = Vec::new();
        values.extend((0..50).map(|i| 10.0 + 0.01 * i as f64));
        values.extend((0..50).map(|i| 100.0 + 0.01 * i as f64));
        let h = Histogram::build(&values, 2, BinningStrategy::VOptimal).unwrap();
        assert_eq!(h.num_bins(), 2);
        let boundary = h.edges()[1];
        assert!(boundary > 11.0 && boundary < 100.0, "boundary={boundary}");
        assert_eq!(h.bin_of(10.2), 0);
        assert_eq!(h.bin_of(100.2), 1);
    }

    #[test]
    fn v_optimal_beats_equi_width_on_sse() {
        // Skewed data where equi-width wastes bins on empty space.
        let mut values: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
        values.push(1000.0);
        let vo = Histogram::build(&values, 4, BinningStrategy::VOptimal).unwrap();
        let ew = Histogram::build(&values, 4, BinningStrategy::EquiWidth).unwrap();
        let sse = |h: &Histogram| {
            let mut sums = vec![(0.0f64, 0.0f64, 0.0f64); h.num_bins()];
            for &v in &values {
                let b = h.bin_of(v);
                sums[b].0 += 1.0;
                sums[b].1 += v;
                sums[b].2 += v * v;
            }
            sums.iter()
                .filter(|s| s.0 > 0.0)
                .map(|s| s.2 - s.1 * s.1 / s.0)
                .sum::<f64>()
        };
        assert!(sse(&vo) <= sse(&ew) + 1e-9);
    }

    #[test]
    fn fewer_distinct_values_than_bins() {
        let h = Histogram::build(&[1.0, 1.0, 2.0], 10, BinningStrategy::VOptimal).unwrap();
        assert!(h.num_bins() <= 2);
        assert_eq!(h.bin_of(1.0), 0);
    }

    #[test]
    fn constant_column() {
        let h = Histogram::build(&[7.0; 5], 3, BinningStrategy::EquiWidth).unwrap();
        assert_eq!(h.num_bins(), 1);
        assert_eq!(h.bin_of(7.0), 0);
    }

    #[test]
    fn degenerate_inputs_are_typed_errors() {
        assert_eq!(
            Histogram::build(&[], 3, BinningStrategy::EquiWidth).unwrap_err(),
            StatsError::EmptyInput {
                what: "histogram values"
            }
        );
        assert_eq!(
            Histogram::build(&[1.0], 0, BinningStrategy::EquiWidth).unwrap_err(),
            StatsError::ZeroBins
        );
        assert_eq!(
            Histogram::build(
                &[f64::NAN, f64::INFINITY, f64::NEG_INFINITY],
                3,
                BinningStrategy::EquiWidth
            )
            .unwrap_err(),
            StatsError::NoFiniteValues {
                what: "histogram values"
            }
        );
    }

    #[test]
    fn nan_mixed_with_finite_values_is_filtered() {
        let h = Histogram::build(
            &[1.0, f64::NAN, 2.0, f64::INFINITY, 3.0],
            2,
            BinningStrategy::EquiDepth,
        )
        .unwrap();
        assert!(h.num_bins() >= 1);
        assert!(h.edges().iter().all(|e| e.is_finite()));
    }

    #[test]
    fn bin_of_is_total_over_non_finite_queries() {
        let h = Histogram::build(&[1.0, 2.0, 3.0, 4.0], 2, BinningStrategy::EquiDepth).unwrap();
        // NaN and the infinities clamp instead of panicking: the codec must
        // stay total even when the column being encoded holds values the
        // histogram build filtered out.
        assert_eq!(h.bin_of(f64::NAN), 0);
        assert_eq!(h.bin_of(f64::NEG_INFINITY), 0);
        assert_eq!(h.bin_of(f64::INFINITY), h.num_bins() - 1);
    }

    #[test]
    fn injected_fault_surfaces_as_error() {
        let _guard = crate::fault::scoped("histogram::build");
        let err = Histogram::build(&[1.0, 2.0], 2, BinningStrategy::EquiWidth).unwrap_err();
        assert_eq!(
            err,
            StatsError::FaultInjected {
                site: "histogram::build"
            }
        );
    }

    #[test]
    fn batch_binning_matches_bin_of() {
        let values: Vec<f64> = (0..500).map(|i| ((i * 37) % 101) as f64 / 3.0).collect();
        for strategy in [
            BinningStrategy::EquiWidth,
            BinningStrategy::EquiDepth,
            BinningStrategy::VOptimal,
            BinningStrategy::MaxDiff,
        ] {
            let h = Histogram::build(&values, 6, strategy).unwrap();
            let mut probes = values.clone();
            probes.extend([f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1e18, 1e18]);
            let mut batch = vec![0u32; probes.len()];
            h.bin_of_batch(&probes, &mut batch);
            for (&v, &b) in probes.iter().zip(&batch) {
                assert_eq!(b as usize, h.bin_of(v), "strategy {strategy:?}, v={v}");
            }
        }
    }

    #[test]
    fn labels_use_compact_notation() {
        let values: Vec<f64> = vec![15_000.0, 20_000.0, 25_000.0, 30_000.0];
        let h = Histogram::build(&values, 3, BinningStrategy::EquiDepth).unwrap();
        let labels = h.labels();
        assert!(labels.iter().any(|l| l.contains('K')), "labels={labels:?}");
    }

    #[test]
    fn max_diff_splits_at_largest_gaps() {
        // Gaps: 1,1,88,1,1,907 — two boundaries land in the two big gaps.
        let values = [0.0, 1.0, 2.0, 90.0, 91.0, 92.0, 999.0];
        let h = Histogram::build(&values, 3, BinningStrategy::MaxDiff).unwrap();
        assert_eq!(h.num_bins(), 3);
        assert_eq!(h.bin_of(1.5), 0);
        assert_eq!(h.bin_of(91.0), 1);
        assert_eq!(h.bin_of(999.0), 2);
    }

    #[test]
    fn max_diff_degenerate_inputs() {
        let h = Histogram::build(&[5.0, 5.0], 4, BinningStrategy::MaxDiff).unwrap();
        assert_eq!(h.num_bins(), 1);
        let h = Histogram::build(&[1.0, 2.0], 4, BinningStrategy::MaxDiff).unwrap();
        assert!(h.num_bins() <= 2);
        assert_ne!(h.bin_of(1.0), h.bin_of(2.0));
    }

    #[test]
    fn large_distinct_input_is_aggregated() {
        let values: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let h = Histogram::build(&values, 6, BinningStrategy::VOptimal).unwrap();
        assert_eq!(h.num_bins(), 6);
    }
}
