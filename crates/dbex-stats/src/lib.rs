//! # dbex-stats
//!
//! Statistics substrate for DBExplorer.
//!
//! The CAD View pipeline needs several statistical components the paper
//! delegates to off-the-shelf software:
//!
//! * [`special`] — log-gamma and regularized incomplete gamma functions,
//!   from which the chi-square distribution is derived.
//! * [`chi2`] — contingency tables and Pearson's chi-square test (the
//!   paper's Weka `ChiSquare` attribute evaluator, Section 3.1.1).
//! * [`histogram`] — equi-width, equi-depth and V-optimal histograms for
//!   numeric discretization (the paper cites Jagadish & Suel's optimal
//!   histograms, Section 2.2.1).
//! * [`discretize`] — per-attribute codecs mapping raw column values to
//!   dense discrete codes with human-readable bin labels.
//! * [`feature`] — Compare Attribute selection: chi-square ranking with
//!   significance thresholds (Problem 1.1).
//! * [`simil`] — cosine similarity over frequency vectors (Algorithm 1's
//!   building block).
//! * [`metrics`] — F1 / precision / recall used by the user-study tasks.
//! * [`mixed`] — linear mixed-effects model with a random intercept and
//!   likelihood-ratio tests, reproducing the paper's Section 6.2 analysis.
//! * [`error`] — the layer's typed error ([`StatsError`]); [`fault`] holds
//!   the deterministic fault-injection hooks the robustness tests use.
//! * [`simd`] — runtime-dispatched integer SIMD kernels (contingency fill,
//!   marginal sums, batch binning) shared with `dbex-cluster`; every
//!   vector path is bit-identical to its always-compiled scalar oracle.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod cache;
pub mod chi2;
pub mod entropy;
pub mod discretize;
pub mod error;
pub mod fault;
pub mod feature;
pub mod histogram;
pub mod interact;
pub mod metrics;
pub mod mixed;
pub mod simd;
pub mod simil;
pub mod special;

pub use cache::{CacheStats, ClusterKey, ClusterSolution, CodecKey, ContingencyKey, StatsCache};
pub use chi2::{ChiSquareResult, ContingencyTable};
pub use error::StatsError;
pub use discretize::{AttributeCodec, CodedColumn, CodedMatrix};
pub use entropy::{entropy, information_gain, mutual_information, symmetrical_uncertainty};
pub use feature::{
    select_compare_attributes, select_compare_attributes_by, select_compare_attributes_ctx,
    FeatureScore, FeatureScorer, FeatureSelectionConfig, ScoringCtx,
};
pub use interact::{InteractionMatrix, PairInteraction};
pub use histogram::{BinningStrategy, Histogram};
pub use metrics::{f1_score, ConfusionCounts};
pub use mixed::{likelihood_ratio_test, LmmFit, LrtResult};
pub use simd::SimdDispatch;
pub use simil::{cosine_similarity, cosine_similarity_sparse};
