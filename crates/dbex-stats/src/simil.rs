//! Cosine similarity over frequency vectors.
//!
//! Algorithm 1 of the paper sums, per Compare Attribute, the cosine
//! similarity between the two IUnits' value-frequency vectors ("we use the
//! frequency count of each attribute value in the corresponding cluster as
//! the attribute value's term frequency").

/// Cosine similarity of two dense non-negative vectors.
///
/// Returns 0 when either vector is all-zero. Vectors may differ in length;
/// the shorter is implicitly zero-padded.
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    let mut dot = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        dot += x * y;
    }
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|y| y * y).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na * nb)
}

/// Cosine similarity of two sparse vectors given as `(index, weight)`
/// pairs. Indices need not be sorted; duplicate indices accumulate.
pub fn cosine_similarity_sparse(a: &[(u32, f64)], b: &[(u32, f64)]) -> f64 {
    use std::collections::HashMap;
    let mut map: HashMap<u32, f64> = HashMap::with_capacity(a.len());
    for &(i, w) in a {
        *map.entry(i).or_insert(0.0) += w;
    }
    let mut bmap: HashMap<u32, f64> = HashMap::with_capacity(b.len());
    for &(i, w) in b {
        *bmap.entry(i).or_insert(0.0) += w;
    }
    let dot: f64 = map
        .iter()
        .filter_map(|(i, w)| bmap.get(i).map(|v| w * v))
        .sum();
    let na: f64 = map.values().map(|w| w * w).sum::<f64>().sqrt();
    let nb: f64 = bmap.values().map(|w| w * w).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_vectors_are_one() {
        assert!((cosine_similarity(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
        // Scale invariance.
        assert!((cosine_similarity(&[1.0, 2.0], &[10.0, 20.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn orthogonal_vectors_are_zero() {
        assert_eq!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
    }

    #[test]
    fn zero_vector_is_zero() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
        assert_eq!(cosine_similarity(&[], &[]), 0.0);
    }

    #[test]
    fn length_mismatch_pads_with_zero() {
        let s = cosine_similarity(&[1.0], &[1.0, 1.0]);
        assert!((s - 1.0 / 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn sparse_matches_dense() {
        let dense = cosine_similarity(&[1.0, 0.0, 2.0], &[3.0, 4.0, 0.0]);
        let sparse = cosine_similarity_sparse(&[(0, 1.0), (2, 2.0)], &[(0, 3.0), (1, 4.0)]);
        assert!((dense - sparse).abs() < 1e-12);
    }

    #[test]
    fn sparse_duplicate_indices_accumulate() {
        let s = cosine_similarity_sparse(&[(0, 1.0), (0, 1.0)], &[(0, 2.0)]);
        assert!((s - 1.0).abs() < 1e-12);
    }
}
