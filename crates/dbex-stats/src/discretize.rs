//! Discretization: mapping table columns to dense discrete codes.
//!
//! Every CAD View algorithm — chi-square feature selection, k-means
//! clustering, IUnit labeling, digest similarity — consumes attributes as
//! small discrete domains. [`AttributeCodec`] captures how one attribute is
//! discretized (categorical passthrough or numeric binning) and
//! [`CodedMatrix`] materializes the codes for a result set.

use crate::error::StatsError;
use crate::fault;
use crate::histogram::{BinningStrategy, Histogram};
use dbex_table::dict::NULL_CODE;
use dbex_table::{Column, DataType, View};

/// How an attribute's raw values map to discrete codes `0..cardinality`.
#[derive(Debug, Clone)]
pub enum AttributeCodec {
    /// Categorical column: codes are the dictionary codes; labels are the
    /// dictionary strings.
    Categorical {
        /// Label per code, indexed by dictionary code.
        labels: Vec<String>,
    },
    /// Numeric column: codes are histogram bin indices.
    Binned {
        /// The histogram defining the bins.
        histogram: Histogram,
        /// Label per bin, e.g. `"15K-20K"`.
        labels: Vec<String>,
    },
}

impl AttributeCodec {
    /// Builds a codec for column `col` over the rows of `view`.
    ///
    /// Numeric columns are binned with `bins`/`strategy`; fails with a typed
    /// [`StatsError`] if the column has no non-NULL values to bin or a
    /// categorical column is missing its dictionary.
    pub fn build(
        view: &View<'_>,
        col: usize,
        bins: usize,
        strategy: BinningStrategy,
    ) -> Result<Self, StatsError> {
        fault::check("codec::build")?;
        let column = view.table().column(col);
        match column.data_type() {
            DataType::Categorical => {
                let dict = column
                    .dictionary()
                    .ok_or(StatsError::MissingDictionary { attr: col })?;
                let labels = dict.iter().map(|(_, s)| s.to_owned()).collect();
                Ok(AttributeCodec::Categorical { labels })
            }
            DataType::Int | DataType::Float => {
                let values: Vec<f64> = view
                    .row_ids()
                    .iter()
                    .filter_map(|&r| column.get_f64(r as usize))
                    .collect();
                if values.is_empty() {
                    return Err(StatsError::NoUsableValues { attr: col });
                }
                let histogram = Histogram::build(&values, bins, strategy)?;
                let labels = histogram.labels();
                Ok(AttributeCodec::Binned { histogram, labels })
            }
        }
    }

    /// Number of distinct codes this codec can produce.
    pub fn cardinality(&self) -> usize {
        match self {
            AttributeCodec::Categorical { labels } => labels.len(),
            AttributeCodec::Binned { labels, .. } => labels.len(),
        }
    }

    /// Label for a code; `"?"` for out-of-range codes.
    pub fn label(&self, code: u32) -> &str {
        let labels = match self {
            AttributeCodec::Categorical { labels } => labels,
            AttributeCodec::Binned { labels, .. } => labels,
        };
        labels.get(code as usize).map(|s| s.as_str()).unwrap_or("?")
    }

    /// Encodes the value of `column` at `row`, or `None` for NULL.
    pub fn encode(&self, column: &Column, row: usize) -> Option<u32> {
        match self {
            AttributeCodec::Categorical { .. } => match column.get_code(row) {
                Some(NULL_CODE) | None => None,
                Some(code) => Some(code),
            },
            AttributeCodec::Binned { histogram, .. } => {
                column.get_f64(row).map(|v| histogram.bin_of(v) as u32)
            }
        }
    }

    /// Encodes a whole view's worth of rows at once — exactly
    /// [`AttributeCodec::encode`] per row, with `NULL_CODE` standing in
    /// for `None`.
    ///
    /// Binned columns take the batch path: the numeric values are gathered
    /// once and binned through the SIMD batch kernel
    /// ([`Histogram::bin_of_batch`]), with NULL positions tracked
    /// separately so a stored NaN (which bins to 0) is never confused with
    /// a missing value.
    pub fn encode_rows(&self, column: &Column, row_ids: &[u32]) -> Vec<u32> {
        match self {
            AttributeCodec::Categorical { .. } => row_ids
                .iter()
                .map(|&r| match column.get_code(r as usize) {
                    Some(NULL_CODE) | None => NULL_CODE,
                    Some(code) => code,
                })
                .collect(),
            AttributeCodec::Binned { histogram, .. } => {
                let mut values = vec![0.0f64; row_ids.len()];
                let mut null = vec![false; row_ids.len()];
                for ((&r, v), is_null) in row_ids.iter().zip(&mut values).zip(&mut null) {
                    match column.get_f64(r as usize) {
                        Some(x) => *v = x,
                        None => *is_null = true,
                    }
                }
                let mut codes = vec![0u32; row_ids.len()];
                histogram.bin_of_batch(&values, &mut codes);
                for (code, is_null) in codes.iter_mut().zip(&null) {
                    if *is_null {
                        *code = NULL_CODE;
                    }
                }
                codes
            }
        }
    }

    /// Finds the code whose label equals `label`, if any.
    pub fn code_of_label(&self, label: &str) -> Option<u32> {
        let labels = match self {
            AttributeCodec::Categorical { labels } => labels,
            AttributeCodec::Binned { labels, .. } => labels,
        };
        labels.iter().position(|l| l == label).map(|i| i as u32)
    }
}

/// One attribute's codes for every row of a view, plus its codec.
#[derive(Debug, Clone)]
pub struct CodedColumn {
    /// The attribute's position in the table schema.
    pub attr_index: usize,
    /// The codec used.
    pub codec: AttributeCodec,
    /// Codes parallel to the view's `row_ids()`; `NULL_CODE` marks NULL.
    pub codes: Vec<u32>,
}

impl CodedColumn {
    /// Frequency of each code among the given positions (indices into the
    /// view, not row ids). NULLs are skipped.
    pub fn frequencies(&self, positions: &[usize]) -> Vec<f64> {
        let mut freq = vec![0.0; self.codec.cardinality()];
        for &p in positions {
            let code = self.codes[p];
            if code != NULL_CODE {
                freq[code as usize] += 1.0;
            }
        }
        freq
    }
}

/// Discretized view: a set of [`CodedColumn`]s over a common result set.
#[derive(Debug, Clone)]
pub struct CodedMatrix {
    /// One coded column per requested attribute, in request order.
    pub columns: Vec<CodedColumn>,
    /// Number of rows (same for every column).
    pub rows: usize,
}

impl CodedMatrix {
    /// Encodes the given attributes of `view`.
    ///
    /// Attributes whose codec cannot be built (all-NULL numeric columns) are
    /// skipped — the CAD View simply cannot use them.
    pub fn encode(
        view: &View<'_>,
        attr_indices: &[usize],
        bins: usize,
        strategy: BinningStrategy,
    ) -> CodedMatrix {
        Self::encode_ctx(view, attr_indices, bins, strategy, 1, None)
    }

    /// [`CodedMatrix::encode`] with explicit parallelism and memoization:
    /// attributes are encoded across `threads` workers, and codecs
    /// (histograms + labels) are looked up in `cache` when present.
    ///
    /// Output is identical to [`CodedMatrix::encode`] for any thread count:
    /// encoding is independent per attribute and column order follows
    /// `attr_indices` regardless of completion order.
    pub fn encode_ctx(
        view: &View<'_>,
        attr_indices: &[usize],
        bins: usize,
        strategy: BinningStrategy,
        threads: usize,
        cache: Option<&crate::cache::StatsCache>,
    ) -> CodedMatrix {
        let view_fp = cache.map(|_| view.fingerprint());
        let encode_one = |col: usize| -> Option<CodedColumn> {
            let codec: AttributeCodec = match (cache, view_fp) {
                (Some(cache), Some(fp)) => {
                    let key = crate::cache::CodecKey {
                        view_fp: fp,
                        attr: col,
                        bins,
                        strategy,
                    };
                    let shared = cache
                        .codec_with(key, || AttributeCodec::build(view, col, bins, strategy))
                        .ok()?;
                    (*shared).clone()
                }
                _ => AttributeCodec::build(view, col, bins, strategy).ok()?,
            };
            let column = view.table().column(col);
            let codes = codec.encode_rows(column, view.row_ids());
            Some(CodedColumn {
                attr_index: col,
                codec,
                codes,
            })
        };
        let columns = dbex_par::par_map(threads, attr_indices, |_, &col| encode_one(col))
            .into_iter()
            .flatten()
            .collect();
        CodedMatrix {
            columns,
            rows: view.len(),
        }
    }

    /// The coded column for schema attribute `attr_index`, if present.
    pub fn column_for_attr(&self, attr_index: usize) -> Option<&CodedColumn> {
        self.columns.iter().find(|c| c.attr_index == attr_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbex_table::{DataType, Field, TableBuilder, Value};

    fn table() -> dbex_table::Table {
        let mut b = TableBuilder::new(vec![
            Field::new("Make", DataType::Categorical),
            Field::new("Price", DataType::Int),
        ])
        .unwrap();
        for (m, p) in [("Ford", 10), ("Jeep", 20), ("Ford", 30), ("Jeep", 40)] {
            b.push_row(vec![m.into(), p.into()]).unwrap();
        }
        b.push_row(vec![Value::Null, Value::Null]).unwrap();
        b.finish()
    }

    #[test]
    fn categorical_codec_passthrough() {
        let t = table();
        let v = t.full_view();
        let codec = AttributeCodec::build(&v, 0, 4, BinningStrategy::EquiWidth).unwrap();
        assert_eq!(codec.cardinality(), 2);
        assert_eq!(codec.label(0), "Ford");
        assert_eq!(codec.code_of_label("Jeep"), Some(1));
        assert_eq!(codec.encode(t.column(0), 0), Some(0));
        assert_eq!(codec.encode(t.column(0), 4), None);
    }

    #[test]
    fn numeric_codec_bins() {
        let t = table();
        let v = t.full_view();
        let codec = AttributeCodec::build(&v, 1, 2, BinningStrategy::EquiWidth).unwrap();
        assert_eq!(codec.cardinality(), 2);
        assert_eq!(codec.encode(t.column(1), 0), Some(0)); // 10 → low bin
        assert_eq!(codec.encode(t.column(1), 3), Some(1)); // 40 → high bin
        assert_eq!(codec.encode(t.column(1), 4), None); // NULL
    }

    #[test]
    fn matrix_encodes_and_counts() {
        let t = table();
        let v = t.full_view();
        let m = CodedMatrix::encode(&v, &[0, 1], 2, BinningStrategy::EquiWidth);
        assert_eq!(m.columns.len(), 2);
        assert_eq!(m.rows, 5);
        let make = m.column_for_attr(0).unwrap();
        // Rows 0..4: Ford, Jeep, Ford, Jeep, NULL.
        let freq = make.frequencies(&[0, 1, 2, 3, 4]);
        assert_eq!(freq, vec![2.0, 2.0]);
        let freq_subset = make.frequencies(&[0, 4]);
        assert_eq!(freq_subset, vec![1.0, 0.0]);
    }

    #[test]
    fn encode_rows_matches_per_row_encode() {
        let t = table();
        let v = t.full_view();
        for (col, bins) in [(0usize, 4usize), (1, 2)] {
            let codec = AttributeCodec::build(&v, col, bins, BinningStrategy::EquiDepth).unwrap();
            let column = t.column(col);
            let batch = codec.encode_rows(column, v.row_ids());
            let per_row: Vec<u32> = v
                .row_ids()
                .iter()
                .map(|&r| codec.encode(column, r as usize).unwrap_or(NULL_CODE))
                .collect();
            assert_eq!(batch, per_row, "col {col}");
        }
    }

    #[test]
    fn all_null_numeric_column_skipped() {
        let mut b = TableBuilder::new(vec![Field::new("X", DataType::Int)]).unwrap();
        b.push_row(vec![Value::Null]).unwrap();
        let t = b.finish();
        let v = t.full_view();
        let m = CodedMatrix::encode(&v, &[0], 2, BinningStrategy::EquiWidth);
        assert!(m.columns.is_empty());
    }
}
