//! Entropy-based dependence measures over contingency tables.
//!
//! The paper (Section 7) frames Compare Attribute selection as "part of the
//! broader feature selection problem [12, 22, 18]"; chi-square is the
//! selector it ships, but information-theoretic selectors are the standard
//! alternatives (Weka's `InfoGainAttributeEval` /
//! `SymmetricalUncertAttributeEval`). This module provides them, and the
//! benchmark suite compares all three.

use crate::chi2::ContingencyTable;

/// Shannon entropy (nats) of a count vector.
pub fn entropy(counts: &[f64]) -> f64 {
    let total: f64 = counts.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    -counts
        .iter()
        .filter(|&&c| c > 0.0)
        .map(|&c| {
            let p = c / total;
            p * p.ln()
        })
        .sum::<f64>()
}

/// Joint entropy `H(X, Y)` of a contingency table.
pub fn joint_entropy(table: &ContingencyTable) -> f64 {
    let cells: Vec<f64> = (0..table.rows())
        .flat_map(|r| (0..table.cols()).map(move |c| (r, c)))
        .map(|(r, c)| table.get(r, c))
        .collect();
    entropy(&cells)
}

/// Mutual information `I(X; Y) = H(X) + H(Y) − H(X, Y)` (nats, ≥ 0).
pub fn mutual_information(table: &ContingencyTable) -> f64 {
    let hx = entropy(&table.row_totals());
    let hy = entropy(&table.col_totals());
    (hx + hy - joint_entropy(table)).max(0.0)
}

/// Information gain of the column variable about the row variable —
/// identical to mutual information, named as in the feature-selection
/// literature (`IG(class; attr) = H(class) − H(class | attr)`).
pub fn information_gain(table: &ContingencyTable) -> f64 {
    mutual_information(table)
}

/// Symmetrical uncertainty: `2·I(X;Y) / (H(X) + H(Y))`, in `[0, 1]`.
///
/// Normalizes information gain by both entropies, removing the bias toward
/// high-cardinality attributes that plain information gain (and chi-square)
/// exhibit. Returns 0 when either variable is constant.
pub fn symmetrical_uncertainty(table: &ContingencyTable) -> f64 {
    let hx = entropy(&table.row_totals());
    let hy = entropy(&table.col_totals());
    if hx + hy <= 0.0 {
        return 0.0;
    }
    (2.0 * mutual_information(table) / (hx + hy)).clamp(0.0, 1.0)
}

/// Conditional entropy `H(row | col) = H(X, Y) − H(col)`.
///
/// Near-zero means the column variable (almost) determines the row
/// variable — the "soft functional dependency" signal of CORDS (the
/// paper's reference \[16\]).
pub fn conditional_entropy(table: &ContingencyTable) -> f64 {
    (joint_entropy(table) - entropy(&table.col_totals())).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(cells: &[&[u32]]) -> ContingencyTable {
        let mut t = ContingencyTable::new(cells.len(), cells[0].len());
        for (r, row) in cells.iter().enumerate() {
            for (c, &n) in row.iter().enumerate() {
                for _ in 0..n {
                    t.add(r, c);
                }
            }
        }
        t
    }

    #[test]
    fn entropy_known_values() {
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[10.0]), 0.0);
        assert!((entropy(&[1.0, 1.0]) - std::f64::consts::LN_2).abs() < 1e-12);
        assert!((entropy(&[1.0, 1.0, 1.0, 1.0]) - 4f64.ln()).abs() < 1e-12);
        // Skewed distribution has lower entropy than uniform.
        assert!(entropy(&[9.0, 1.0]) < entropy(&[5.0, 5.0]));
    }

    #[test]
    fn independent_variables_zero_mi() {
        let t = table(&[&[10, 30], &[10, 30]]);
        assert!(mutual_information(&t).abs() < 1e-12);
        assert!(symmetrical_uncertainty(&t).abs() < 1e-12);
    }

    #[test]
    fn determined_variables_max_su() {
        // Diagonal: Y determines X and vice versa.
        let t = table(&[&[25, 0], &[0, 25]]);
        assert!((symmetrical_uncertainty(&t) - 1.0).abs() < 1e-12);
        assert!((mutual_information(&t) - std::f64::consts::LN_2).abs() < 1e-12);
        assert!(conditional_entropy(&t).abs() < 1e-12);
    }

    #[test]
    fn partial_dependence_in_between() {
        let t = table(&[&[20, 5], &[5, 20]]);
        let su = symmetrical_uncertainty(&t);
        assert!(su > 0.05 && su < 0.95, "su = {su}");
        let ig = information_gain(&t);
        assert!(ig > 0.0 && ig < std::f64::consts::LN_2);
    }

    #[test]
    fn functional_dependency_detected_by_conditional_entropy() {
        // col 0 → row 0; col 1 → row 1; col 2 → row 1 : column determines
        // row (soft FD col→row), but not vice versa.
        let t = table(&[&[30, 0, 0], &[0, 20, 10]]);
        assert!(conditional_entropy(&t) < 1e-12);
        // Rows do NOT determine columns: H(col|row) > 0. Transpose check:
        let mut tr = ContingencyTable::new(3, 2);
        for r in 0..2 {
            for c in 0..3 {
                for _ in 0..t.get(r, c) as usize {
                    tr.add(c, r);
                }
            }
        }
        assert!(conditional_entropy(&tr) > 0.1);
    }

    #[test]
    fn constant_variable_zero_su() {
        let t = table(&[&[10, 20]]); // single row value
        assert_eq!(symmetrical_uncertainty(&t), 0.0);
    }
}
