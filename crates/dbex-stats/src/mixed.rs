//! Linear mixed-effects model with a single random intercept.
//!
//! The paper's user study (Section 6.2) is analyzed with "linear mixed
//! model statistical analysis ... Display type as fixed effect and User ID
//! as random effect", with p-values from a likelihood-ratio test comparing
//! the model with and without the fixed effect (via ANOVA of the two ML
//! fits). This module reproduces that analysis:
//!
//! `y_ij = x_ij'β + u_i + ε_ij`, `u_i ~ N(0, σ_u²)`, `ε_ij ~ N(0, σ_e²)`
//!
//! The model is fit by maximum likelihood. For a single grouping factor the
//! covariance of group *i*'s observations is `σ_e²(I + λ·11')` with
//! `λ = σ_u²/σ_e²`; its inverse and determinant have closed forms, so the
//! profile log-likelihood over `λ` is one-dimensional and is maximized by a
//! grid + golden-section search.

// Index loops below intentionally couple multiple arrays / triangular
// ranges; iterator adapters would obscure the math.
#![allow(clippy::needless_range_loop)]

/// A fitted linear mixed model.
#[derive(Debug, Clone)]
pub struct LmmFit {
    /// Fixed-effect coefficients (first entry is the intercept).
    pub beta: Vec<f64>,
    /// Standard errors of the fixed effects.
    pub se: Vec<f64>,
    /// Random-intercept variance σ_u².
    pub sigma_u2: f64,
    /// Residual variance σ_e².
    pub sigma_e2: f64,
    /// Maximized log-likelihood (ML, not REML — required for LRTs on fixed
    /// effects).
    pub log_likelihood: f64,
    /// Number of observations.
    pub n: usize,
    /// Number of fixed-effect parameters (including the intercept).
    pub p: usize,
}

/// Result of a likelihood-ratio test between two nested ML fits.
#[derive(Debug, Clone, Copy)]
pub struct LrtResult {
    /// The LR statistic `2(ℓ_full − ℓ_null)` (clamped at 0).
    pub chi2: f64,
    /// Degrees of freedom: difference in fixed-effect parameter counts.
    pub dof: f64,
    /// Upper-tail p-value.
    pub p_value: f64,
}

/// Fits the mixed model by maximum likelihood.
///
/// * `y` — responses.
/// * `x` — fixed-effect design columns, *excluding* the intercept (which is
///   added automatically). May be empty for the null (intercept-only) model.
/// * `groups` — group index per observation (e.g. user id), `0..G`.
///
/// Panics if inputs are empty or have mismatched lengths.
pub fn fit_lmm(y: &[f64], x: &[Vec<f64>], groups: &[usize]) -> LmmFit {
    let n = y.len();
    assert!(n > 0, "empty response");
    assert_eq!(groups.len(), n, "groups length mismatch");
    for col in x {
        assert_eq!(col.len(), n, "design column length mismatch");
    }
    let p = x.len() + 1;
    let n_groups = groups.iter().copied().max().unwrap_or(0) + 1;

    // Pre-split observation indices by group.
    let mut by_group: Vec<Vec<usize>> = vec![Vec::new(); n_groups];
    for (i, &g) in groups.iter().enumerate() {
        by_group[g].push(i);
    }

    // Profile log-likelihood at a given variance ratio λ.
    let profile = |lambda: f64| -> (f64, Vec<f64>, f64, Vec<Vec<f64>>) {
        // Weighted normal equations: A β = b with A = Σ Xᵢ'WᵢXᵢ.
        let mut a = vec![vec![0.0; p]; p];
        let mut b = vec![0.0; p];
        // Accumulate also for σ² once β is known; do two passes.
        let design = |i: usize, j: usize| -> f64 {
            if j == 0 {
                1.0
            } else {
                x[j - 1][i]
            }
        };
        for rows in &by_group {
            if rows.is_empty() {
                continue;
            }
            let ni = rows.len() as f64;
            let shrink = lambda / (1.0 + lambda * ni);
            // Group sums of design columns and y.
            let mut sx = vec![0.0; p];
            let mut sy = 0.0;
            for &i in rows {
                for (j, sxj) in sx.iter_mut().enumerate() {
                    *sxj += design(i, j);
                }
                sy += y[i];
            }
            for &i in rows {
                for j in 0..p {
                    let xij = design(i, j);
                    for k in j..p {
                        a[j][k] += xij * design(i, k);
                    }
                    b[j] += xij * y[i];
                }
            }
            // Subtract the shrinkage rank-1 terms.
            for j in 0..p {
                for k in j..p {
                    a[j][k] -= shrink * sx[j] * sx[k];
                }
                b[j] -= shrink * sx[j] * sy;
            }
        }
        for j in 0..p {
            for k in 0..j {
                a[j][k] = a[k][j];
            }
        }
        let beta = solve(&a, &b);

        // Weighted RSS and log|V|/σ² part.
        let mut rss = 0.0;
        let mut log_det = 0.0;
        for rows in &by_group {
            if rows.is_empty() {
                continue;
            }
            let ni = rows.len() as f64;
            let shrink = lambda / (1.0 + lambda * ni);
            log_det += (1.0 + lambda * ni).ln();
            let mut sr = 0.0;
            let mut ss = 0.0;
            for &i in rows {
                let mut fitted = beta[0];
                for j in 1..p {
                    fitted += beta[j] * x[j - 1][i];
                }
                let r = y[i] - fitted;
                sr += r;
                ss += r * r;
            }
            rss += ss - shrink * sr * sr;
        }
        let sigma_e2 = (rss / n as f64).max(1e-12);
        let ll = -0.5
            * (n as f64 * (2.0 * std::f64::consts::PI * sigma_e2).ln() + log_det + n as f64);
        (ll, beta, sigma_e2, a)
    };

    // 1-D search over λ: log-spaced grid, then golden-section refinement.
    let mut best_lambda = 0.0;
    let mut best_ll = profile(0.0).0;
    let grid: Vec<f64> = (0..=60)
        .map(|i| 10f64.powf(-4.0 + 8.0 * i as f64 / 60.0))
        .collect();
    for &lam in &grid {
        let ll = profile(lam).0;
        if ll > best_ll {
            best_ll = ll;
            best_lambda = lam;
        }
    }
    // Golden-section around the best grid point (in log space).
    if best_lambda > 0.0 {
        let (mut lo, mut hi) = (best_lambda / 10.0, best_lambda * 10.0);
        let phi = (5f64.sqrt() - 1.0) / 2.0;
        for _ in 0..60 {
            let m1 = hi - phi * (hi - lo);
            let m2 = lo + phi * (hi - lo);
            if profile(m1).0 >= profile(m2).0 {
                hi = m2;
            } else {
                lo = m1;
            }
        }
        let lam = (lo + hi) / 2.0;
        if profile(lam).0 > best_ll {
            best_lambda = lam;
        }
    }

    let (ll, beta, sigma_e2, a) = profile(best_lambda);
    // Var(β) = σ_e² (X'WX)^{-1}.
    let ainv = invert(&a);
    let se = (0..p).map(|j| (sigma_e2 * ainv[j][j]).sqrt()).collect();
    LmmFit {
        beta,
        se,
        sigma_u2: best_lambda * sigma_e2,
        sigma_e2,
        log_likelihood: ll,
        n,
        p,
    }
}

/// Likelihood-ratio test of `full` against the nested `null` model.
///
/// Both fits must be ML fits on the same data; `full` must strictly contain
/// `null`'s fixed effects.
pub fn likelihood_ratio_test(full: &LmmFit, null: &LmmFit) -> LrtResult {
    assert!(full.p > null.p, "models are not properly nested");
    assert_eq!(full.n, null.n, "models fit on different data");
    let chi2 = (2.0 * (full.log_likelihood - null.log_likelihood)).max(0.0);
    let dof = (full.p - null.p) as f64;
    LrtResult {
        chi2,
        dof,
        p_value: crate::special::chi2_sf(chi2, dof),
    }
}

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
/// `A` must be square and non-singular (design matrices here are tiny).
fn solve(a: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
    let n = b.len();
    let mut m: Vec<Vec<f64>> = a
        .iter()
        .zip(b)
        .map(|(row, &bv)| {
            let mut r = row.clone();
            r.push(bv);
            r
        })
        .collect();
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&i, &j| m[i][col].abs().total_cmp(&m[j][col].abs()))
            .unwrap_or(col);
        m.swap(col, pivot);
        let pv = m[col][col];
        assert!(pv.abs() > 1e-12, "singular design matrix");
        for row in 0..n {
            if row == col {
                continue;
            }
            let factor = m[row][col] / pv;
            for k in col..=n {
                m[row][k] -= factor * m[col][k];
            }
        }
    }
    (0..n).map(|i| m[i][n] / m[i][i]).collect()
}

/// Inverts a small symmetric positive-definite matrix by solving against
/// the identity columns.
fn invert(a: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = a.len();
    let mut inv = vec![vec![0.0; n]; n];
    for j in 0..n {
        let mut e = vec![0.0; n];
        e[j] = 1.0;
        let col = solve(a, &e);
        for i in 0..n {
            inv[i][j] = col[i];
        }
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-noise (no rand dependency in unit tests).
    fn noise(i: usize) -> f64 {
        ((i as f64 * 12.9898).sin() * 43758.5453).fract() - 0.5
    }

    fn simulate(effect: f64, user_sd: f64) -> (Vec<f64>, Vec<Vec<f64>>, Vec<usize>) {
        // 8 users × 2 conditions × 3 replicates.
        let user_offsets: Vec<f64> = (0..8).map(|u| user_sd * noise(u * 97 + 13) * 2.0).collect();
        let mut y = Vec::new();
        let mut x = Vec::new();
        let mut g = Vec::new();
        let mut idx = 0;
        for (u, &off) in user_offsets.iter().enumerate() {
            for cond in 0..2 {
                for _ in 0..3 {
                    idx += 1;
                    y.push(10.0 + effect * cond as f64 + off + 0.3 * noise(idx * 7 + 1));
                    x.push(cond as f64);
                    g.push(u);
                }
            }
        }
        (y, vec![x], g)
    }

    #[test]
    fn recovers_fixed_effect() {
        let (y, x, g) = simulate(-5.0, 2.0);
        let fit = fit_lmm(&y, &x, &g);
        assert!(
            (fit.beta[1] + 5.0).abs() < 0.3,
            "effect estimate {} should be ≈ -5",
            fit.beta[1]
        );
        assert!(fit.sigma_u2 > 0.5, "σ_u²={} should be sizable", fit.sigma_u2);
        assert!(fit.sigma_e2 < 1.0);
    }

    #[test]
    fn lrt_detects_real_effect() {
        let (y, x, g) = simulate(-5.0, 2.0);
        let full = fit_lmm(&y, &x, &g);
        let null = fit_lmm(&y, &[], &g);
        let lrt = likelihood_ratio_test(&full, &null);
        assert!(lrt.chi2 > 10.0, "chi2={}", lrt.chi2);
        assert!(lrt.p_value < 0.01);
        assert_eq!(lrt.dof, 1.0);
    }

    #[test]
    fn lrt_accepts_null_effect() {
        let (y, x, g) = simulate(0.0, 2.0);
        let full = fit_lmm(&y, &x, &g);
        let null = fit_lmm(&y, &[], &g);
        let lrt = likelihood_ratio_test(&full, &null);
        assert!(lrt.p_value > 0.05, "p={}", lrt.p_value);
    }

    #[test]
    fn zero_group_variance_degenerates_to_ols() {
        let (y, x, g) = simulate(-2.0, 0.0);
        let fit = fit_lmm(&y, &x, &g);
        assert!(fit.sigma_u2 < 0.1, "σ_u²={}", fit.sigma_u2);
        assert!((fit.beta[1] + 2.0).abs() < 0.3);
    }

    #[test]
    fn full_likelihood_at_least_null() {
        let (y, x, g) = simulate(-1.0, 1.0);
        let full = fit_lmm(&y, &x, &g);
        let null = fit_lmm(&y, &[], &g);
        assert!(full.log_likelihood >= null.log_likelihood - 1e-9);
    }

    #[test]
    fn solve_known_system() {
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let b = vec![5.0, 10.0];
        let x = solve(&a, &b);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn standard_errors_positive() {
        let (y, x, g) = simulate(-5.0, 2.0);
        let fit = fit_lmm(&y, &x, &g);
        assert!(fit.se.iter().all(|&s| s > 0.0 && s.is_finite()));
    }
}
