//! Pairwise attribute-interaction analysis.
//!
//! The paper's related work (Section 7) positions the CAD View as "a
//! summary of important interactions between attributes" and points at
//! CORDS \[16\] (automatic discovery of correlations and soft functional
//! dependencies) and Bayesian networks as richer interaction models. This
//! module provides that global view: a matrix of pairwise association
//! strengths (Cramér's V) plus soft-FD detection via normalized conditional
//! entropy — useful both as an exploration aid ("which attributes move
//! together?") and as a sanity check on the generators' planted structure.

use crate::chi2::ContingencyTable;
use crate::discretize::CodedMatrix;
use crate::entropy::{conditional_entropy, entropy};
use crate::histogram::BinningStrategy;
use dbex_table::dict::NULL_CODE;
use dbex_table::View;

/// Pairwise interaction measures between two attributes.
#[derive(Debug, Clone, Copy)]
pub struct PairInteraction {
    /// Schema index of the first attribute.
    pub a: usize,
    /// Schema index of the second attribute.
    pub b: usize,
    /// Cramér's V in `[0, 1]` (0 = independent, 1 = perfectly associated).
    pub cramers_v: f64,
    /// `1 − H(a|b)/H(a)`: how well `b` determines `a` (1 = functional).
    pub determines_a: f64,
    /// `1 − H(b|a)/H(b)`: how well `a` determines `b`.
    pub determines_b: f64,
}

/// The full pairwise interaction matrix over a set of attributes.
#[derive(Debug, Clone)]
pub struct InteractionMatrix {
    /// Attribute schema indices, in analysis order.
    pub attrs: Vec<usize>,
    /// Attribute display names.
    pub names: Vec<String>,
    /// Upper-triangle pair measures (`a < b` by position in `attrs`).
    pub pairs: Vec<PairInteraction>,
}

impl InteractionMatrix {
    /// Computes the matrix over the given attributes of `view` (numeric
    /// attributes discretized into `bins` equi-depth buckets).
    pub fn compute(view: &View<'_>, attrs: &[usize], bins: usize) -> InteractionMatrix {
        let coded = CodedMatrix::encode(view, attrs, bins, BinningStrategy::EquiDepth);
        let names = coded
            .columns
            .iter()
            .map(|c| view.table().schema().field(c.attr_index).name.clone())
            .collect();
        let live: Vec<usize> = coded.columns.iter().map(|c| c.attr_index).collect();
        let mut pairs = Vec::new();
        for i in 0..coded.columns.len() {
            for j in (i + 1)..coded.columns.len() {
                let ci = &coded.columns[i];
                let cj = &coded.columns[j];
                let mut table =
                    ContingencyTable::new(ci.codec.cardinality(), cj.codec.cardinality());
                table.fill_pairs(&ci.codes, &cj.codes, NULL_CODE);
                let cramers_v = table.cramers_v().unwrap_or(0.0);
                let ha = entropy(&table.row_totals());
                let hb = entropy(&table.col_totals());
                let determines_a = if ha > 0.0 {
                    (1.0 - conditional_entropy(&table) / ha).clamp(0.0, 1.0)
                } else {
                    1.0
                };
                // H(b|a) = H(a,b) − H(a) = H(a|b) + H(b) − H(a).
                let hba = (conditional_entropy(&table) + hb - ha).max(0.0);
                let determines_b = if hb > 0.0 {
                    (1.0 - hba / hb).clamp(0.0, 1.0)
                } else {
                    1.0
                };
                pairs.push(PairInteraction {
                    a: ci.attr_index,
                    b: cj.attr_index,
                    cramers_v,
                    determines_a,
                    determines_b,
                });
            }
        }
        InteractionMatrix {
            attrs: live,
            names,
            pairs,
        }
    }

    /// The measure for an attribute pair (order-insensitive).
    pub fn pair(&self, a: usize, b: usize) -> Option<&PairInteraction> {
        self.pairs
            .iter()
            .find(|p| (p.a == a && p.b == b) || (p.a == b && p.b == a))
    }

    /// Pairs whose one-directional determination exceeds `threshold` —
    /// soft functional dependencies, strongest first. Returns
    /// `(determiner, determined, strength)` by schema index.
    pub fn soft_fds(&self, threshold: f64) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::new();
        for p in &self.pairs {
            if p.determines_a >= threshold {
                out.push((p.b, p.a, p.determines_a));
            }
            if p.determines_b >= threshold {
                out.push((p.a, p.b, p.determines_b));
            }
        }
        out.sort_by(|x, y| y.2.total_cmp(&x.2));
        out
    }

    /// Pairs ranked by Cramér's V, strongest association first.
    pub fn strongest_pairs(&self) -> Vec<&PairInteraction> {
        let mut out: Vec<&PairInteraction> = self.pairs.iter().collect();
        out.sort_by(|x, y| y.cramers_v.total_cmp(&x.cramers_v));
        out
    }

    /// Renders the Cramér's V matrix as an aligned text table.
    pub fn render(&self) -> String {
        let n = self.attrs.len();
        let width = self
            .names
            .iter()
            .map(|s| s.len())
            .max()
            .unwrap_or(4)
            .max(5);
        let mut out = String::new();
        out.push_str(&format!("{:>width$} ", ""));
        for name in &self.names {
            out.push_str(&format!(" {:>7}", truncate(name, 7)));
        }
        out.push('\n');
        for i in 0..n {
            out.push_str(&format!("{:>width$} ", truncate(&self.names[i], width)));
            for j in 0..n {
                if i == j {
                    out.push_str(&format!(" {:>7}", "-"));
                } else {
                    let v = self
                        .pair(self.attrs[i], self.attrs[j])
                        .map(|p| p.cramers_v)
                        .unwrap_or(0.0);
                    out.push_str(&format!(" {v:>7.3}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbex_table::{DataType, Field, TableBuilder};

    /// A = B always (FD both ways); C independent; D determined by A but
    /// not vice versa (A has 2 values, D collapses them... inverse).
    fn table() -> dbex_table::Table {
        let mut b = TableBuilder::new(vec![
            Field::new("A", DataType::Categorical),
            Field::new("B", DataType::Categorical),
            Field::new("C", DataType::Categorical),
            Field::new("D", DataType::Categorical),
        ])
        .unwrap();
        for i in 0..120 {
            let a = ["x", "y", "z"][i % 3];
            let b_val = ["p", "q", "r"][i % 3]; // bijective with A
            let c = ["u", "v"][(i / 3) % 2]; // independent of A
            let d = if i % 3 == 0 { "d0" } else { "d1" }; // function of A
            b.push_row(vec![a.into(), b_val.into(), c.into(), d.into()])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn bijective_pair_maximal() {
        let t = table();
        let m = InteractionMatrix::compute(&t.full_view(), &[0, 1, 2, 3], 4);
        let ab = m.pair(0, 1).unwrap();
        assert!((ab.cramers_v - 1.0).abs() < 1e-9);
        assert!((ab.determines_a - 1.0).abs() < 1e-9);
        assert!((ab.determines_b - 1.0).abs() < 1e-9);
    }

    #[test]
    fn independent_pair_near_zero() {
        let t = table();
        let m = InteractionMatrix::compute(&t.full_view(), &[0, 1, 2, 3], 4);
        let ac = m.pair(0, 2).unwrap();
        assert!(ac.cramers_v < 0.05, "V = {}", ac.cramers_v);
    }

    #[test]
    fn one_directional_fd() {
        let t = table();
        let m = InteractionMatrix::compute(&t.full_view(), &[0, 1, 2, 3], 4);
        let ad = m.pair(0, 3).unwrap();
        // A determines D fully; D does not determine A.
        let (det_d_by_a, det_a_by_d) = if ad.a == 0 {
            (ad.determines_b, ad.determines_a)
        } else {
            (ad.determines_a, ad.determines_b)
        };
        assert!((det_d_by_a - 1.0).abs() < 1e-9);
        assert!(det_a_by_d < 0.9, "D should not determine A: {det_a_by_d}");
    }

    #[test]
    fn soft_fds_ranked() {
        let t = table();
        let m = InteractionMatrix::compute(&t.full_view(), &[0, 1, 2, 3], 4);
        let fds = m.soft_fds(0.99);
        // A↔B (two directions) plus A→D and B→D.
        assert!(fds.len() >= 4, "{fds:?}");
        assert!(fds.iter().any(|&(x, y, _)| x == 0 && y == 3));
        assert!(!fds.iter().any(|&(x, y, _)| x == 3 && y == 0));
    }

    #[test]
    fn render_is_square() {
        let t = table();
        let m = InteractionMatrix::compute(&t.full_view(), &[0, 1, 2, 3], 4);
        let text = m.render();
        assert_eq!(text.lines().count(), 5); // header + 4 rows
        assert!(text.contains('-'));
    }

    #[test]
    fn strongest_pairs_sorted() {
        let t = table();
        let m = InteractionMatrix::compute(&t.full_view(), &[0, 1, 2, 3], 4);
        let ranked = m.strongest_pairs();
        for w in ranked.windows(2) {
            assert!(w[0].cramers_v >= w[1].cramers_v);
        }
        assert_eq!((ranked[0].a, ranked[0].b), (0, 1));
    }
}
