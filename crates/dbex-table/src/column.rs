//! Typed column storage.

use crate::dict::{Dictionary, NULL_CODE};
use crate::error::{Error, Result};
use crate::value::{DataType, Value};

/// A single column of values, stored in a typed dense vector.
///
/// * `Int`/`Float` use `Option`-free storage with a parallel validity mask
///   kept implicit via sentinel-free `Vec<Option<...>>`? No — we store
///   `Vec<i64>` / `Vec<f64>` plus a null bitmap for compactness.
/// * `Categorical` stores dictionary codes (`u32`), with
///   [`NULL_CODE`] marking NULLs.
#[derive(Debug, Clone)]
pub enum Column {
    /// Integer column: values plus null mask (`true` = null).
    Int { data: Vec<i64>, nulls: Vec<bool> },
    /// Float column: values plus null mask.
    Float { data: Vec<f64>, nulls: Vec<bool> },
    /// Categorical column: dictionary codes; `NULL_CODE` marks NULL.
    Categorical { codes: Vec<u32>, dict: Dictionary },
}

impl Column {
    /// Creates an empty column of the given type.
    pub fn empty(data_type: DataType) -> Self {
        match data_type {
            DataType::Int => Column::Int {
                data: Vec::new(),
                nulls: Vec::new(),
            },
            DataType::Float => Column::Float {
                data: Vec::new(),
                nulls: Vec::new(),
            },
            DataType::Categorical => Column::Categorical {
                codes: Vec::new(),
                dict: Dictionary::new(),
            },
        }
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int { .. } => DataType::Int,
            Column::Float { .. } => DataType::Float,
            Column::Categorical { .. } => DataType::Categorical,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int { data, .. } => data.len(),
            Column::Float { data, .. } => data.len(),
            Column::Categorical { codes, .. } => codes.len(),
        }
    }

    /// True iff the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a value, coercing `Int` to `Float` where needed.
    ///
    /// `attribute` is only used for error messages.
    pub fn push(&mut self, value: Value, attribute: &str) -> Result<()> {
        match (self, value) {
            (Column::Int { data, nulls }, Value::Int(v)) => {
                data.push(v);
                nulls.push(false);
            }
            (Column::Int { data, nulls }, Value::Null) => {
                data.push(0);
                nulls.push(true);
            }
            (Column::Float { data, nulls }, Value::Float(v)) => {
                data.push(v);
                nulls.push(false);
            }
            (Column::Float { data, nulls }, Value::Int(v)) => {
                data.push(v as f64);
                nulls.push(false);
            }
            (Column::Float { data, nulls }, Value::Null) => {
                data.push(0.0);
                nulls.push(true);
            }
            (Column::Categorical { codes, dict }, Value::Str(s)) => {
                codes.push(dict.intern(&s));
            }
            (Column::Categorical { codes, .. }, Value::Null) => {
                codes.push(NULL_CODE);
            }
            (col, value) => {
                return Err(Error::TypeMismatch {
                    attribute: attribute.to_owned(),
                    expected: col.data_type().to_string(),
                    found: format!("{value:?}"),
                })
            }
        }
        Ok(())
    }

    /// Value at row `row` as a dynamic [`Value`].
    pub fn get(&self, row: usize) -> Value {
        match self {
            Column::Int { data, nulls } => {
                if nulls[row] {
                    Value::Null
                } else {
                    Value::Int(data[row])
                }
            }
            Column::Float { data, nulls } => {
                if nulls[row] {
                    Value::Null
                } else {
                    Value::Float(data[row])
                }
            }
            Column::Categorical { codes, dict } => match dict.resolve(codes[row]) {
                Some(s) => Value::Str(s.to_owned()),
                None => Value::Null,
            },
        }
    }

    /// True iff the value at `row` is NULL.
    pub fn is_null(&self, row: usize) -> bool {
        match self {
            Column::Int { nulls, .. } | Column::Float { nulls, .. } => nulls[row],
            Column::Categorical { codes, .. } => codes[row] == NULL_CODE,
        }
    }

    /// Numeric value at `row` (ints widened), `None` if NULL or categorical.
    pub fn get_f64(&self, row: usize) -> Option<f64> {
        match self {
            Column::Int { data, nulls } => (!nulls[row]).then(|| data[row] as f64),
            Column::Float { data, nulls } => (!nulls[row]).then(|| data[row]),
            Column::Categorical { .. } => None,
        }
    }

    /// Dictionary code at `row` for categorical columns.
    ///
    /// Returns `None` for non-categorical columns; NULLs return
    /// `Some(NULL_CODE)`.
    pub fn get_code(&self, row: usize) -> Option<u32> {
        match self {
            Column::Categorical { codes, .. } => Some(codes[row]),
            _ => None,
        }
    }

    /// The dictionary backing a categorical column.
    pub fn dictionary(&self) -> Option<&Dictionary> {
        match self {
            Column::Categorical { dict, .. } => Some(dict),
            _ => None,
        }
    }

    /// Raw code slice of a categorical column.
    pub fn codes(&self) -> Option<&[u32]> {
        match self {
            Column::Categorical { codes, .. } => Some(codes.as_slice()),
            _ => None,
        }
    }

    /// Number of distinct non-NULL values in the column.
    pub fn cardinality(&self) -> usize {
        match self {
            Column::Categorical { codes, dict } => {
                // Distinct codes actually used (dictionary may be shared).
                let mut seen = vec![false; dict.len()];
                let mut count = 0usize;
                for &c in codes {
                    if c != NULL_CODE && !seen[c as usize] {
                        seen[c as usize] = true;
                        count += 1;
                    }
                }
                count
            }
            Column::Int { data, nulls } => {
                let mut vals: Vec<i64> = data
                    .iter()
                    .zip(nulls)
                    .filter(|(_, &n)| !n)
                    .map(|(&v, _)| v)
                    .collect();
                vals.sort_unstable();
                vals.dedup();
                vals.len()
            }
            Column::Float { data, nulls } => {
                let mut vals: Vec<u64> = data
                    .iter()
                    .zip(nulls)
                    .filter(|(_, &n)| !n)
                    .map(|(&v, _)| v.to_bits())
                    .collect();
                vals.sort_unstable();
                vals.dedup();
                vals.len()
            }
        }
    }

    /// Minimum and maximum over non-NULL numeric values.
    pub fn numeric_range(&self) -> Option<(f64, f64)> {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut any = false;
        for row in 0..self.len() {
            if let Some(v) = self.get_f64(row) {
                min = min.min(v);
                max = max.max(v);
                any = true;
            }
        }
        any.then_some((min, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_int() {
        let mut c = Column::empty(DataType::Int);
        c.push(Value::Int(5), "x").unwrap();
        c.push(Value::Null, "x").unwrap();
        assert_eq!(c.get(0), Value::Int(5));
        assert_eq!(c.get(1), Value::Null);
        assert!(c.is_null(1));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn float_column_accepts_ints() {
        let mut c = Column::empty(DataType::Float);
        c.push(Value::Int(2), "x").unwrap();
        assert_eq!(c.get(0), Value::Float(2.0));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut c = Column::empty(DataType::Int);
        let err = c.push(Value::Str("a".into()), "x");
        assert!(matches!(err, Err(Error::TypeMismatch { .. })));
    }

    #[test]
    fn categorical_codes_and_dictionary() {
        let mut c = Column::empty(DataType::Categorical);
        c.push(Value::Str("SUV".into()), "x").unwrap();
        c.push(Value::Str("Sedan".into()), "x").unwrap();
        c.push(Value::Str("SUV".into()), "x").unwrap();
        c.push(Value::Null, "x").unwrap();
        assert_eq!(c.get_code(0), Some(0));
        assert_eq!(c.get_code(2), Some(0));
        assert_eq!(c.get_code(3), Some(NULL_CODE));
        assert_eq!(c.cardinality(), 2);
        assert_eq!(c.get(1), Value::Str("Sedan".into()));
    }

    #[test]
    fn numeric_range_and_cardinality() {
        let mut c = Column::empty(DataType::Int);
        for v in [5, 1, 9, 1] {
            c.push(Value::Int(v), "x").unwrap();
        }
        assert_eq!(c.numeric_range(), Some((1.0, 9.0)));
        assert_eq!(c.cardinality(), 3);
    }
}
