//! Scalar values and data types.

use std::cmp::Ordering;
use std::fmt;

/// The data types supported by the engine.
///
/// The paper's datasets mix categorical attributes (`Make`, `Drivetrain`,
/// mushroom attributes) with numeric ones (`Price`, `Mileage`, `Year`).
/// Numeric attributes are discretized into categorical bins before CAD View
/// construction (Section 2.2.1), but the storage layer keeps them typed so
/// range predicates (`BETWEEN`) evaluate on the raw values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// Dictionary-encoded categorical string.
    Categorical,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Categorical => write!(f, "CATEGORICAL"),
        }
    }
}

/// A dynamically-typed scalar value.
///
/// `Value` is the exchange type at API boundaries (row construction,
/// predicate literals, query results). Inside columns, values are stored in
/// typed, dictionary-encoded vectors — `Value` never appears in bulk storage.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL / missing value.
    Null,
    /// Integer value.
    Int(i64),
    /// Floating-point value.
    Float(f64),
    /// Categorical string value.
    Str(String),
}

impl Value {
    /// The data type this value naturally belongs to, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Categorical),
        }
    }

    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value: ints are widened to `f64`.
    ///
    /// Returns `None` for NULL and categorical values. Used by range
    /// predicates and histogram construction, both of which treat `Int` and
    /// `Float` uniformly.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// String view of the value, if categorical.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Total ordering used for ORDER BY and BETWEEN semantics.
    ///
    /// NULL sorts before everything; numbers compare numerically across
    /// `Int`/`Float`; strings compare lexicographically; numbers sort before
    /// strings. This mirrors common SQL engine behaviour closely enough for
    /// the paper's workloads (no mixed-type columns exist in practice).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Str(_), _) => Ordering::Greater,
            (_, Str(_)) => Ordering::Less,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_of_values() {
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::Float(1.5).data_type(), Some(DataType::Float));
        assert_eq!(
            Value::Str("x".into()).data_type(),
            Some(DataType::Categorical)
        );
        assert_eq!(Value::Null.data_type(), None);
    }

    #[test]
    fn as_f64_widens_ints() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Str("a".into()).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn total_cmp_numbers_cross_type() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(1).total_cmp(&Value::Float(1.5)), Ordering::Less);
        assert_eq!(
            Value::Float(3.0).total_cmp(&Value::Int(2)),
            Ordering::Greater
        );
    }

    #[test]
    fn total_cmp_null_first_strings_last() {
        assert_eq!(Value::Null.total_cmp(&Value::Int(0)), Ordering::Less);
        assert_eq!(
            Value::Str("a".into()).total_cmp(&Value::Int(9)),
            Ordering::Greater
        );
        assert_eq!(
            Value::Str("a".into()).total_cmp(&Value::Str("b".into())),
            Ordering::Less
        );
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Str("SUV".into()).to_string(), "SUV");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
