//! Grouped aggregation over views.
//!
//! Backs the query layer's `GROUP BY` and the "simple summary statistics"
//! the paper contrasts the CAD View against (Section 1: "average price for
//! a hotel room" is of limited value without context — this module computes
//! exactly those statistics so the comparison can be made).

use crate::error::{Error, Result};
use crate::schema::Field;
use crate::table::{Table, TableBuilder};
use crate::value::{DataType, Value};
use crate::view::View;
use std::collections::HashMap;

/// An aggregate function over a numeric attribute (or `*` for COUNT).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Aggregate {
    /// `COUNT(*)`
    Count,
    /// `SUM(attr)`
    Sum(String),
    /// `AVG(attr)`
    Avg(String),
    /// `MIN(attr)`
    Min(String),
    /// `MAX(attr)`
    Max(String),
}

impl Aggregate {
    /// Output column name, e.g. `avg(Price)`.
    pub fn output_name(&self) -> String {
        match self {
            Aggregate::Count => "count(*)".to_owned(),
            Aggregate::Sum(a) => format!("sum({a})"),
            Aggregate::Avg(a) => format!("avg({a})"),
            Aggregate::Min(a) => format!("min({a})"),
            Aggregate::Max(a) => format!("max({a})"),
        }
    }

    fn attribute(&self) -> Option<&str> {
        match self {
            Aggregate::Count => None,
            Aggregate::Sum(a) | Aggregate::Avg(a) | Aggregate::Min(a) | Aggregate::Max(a) => {
                Some(a)
            }
        }
    }
}

/// Running state for one aggregate within one group.
#[derive(Debug, Clone, Copy, Default)]
struct AggState {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    seen: bool,
}

impl AggState {
    fn update(&mut self, v: Option<f64>) {
        self.count += u64::from(v.is_some());
        if let Some(v) = v {
            self.sum += v;
            if !self.seen {
                self.min = v;
                self.max = v;
                self.seen = true;
            } else {
                self.min = self.min.min(v);
                self.max = self.max.max(v);
            }
        }
    }

    fn finish(&self, agg: &Aggregate, group_rows: u64) -> Value {
        match agg {
            Aggregate::Count => Value::Int(group_rows as i64),
            Aggregate::Sum(_) => {
                if self.seen {
                    Value::Float(self.sum)
                } else {
                    Value::Null
                }
            }
            Aggregate::Avg(_) => {
                if self.count > 0 {
                    Value::Float(self.sum / self.count as f64)
                } else {
                    Value::Null
                }
            }
            Aggregate::Min(_) => {
                if self.seen {
                    Value::Float(self.min)
                } else {
                    Value::Null
                }
            }
            Aggregate::Max(_) => {
                if self.seen {
                    Value::Float(self.max)
                } else {
                    Value::Null
                }
            }
        }
    }
}

/// Computes `GROUP BY group_attrs` with the given aggregates over `view`,
/// returning a new table with one row per group (group columns first, then
/// aggregate columns, groups in first-appearance order).
///
/// Group attributes must be categorical; aggregate attributes (except
/// `COUNT(*)`) must be numeric. NULL group values form their own group.
pub fn group_by(view: &View<'_>, group_attrs: &[String], aggs: &[Aggregate]) -> Result<Table> {
    let table = view.table();
    let schema = table.schema();
    let group_cols: Vec<usize> = group_attrs
        .iter()
        .map(|a| {
            let idx = schema.index_of(a)?;
            if schema.field(idx).data_type != DataType::Categorical {
                return Err(Error::Invalid(format!(
                    "GROUP BY attribute {a} must be categorical"
                )));
            }
            Ok(idx)
        })
        .collect::<Result<_>>()?;
    let agg_cols: Vec<Option<usize>> = aggs
        .iter()
        .map(|agg| match agg.attribute() {
            None => Ok(None),
            Some(a) => {
                let idx = schema.index_of(a)?;
                if schema.field(idx).data_type == DataType::Categorical {
                    return Err(Error::Invalid(format!(
                        "aggregate attribute {a} must be numeric"
                    )));
                }
                Ok(Some(idx))
            }
        })
        .collect::<Result<_>>()?;

    // Group key = vector of dictionary codes.
    let mut order: Vec<Vec<u32>> = Vec::new();
    let mut groups: HashMap<Vec<u32>, (u64, Vec<AggState>)> = HashMap::new();
    for &row in view.row_ids() {
        let key: Vec<u32> = group_cols
            .iter()
            .map(|&c| table.column(c).get_code(row as usize).unwrap_or(u32::MAX))
            .collect();
        let entry = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            (0, vec![AggState::default(); aggs.len()])
        });
        entry.0 += 1;
        for (state, col) in entry.1.iter_mut().zip(&agg_cols) {
            let v = col.and_then(|c| table.column(c).get_f64(row as usize));
            state.update(v);
        }
    }

    // Output schema: group columns (categorical) then aggregates.
    let mut fields: Vec<Field> = group_cols
        .iter()
        .map(|&c| Field::new(schema.field(c).name.clone(), DataType::Categorical))
        .collect();
    for agg in aggs {
        let ty = match agg {
            Aggregate::Count => DataType::Int,
            _ => DataType::Float,
        };
        fields.push(Field::new(agg.output_name(), ty));
    }
    let mut builder = TableBuilder::new(fields)?;
    for key in order {
        let Some((rows, states)) = groups.remove(&key) else {
            continue; // every key in `order` was recorded; defensive only
        };
        let mut out = Vec::with_capacity(key.len() + aggs.len());
        for (&code, &col) in key.iter().zip(&group_cols) {
            let resolved = table.column(col).dictionary().and_then(|d| d.resolve(code));
            out.push(match resolved {
                Some(s) => Value::Str(s.to_owned()),
                None => Value::Null,
            });
        }
        for (state, agg) in states.iter().zip(aggs) {
            out.push(state.finish(agg, rows));
        }
        builder.push_row(out)?;
    }
    Ok(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn table() -> Table {
        let mut b = TableBuilder::new(vec![
            Field::new("Make", DataType::Categorical),
            Field::new("Body", DataType::Categorical),
            Field::new("Price", DataType::Int),
        ])
        .unwrap();
        for (m, body, p) in [
            ("Ford", "SUV", 20),
            ("Ford", "SUV", 30),
            ("Ford", "Sedan", 10),
            ("Jeep", "SUV", 40),
        ] {
            b.push_row(vec![m.into(), body.into(), p.into()]).unwrap();
        }
        b.push_row(vec!["Jeep".into(), "SUV".into(), Value::Null])
            .unwrap();
        b.finish()
    }

    #[test]
    fn single_group_all_aggregates() {
        let t = table();
        let out = group_by(
            &t.full_view(),
            &["Make".into()],
            &[
                Aggregate::Count,
                Aggregate::Sum("Price".into()),
                Aggregate::Avg("Price".into()),
                Aggregate::Min("Price".into()),
                Aggregate::Max("Price".into()),
            ],
        )
        .unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.schema().names()[1], "count(*)");
        // Ford: count 3, sum 60, avg 20, min 10, max 30.
        assert_eq!(out.value(0, 0), Value::Str("Ford".into()));
        assert_eq!(out.value(0, 1), Value::Int(3));
        assert_eq!(out.value(0, 2), Value::Float(60.0));
        assert_eq!(out.value(0, 3), Value::Float(20.0));
        assert_eq!(out.value(0, 4), Value::Float(10.0));
        assert_eq!(out.value(0, 5), Value::Float(30.0));
        // Jeep: count includes the NULL-price row; avg ignores it.
        assert_eq!(out.value(1, 1), Value::Int(2));
        assert_eq!(out.value(1, 2), Value::Float(40.0));
    }

    #[test]
    fn multi_column_grouping() {
        let t = table();
        let out = group_by(
            &t.full_view(),
            &["Make".into(), "Body".into()],
            &[Aggregate::Count],
        )
        .unwrap();
        assert_eq!(out.num_rows(), 3); // Ford/SUV, Ford/Sedan, Jeep/SUV
        assert_eq!(out.value(0, 2), Value::Int(2));
    }

    #[test]
    fn empty_view_yields_empty_table() {
        let t = table();
        let empty = t.filter(&crate::Predicate::eq("Make", "Tesla")).unwrap();
        let out = group_by(&empty, &["Make".into()], &[Aggregate::Count]).unwrap();
        assert_eq!(out.num_rows(), 0);
    }

    #[test]
    fn type_errors() {
        let t = table();
        assert!(group_by(&t.full_view(), &["Price".into()], &[Aggregate::Count]).is_err());
        assert!(group_by(
            &t.full_view(),
            &["Make".into()],
            &[Aggregate::Avg("Body".into())]
        )
        .is_err());
        assert!(group_by(&t.full_view(), &["Nope".into()], &[Aggregate::Count]).is_err());
    }

    #[test]
    fn ungrouped_aggregate_single_row() {
        let t = table();
        let out = group_by(
            &t.full_view(),
            &[],
            &[Aggregate::Count, Aggregate::Avg("Price".into())],
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, 0), Value::Int(5));
        assert_eq!(out.value(0, 1), Value::Float(25.0));
    }
}
