//! String dictionary for categorical columns.

use std::collections::HashMap;

/// Sentinel code used for NULL entries in categorical columns.
pub const NULL_CODE: u32 = u32::MAX;

/// An append-only string interner mapping category strings to dense `u32`
/// codes.
///
/// Categorical columns store codes rather than strings; every CAD View
/// algorithm (contingency tables, clustering, labeling) operates on codes
/// and only resolves strings at rendering time.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    values: Vec<String>,
    index: HashMap<String, u32>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a dictionary from values in code order — the decode path
    /// for persisted dictionary pages, where value `i` must map back to
    /// code `i` exactly so persisted column codes keep their meaning.
    ///
    /// Duplicates are rejected (codes must stay bijective with values), as
    /// is a value count that would collide with [`NULL_CODE`].
    pub fn from_values(
        values: Vec<String>,
    ) -> std::result::Result<Dictionary, crate::error::Error> {
        if values.len() >= NULL_CODE as usize {
            return Err(crate::error::Error::Invalid(format!(
                "dictionary of {} values overflows the code space",
                values.len()
            )));
        }
        let mut index = HashMap::with_capacity(values.len());
        for (i, v) in values.iter().enumerate() {
            if index.insert(v.clone(), i as u32).is_some() {
                return Err(crate::error::Error::Invalid(format!(
                    "duplicate dictionary value {v:?}"
                )));
            }
        }
        Ok(Dictionary { values, index })
    }

    /// Interns `s`, returning its code. Existing strings keep their code.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&code) = self.index.get(s) {
            return code;
        }
        // 2^32 distinct strings cannot fit in memory long before this
        // conversion could fail; not a user-reachable panic.
        #[allow(clippy::expect_used)]
        let code = u32::try_from(self.values.len()).expect("dictionary overflow");
        self.values.push(s.to_owned());
        self.index.insert(s.to_owned(), code);
        code
    }

    /// Looks up the code for `s` without interning.
    pub fn code(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// Resolves a code back to its string. Returns `None` for out-of-range
    /// codes (including [`NULL_CODE`]).
    pub fn resolve(&self, code: u32) -> Option<&str> {
        self.values.get(code as usize).map(|s| s.as_str())
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True iff no strings have been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterator over `(code, string)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("Ford");
        let b = d.intern("Chevrolet");
        assert_ne!(a, b);
        assert_eq!(d.intern("Ford"), a);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut d = Dictionary::new();
        let code = d.intern("Jeep");
        assert_eq!(d.resolve(code), Some("Jeep"));
        assert_eq!(d.code("Jeep"), Some(code));
        assert_eq!(d.resolve(NULL_CODE), None);
        assert_eq!(d.code("Toyota"), None);
    }

    #[test]
    fn from_values_round_trips_and_rejects_duplicates() {
        let mut d = Dictionary::new();
        d.intern("SUV");
        d.intern("Sedan");
        let rebuilt = Dictionary::from_values(d.iter().map(|(_, s)| s.to_owned()).collect())
            .expect("rebuild");
        assert_eq!(rebuilt.code("SUV"), Some(0));
        assert_eq!(rebuilt.code("Sedan"), Some(1));
        assert_eq!(rebuilt.resolve(1), Some("Sedan"));
        assert!(Dictionary::from_values(vec!["a".into(), "a".into()]).is_err());
    }

    #[test]
    fn iter_in_code_order() {
        let mut d = Dictionary::new();
        d.intern("a");
        d.intern("b");
        d.intern("c");
        let collected: Vec<_> = d.iter().collect();
        assert_eq!(collected, vec![(0, "a"), (1, "b"), (2, "c")]);
    }
}
