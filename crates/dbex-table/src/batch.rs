//! Columnar batch kernels: predicate evaluation over typed column slices.
//!
//! [`Predicate::eval`] materializes a dynamic [`Value`] per row and resolves
//! attribute names against the schema per row — fine for spot checks, far
//! too slow for the scan paths (`Table::filter`, `View::refine`,
//! `View::partition_by_code`). The kernels here evaluate a predicate over a
//! batch of row ids in one pass per leaf: column indices are resolved once,
//! categorical equality becomes a single dictionary lookup followed by a
//! `u32` compare against the raw code slice, and numeric comparisons run
//! directly over the typed `i64`/`f64` data with the null mask applied
//! inline. Results land in a reusable boolean mask or selection vector
//! (`Vec<u32>`), never in per-row `Value`s.
//!
//! Semantics are bit-for-bit those of [`Predicate::eval`] (SQL-ish NULL
//! handling: any comparison involving NULL is false; `total_cmp` value
//! ordering). Leaf shapes the kernels do not specialize — e.g. ordered
//! comparison of strings — fall back to a per-row `Value` compare with the
//! column pre-resolved, so they stay correct and still skip the per-row name
//! lookup. The equivalence is enforced by proptest in this module's tests.

use crate::column::Column;
use crate::dict::NULL_CODE;
use crate::error::{Error, Result};
use crate::predicate::{CmpOp, Predicate};
use crate::table::Table;
use crate::value::Value;
use std::cmp::Ordering;

/// Gathers `data[p]` for every position in `positions` into `out`
/// (cleared first), preserving order.
///
/// This is the selection kernel behind packed code extraction: the
/// clustering layer pulls each compare attribute's dictionary codes for
/// one pivot partition in a single sequential pass over the column before
/// narrowing them into a row-major code matrix. Returns `false` (with
/// `out` cleared) if any position is out of range — callers treat that as
/// "cannot pack" rather than a panic.
pub fn gather_into<T: Copy>(data: &[T], positions: &[usize], out: &mut Vec<T>) -> bool {
    out.clear();
    out.reserve(positions.len());
    for &p in positions {
        match data.get(p) {
            Some(&v) => out.push(v),
            None => {
                out.clear();
                return false;
            }
        }
    }
    true
}

/// [`gather_into`] returning a fresh vector (`None` on out-of-range).
pub fn gather<T: Copy>(data: &[T], positions: &[usize]) -> Option<Vec<T>> {
    let mut out = Vec::new();
    gather_into(data, positions, &mut out).then_some(out)
}

/// Filters `rows` by `predicate`, returning the selected row ids in order.
pub fn select(table: &Table, rows: &[u32], predicate: &Predicate) -> Result<Vec<u32>> {
    let mut out = Vec::new();
    select_into(table, rows, predicate, &mut out)?;
    Ok(out)
}

/// Filters `rows` by `predicate` into `out`, a reusable selection vector.
///
/// `out` is cleared first; on return it holds the subset of `rows` (in input
/// order) for which the predicate is true.
pub fn select_into(
    table: &Table,
    rows: &[u32],
    predicate: &Predicate,
    out: &mut Vec<u32>,
) -> Result<()> {
    let mut mask = vec![false; rows.len()];
    eval_mask(table, rows, predicate, &mut mask)?;
    out.clear();
    out.extend(
        rows.iter()
            .zip(&mask)
            .filter(|(_, &keep)| keep)
            .map(|(&row, _)| row),
    );
    Ok(())
}

/// Evaluates `predicate` over `rows`, writing one bool per input row into
/// `mask` (resized to `rows.len()`).
pub fn eval_mask(
    table: &Table,
    rows: &[u32],
    predicate: &Predicate,
    mask: &mut Vec<bool>,
) -> Result<()> {
    mask.clear();
    mask.resize(rows.len(), false);
    eval_into(table, rows, predicate, mask)
}

fn eval_into(table: &Table, rows: &[u32], predicate: &Predicate, mask: &mut [bool]) -> Result<()> {
    match predicate {
        Predicate::Compare {
            attribute,
            op,
            value,
        } => compare_mask(table, rows, attribute, *op, value, mask),
        Predicate::Between {
            attribute,
            low,
            high,
        } => between_mask(table, rows, attribute, low, high, mask),
        Predicate::In { attribute, values } => in_mask(table, rows, attribute, values, mask),
        Predicate::IsNull { attribute } => {
            let column = resolve(table, attribute)?;
            for (m, &row) in mask.iter_mut().zip(rows) {
                *m = column.is_null(row as usize);
            }
            Ok(())
        }
        Predicate::And(ps) => {
            mask.fill(true);
            let mut child = vec![false; rows.len()];
            for p in ps {
                eval_into(table, rows, p, &mut child)?;
                for (m, &c) in mask.iter_mut().zip(&child) {
                    *m &= c;
                }
            }
            Ok(())
        }
        Predicate::Or(ps) => {
            mask.fill(false);
            let mut child = vec![false; rows.len()];
            for p in ps {
                eval_into(table, rows, p, &mut child)?;
                for (m, &c) in mask.iter_mut().zip(&child) {
                    *m |= c;
                }
            }
            Ok(())
        }
        Predicate::Not(p) => {
            eval_into(table, rows, p, mask)?;
            for m in mask.iter_mut() {
                *m = !*m;
            }
            Ok(())
        }
        Predicate::Const(b) => {
            mask.fill(*b);
            Ok(())
        }
    }
}

fn resolve<'t>(table: &'t Table, attribute: &str) -> Result<&'t Column> {
    let idx = table
        .schema()
        .index_of(attribute)
        .map_err(|_| Error::UnknownAttribute(attribute.to_owned()))?;
    Ok(table.column(idx))
}

fn ord_matches(op: CmpOp, ord: Ordering) -> bool {
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    }
}

/// `cell.total_cmp(bound)` for a non-null `i64` cell and a numeric bound.
/// `None` when the bound is not numeric (caller falls back to `Value`s).
fn cmp_int_cell(cell: i64, bound: &Value) -> Option<Ordering> {
    match bound {
        Value::Int(b) => Some(cell.cmp(b)),
        Value::Float(b) => Some((cell as f64).total_cmp(b)),
        _ => None,
    }
}

/// `cell.total_cmp(bound)` for a non-null `f64` cell and a numeric bound.
fn cmp_float_cell(cell: f64, bound: &Value) -> Option<Ordering> {
    match bound {
        Value::Int(b) => Some(cell.total_cmp(&(*b as f64))),
        Value::Float(b) => Some(cell.total_cmp(b)),
        _ => None,
    }
}

fn compare_mask(
    table: &Table,
    rows: &[u32],
    attribute: &str,
    op: CmpOp,
    value: &Value,
    mask: &mut [bool],
) -> Result<()> {
    let column = resolve(table, attribute)?;
    if value.is_null() {
        mask.fill(false);
        return Ok(());
    }
    match (column, value) {
        // Categorical =/!= string: one dictionary lookup, then raw code
        // compares. A literal absent from the dictionary matches nothing
        // (Eq) or every non-NULL row (Ne).
        (Column::Categorical { codes, dict }, Value::Str(s))
            if matches!(op, CmpOp::Eq | CmpOp::Ne) =>
        {
            match dict.code(s) {
                Some(target) => {
                    let want_eq = op == CmpOp::Eq;
                    for (m, &row) in mask.iter_mut().zip(rows) {
                        let code = codes[row as usize];
                        *m = code != NULL_CODE && (code == target) == want_eq;
                    }
                }
                None => {
                    if op == CmpOp::Eq {
                        mask.fill(false);
                    } else {
                        for (m, &row) in mask.iter_mut().zip(rows) {
                            *m = codes[row as usize] != NULL_CODE;
                        }
                    }
                }
            }
            Ok(())
        }
        (Column::Int { data, nulls }, bound) if cmp_int_cell(0, bound).is_some() => {
            for (m, &row) in mask.iter_mut().zip(rows) {
                let row = row as usize;
                *m = !nulls[row]
                    && cmp_int_cell(data[row], bound).is_some_and(|ord| ord_matches(op, ord));
            }
            Ok(())
        }
        (Column::Float { data, nulls }, bound) if cmp_float_cell(0.0, bound).is_some() => {
            for (m, &row) in mask.iter_mut().zip(rows) {
                let row = row as usize;
                *m = !nulls[row]
                    && cmp_float_cell(data[row], bound).is_some_and(|ord| ord_matches(op, ord));
            }
            Ok(())
        }
        // Remaining shapes (ordered string compares, cross-type oddities):
        // per-row Value compare with the column pre-resolved.
        _ => {
            for (m, &row) in mask.iter_mut().zip(rows) {
                let cell = column.get(row as usize);
                *m = !cell.is_null() && ord_matches(op, cell.total_cmp(value));
            }
            Ok(())
        }
    }
}

fn between_mask(
    table: &Table,
    rows: &[u32],
    attribute: &str,
    low: &Value,
    high: &Value,
    mask: &mut [bool],
) -> Result<()> {
    let column = resolve(table, attribute)?;
    match column {
        Column::Int { data, nulls }
            if cmp_int_cell(0, low).is_some() && cmp_int_cell(0, high).is_some() =>
        {
            for (m, &row) in mask.iter_mut().zip(rows) {
                let row = row as usize;
                *m = !nulls[row]
                    && cmp_int_cell(data[row], low).is_some_and(|o| o != Ordering::Less)
                    && cmp_int_cell(data[row], high).is_some_and(|o| o != Ordering::Greater);
            }
            Ok(())
        }
        Column::Float { data, nulls }
            if cmp_float_cell(0.0, low).is_some() && cmp_float_cell(0.0, high).is_some() =>
        {
            for (m, &row) in mask.iter_mut().zip(rows) {
                let row = row as usize;
                *m = !nulls[row]
                    && cmp_float_cell(data[row], low).is_some_and(|o| o != Ordering::Less)
                    && cmp_float_cell(data[row], high).is_some_and(|o| o != Ordering::Greater);
            }
            Ok(())
        }
        _ => {
            for (m, &row) in mask.iter_mut().zip(rows) {
                let cell = column.get(row as usize);
                *m = !cell.is_null()
                    && cell.total_cmp(low) != Ordering::Less
                    && cell.total_cmp(high) != Ordering::Greater;
            }
            Ok(())
        }
    }
}

fn in_mask(
    table: &Table,
    rows: &[u32],
    attribute: &str,
    values: &[Value],
    mask: &mut [bool],
) -> Result<()> {
    let column = resolve(table, attribute)?;
    match column {
        // Categorical IN: resolve each string literal to its code once,
        // mark the wanted codes in a dictionary-sized bitmap, then test raw
        // codes. Non-string literals can never equal a string cell.
        Column::Categorical { codes, dict } => {
            let mut wanted = vec![false; dict.len()];
            for v in values {
                if let Value::Str(s) = v {
                    if let Some(code) = dict.code(s) {
                        wanted[code as usize] = true;
                    }
                }
            }
            for (m, &row) in mask.iter_mut().zip(rows) {
                let code = codes[row as usize];
                *m = code != NULL_CODE && wanted[code as usize];
            }
            Ok(())
        }
        Column::Int { data, nulls } => {
            for (m, &row) in mask.iter_mut().zip(rows) {
                let row = row as usize;
                *m = !nulls[row]
                    && values.iter().any(|v| {
                        cmp_int_cell(data[row], v) == Some(Ordering::Equal)
                    });
            }
            Ok(())
        }
        Column::Float { data, nulls } => {
            for (m, &row) in mask.iter_mut().zip(rows) {
                let row = row as usize;
                *m = !nulls[row]
                    && values.iter().any(|v| {
                        cmp_float_cell(data[row], v) == Some(Ordering::Equal)
                    });
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::table::TableBuilder;
    use crate::value::DataType;
    use proptest::prelude::*;

    fn table() -> Table {
        let mut b = TableBuilder::new(vec![
            Field::new("Make", DataType::Categorical),
            Field::new("Price", DataType::Int),
            Field::new("Rating", DataType::Float),
        ])
        .unwrap();
        let rows: Vec<(Value, Value, Value)> = vec![
            ("Ford".into(), 25_000.into(), 4.5.into()),
            ("Jeep".into(), 31_000.into(), 3.0.into()),
            (Value::Null, 18_000.into(), Value::Null),
            ("Ford".into(), Value::Null, 2.5.into()),
            ("Honda".into(), 22_000.into(), 4.5.into()),
        ];
        for (m, p, r) in rows {
            b.push_row(vec![m, p, r]).unwrap();
        }
        b.finish()
    }

    /// Every kernel path must agree with the row-at-a-time reference.
    fn assert_matches_eval(t: &Table, p: &Predicate) {
        let rows: Vec<u32> = (0..t.num_rows() as u32).collect();
        let mut mask = Vec::new();
        eval_mask(t, &rows, p, &mut mask).unwrap();
        for &row in &rows {
            assert_eq!(
                mask[row as usize],
                p.eval(t, row as usize).unwrap(),
                "row {row} of {p}"
            );
        }
    }

    #[test]
    fn kernels_match_reference_eval() {
        let t = table();
        let cases = vec![
            Predicate::eq("Make", "Ford"),
            Predicate::cmp("Make", CmpOp::Ne, "Ford"),
            Predicate::eq("Make", "Tesla"), // absent from dictionary
            Predicate::cmp("Make", CmpOp::Ne, "Tesla"),
            Predicate::cmp("Make", CmpOp::Lt, "Honda"), // string ordering fallback
            Predicate::cmp("Price", CmpOp::Gt, 24_000),
            Predicate::cmp("Price", CmpOp::Le, 25_000.5),
            Predicate::cmp("Rating", CmpOp::Ge, 4),
            Predicate::cmp("Price", CmpOp::Eq, "Ford"), // cross-type fallback
            Predicate::eq("Price", Value::Null),
            Predicate::between("Price", 20_000, 30_000),
            Predicate::between("Rating", 2.5, 4.5),
            Predicate::between("Price", Value::Null, Value::Int(30_000)),
            Predicate::between("Make", "F", "H"),
            Predicate::in_list("Make", vec!["Jeep".into(), "Honda".into(), "Tesla".into()]),
            Predicate::in_list("Make", vec![1.into()]),
            Predicate::in_list("Price", vec![25_000.into(), 22_000.0.into()]),
            Predicate::in_list("Rating", vec![3.into(), 4.5.into(), "x".into()]),
            Predicate::IsNull {
                attribute: "Make".into(),
            },
            Predicate::not(Predicate::eq("Make", "Ford")),
            Predicate::and(vec![
                Predicate::eq("Make", "Ford"),
                Predicate::cmp("Price", CmpOp::Gt, 20_000),
            ]),
            Predicate::or(vec![
                Predicate::eq("Make", "Jeep"),
                Predicate::cmp("Rating", CmpOp::Ge, 4.5),
            ]),
            Predicate::Const(true),
            Predicate::Const(false),
            Predicate::and(vec![]),
            Predicate::or(vec![]),
        ];
        for p in &cases {
            assert_matches_eval(&t, p);
        }
    }

    #[test]
    fn gather_preserves_order_and_checks_bounds() {
        let data = [10u32, 11, 12, 13];
        assert_eq!(gather(&data, &[3, 0, 0, 2]), Some(vec![13, 10, 10, 12]));
        assert_eq!(gather(&data, &[]), Some(vec![]));
        assert_eq!(gather(&data, &[1, 4]), None);
        let mut out = vec![99u32];
        assert!(!gather_into(&data, &[9], &mut out));
        assert!(out.is_empty(), "failed gather must not leave stale values");
    }

    #[test]
    fn select_into_reuses_buffer() {
        let t = table();
        let rows: Vec<u32> = (0..t.num_rows() as u32).collect();
        let mut out = vec![99, 99, 99];
        select_into(&t, &rows, &Predicate::eq("Make", "Ford"), &mut out).unwrap();
        assert_eq!(out, vec![0, 3]);
        select_into(&t, &rows, &Predicate::Const(false), &mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn unknown_attribute_errors() {
        let t = table();
        let rows = [0u32];
        let mut mask = Vec::new();
        assert!(eval_mask(&t, &rows, &Predicate::eq("Nope", 1), &mut mask).is_err());
        assert!(eval_mask(
            &t,
            &rows,
            &Predicate::not(Predicate::eq("Nope", 1)),
            &mut mask
        )
        .is_err());
    }

    /// Decodes a seed into a literal spanning every `Value` shape the
    /// kernels specialize on (and a string absent from the dictionary).
    fn decode_value(seed: u64) -> Value {
        match seed % 6 {
            0 => Value::Null,
            1 => Value::Int((seed / 7) as i64 % 50_000 - 25_000),
            2 => Value::Float((seed / 7 % 1_000) as f64 / 100.0 - 5.0),
            3 => Value::Str("Ford".into()),
            4 => Value::Str("Jeep".into()),
            _ => Value::Str("Tesla".into()),
        }
    }

    fn decode_op(seed: u64) -> CmpOp {
        match seed % 6 {
            0 => CmpOp::Eq,
            1 => CmpOp::Ne,
            2 => CmpOp::Lt,
            3 => CmpOp::Le,
            4 => CmpOp::Gt,
            _ => CmpOp::Ge,
        }
    }

    proptest! {
        #[test]
        fn random_leaves_match_reference(
            attr_idx in 0usize..3,
            op_seed in 0u64..6,
            value_seed in 0u64..u64::MAX,
            low_seed in 0u64..u64::MAX,
            high_seed in 0u64..u64::MAX,
        ) {
            let t = table();
            let attr = t.schema().field(attr_idx).name.clone();
            let value = decode_value(value_seed);
            assert_matches_eval(&t, &Predicate::Compare {
                attribute: attr.clone(),
                op: decode_op(op_seed),
                value: value.clone(),
            });
            assert_matches_eval(&t, &Predicate::Between {
                attribute: attr.clone(),
                low: decode_value(low_seed),
                high: decode_value(high_seed),
            });
            assert_matches_eval(&t, &Predicate::In {
                attribute: attr,
                values: vec![value],
            });
        }
    }
}
