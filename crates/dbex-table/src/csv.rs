//! Minimal CSV import/export.
//!
//! Supports the subset of CSV the project needs: comma separation, optional
//! double-quote quoting with `""` escapes, a mandatory header row, and
//! automatic per-column type inference (INT → FLOAT → CATEGORICAL). Empty
//! fields are NULL.
//!
//! Two import entry points:
//!
//! * [`parse_csv`] — strict: the first malformed row aborts the import with
//!   an [`Error::Csv`] locating the offending line and field.
//! * [`parse_csv_lossy`] — lossy: malformed rows are skipped and reported
//!   as warnings in the returned [`CsvImport`]; only structural failures
//!   (empty input, unterminated quote) abort.

use crate::error::{Error, Result};
use crate::schema::Field;
use crate::table::{Table, TableBuilder};
use crate::value::{DataType, Value};

/// The outcome of a lossy CSV import: the table built from the good rows
/// plus one located [`Error::Csv`] per skipped row.
#[derive(Debug)]
pub struct CsvImport {
    /// The table built from the rows that parsed cleanly.
    pub table: Table,
    /// One warning per skipped row, each locating the offending line.
    pub warnings: Vec<Error>,
}

impl CsvImport {
    /// Number of rows skipped during the import.
    pub fn skipped(&self) -> usize {
        self.warnings.len()
    }
}

/// A raw record plus the 1-based physical line it started on.
struct RawRecord {
    line: usize,
    fields: Vec<String>,
}

/// Splits `text` into records, tracking the physical line each record
/// starts on (quoted fields may span lines, so records are not lines).
fn scan_records(text: &str) -> Result<Vec<RawRecord>> {
    let mut records = Vec::new();
    let mut record = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut line = 1usize; // current physical line
    let mut record_line = 1usize; // line the current record started on
    let mut quote_line = 0usize; // line the open quote started on

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    in_quotes = true;
                    quote_line = line;
                }
                ',' => {
                    record.push(std::mem::take(&mut field));
                    // Note trailing comma yields an empty final field, which
                    // the flush below pushes.
                }
                '\r' => {}
                '\n' => {
                    line += 1;
                    record.push(std::mem::take(&mut field));
                    records.push(RawRecord {
                        line: record_line,
                        fields: std::mem::take(&mut record),
                    });
                    record_line = line;
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(Error::csv(quote_line, None, "unterminated quoted field"));
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(RawRecord {
            line: record_line,
            fields: record,
        });
    }
    Ok(records)
}

/// Parses CSV text into a [`Table`], inferring column types.
///
/// Type inference scans every row: a column is `Int` if every non-empty
/// field parses as `i64`, else `Float` if every non-empty field parses as
/// `f64`, else `Categorical`. The first malformed row aborts the import;
/// the returned [`Error::Csv`] reports the offending line (and field index
/// where applicable).
pub fn parse_csv(text: &str) -> Result<Table> {
    match import(text, false)? {
        ImportOutcome::Clean(table) => Ok(table),
        ImportOutcome::Lossy(_) => unreachable!("strict import never returns Lossy"),
    }
}

/// Parses CSV text like [`parse_csv`], but skips malformed rows instead of
/// aborting: ragged rows (wrong field count) are dropped and reported in
/// [`CsvImport::warnings`]. Structural failures — empty input, a missing
/// header, an unterminated quote — still abort, because no well-defined
/// table can be recovered from them.
pub fn parse_csv_lossy(text: &str) -> Result<CsvImport> {
    match import(text, true)? {
        ImportOutcome::Clean(table) => Ok(CsvImport {
            table,
            warnings: Vec::new(),
        }),
        ImportOutcome::Lossy(import) => Ok(import),
    }
}

enum ImportOutcome {
    Clean(Table),
    Lossy(CsvImport),
}

fn import(text: &str, lossy: bool) -> Result<ImportOutcome> {
    let mut it = scan_records(text)?.into_iter();
    let header = it
        .next()
        .ok_or_else(|| Error::csv(0, None, "empty input"))?;
    let mut rows: Vec<RawRecord> = Vec::new();
    let mut warnings: Vec<Error> = Vec::new();

    for r in it {
        if r.fields.len() == header.fields.len() {
            rows.push(r);
        } else {
            let err = Error::csv(
                r.line,
                None,
                format!(
                    "row has {} fields, header has {}",
                    r.fields.len(),
                    header.fields.len()
                ),
            );
            if lossy {
                warnings.push(err);
            } else {
                return Err(err);
            }
        }
    }

    // Infer types from the surviving rows only, so a skipped ragged row
    // cannot poison a column's type.
    let types: Vec<DataType> = (0..header.fields.len())
        .map(|c| infer_type(rows.iter().map(|r| r.fields[c].as_str())))
        .collect();

    let fields = header
        .fields
        .iter()
        .zip(&types)
        .map(|(name, &ty)| Field::new(name.trim(), ty))
        .collect();
    let mut builder = TableBuilder::new(fields)?;
    'rows: for row in &rows {
        let mut values = Vec::with_capacity(row.fields.len());
        for (col, (raw, &ty)) in row.fields.iter().zip(&types).enumerate() {
            match parse_value(raw, ty, row.line, col + 1) {
                Ok(v) => values.push(v),
                Err(err) if lossy => {
                    warnings.push(err);
                    continue 'rows;
                }
                Err(err) => return Err(err),
            }
        }
        builder.push_row(values)?;
    }
    let table = builder.finish();
    if lossy {
        Ok(ImportOutcome::Lossy(CsvImport { table, warnings }))
    } else {
        Ok(ImportOutcome::Clean(table))
    }
}

fn infer_type<'a>(mut fields: impl Iterator<Item = &'a str>) -> DataType {
    let mut ty = DataType::Int;
    let mut saw_any = false;
    for f in fields.by_ref() {
        let f = f.trim();
        if f.is_empty() {
            continue;
        }
        saw_any = true;
        match ty {
            DataType::Int => {
                if f.parse::<i64>().is_err() {
                    ty = if f.parse::<f64>().is_ok() {
                        DataType::Float
                    } else {
                        DataType::Categorical
                    };
                }
            }
            DataType::Float => {
                if f.parse::<f64>().is_err() {
                    ty = DataType::Categorical;
                }
            }
            DataType::Categorical => break,
        }
    }
    if saw_any {
        ty
    } else {
        DataType::Categorical
    }
}

fn parse_value(raw: &str, ty: DataType, line: usize, column: usize) -> Result<Value> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Ok(Value::Null);
    }
    Ok(match ty {
        DataType::Int => Value::Int(
            raw.parse::<i64>()
                .map_err(|e| Error::csv(line, Some(column), format!("bad int {raw:?}: {e}")))?,
        ),
        DataType::Float => Value::Float(
            raw.parse::<f64>()
                .map_err(|e| Error::csv(line, Some(column), format!("bad float {raw:?}: {e}")))?,
        ),
        DataType::Categorical => Value::Str(raw.to_owned()),
    })
}

/// Serializes a table to CSV text (header row plus one line per row).
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    let names = table.schema().names();
    out.push_str(&names.join(","));
    out.push('\n');
    for row in 0..table.num_rows() {
        for col in 0..table.num_columns() {
            if col > 0 {
                out.push(',');
            }
            match table.value(row, col) {
                Value::Null => {}
                Value::Str(s) => {
                    if s.contains(',') || s.contains('"') || s.contains('\n') {
                        out.push('"');
                        out.push_str(&s.replace('"', "\"\""));
                        out.push('"');
                    } else {
                        out.push_str(&s);
                    }
                }
                v => out.push_str(&v.to_string()),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_typed_columns() {
        let t = parse_csv("Make,Price,Score\nFord,25000,4.5\nJeep,31000,3.9\n").unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.schema().field(0).data_type, DataType::Categorical);
        assert_eq!(t.schema().field(1).data_type, DataType::Int);
        assert_eq!(t.schema().field(2).data_type, DataType::Float);
        assert_eq!(t.value(1, 1), Value::Int(31_000));
    }

    #[test]
    fn empty_fields_are_null() {
        let t = parse_csv("A,B\n1,\n,x\n").unwrap();
        assert_eq!(t.value(0, 1), Value::Null);
        assert_eq!(t.value(1, 0), Value::Null);
    }

    #[test]
    fn quoted_fields_with_commas_and_escapes() {
        let t = parse_csv("A\n\"hello, \"\"world\"\"\"\n").unwrap();
        assert_eq!(t.value(0, 0), Value::Str("hello, \"world\"".into()));
    }

    #[test]
    fn ragged_rows_rejected_with_line_number() {
        let err = parse_csv("A,B\n1,2\n1\n").unwrap_err();
        match &err {
            Error::Csv { line, .. } => assert_eq!(*line, 3),
            other => panic!("expected Csv error, got {other:?}"),
        }
        assert!(err.to_string().contains("line 3"), "{err}");
        assert!(parse_csv("").is_err());
    }

    #[test]
    fn unterminated_quote_reports_opening_line() {
        let err = parse_csv("A\nx\n\"oops\n").unwrap_err();
        match &err {
            Error::Csv { line, .. } => assert_eq!(*line, 3),
            other => panic!("expected Csv error, got {other:?}"),
        }
    }

    #[test]
    fn quoted_newlines_keep_line_numbers_physical() {
        // The quoted field spans lines 2-3, so the ragged row is line 4.
        let err = parse_csv("A,B\n\"x\ny\",1\n1\n").unwrap_err();
        match &err {
            Error::Csv { line, .. } => assert_eq!(*line, 4),
            other => panic!("expected Csv error, got {other:?}"),
        }
    }

    #[test]
    fn lossy_skips_ragged_rows_with_warnings() {
        let import = parse_csv_lossy("A,B\n1,2\noops\n3,4\n1,2,3\n").unwrap();
        assert_eq!(import.table.num_rows(), 2);
        assert_eq!(import.skipped(), 2);
        let msgs: Vec<String> = import.warnings.iter().map(|w| w.to_string()).collect();
        assert!(msgs[0].contains("line 3"), "{msgs:?}");
        assert!(msgs[1].contains("line 5"), "{msgs:?}");
        // Skipped rows do not poison type inference: column A stays Int.
        assert_eq!(import.table.schema().field(0).data_type, DataType::Int);
    }

    #[test]
    fn lossy_clean_input_has_no_warnings() {
        let import = parse_csv_lossy("A\n1\n2\n").unwrap();
        assert_eq!(import.table.num_rows(), 2);
        assert_eq!(import.skipped(), 0);
    }

    #[test]
    fn lossy_still_rejects_structural_failures() {
        assert!(parse_csv_lossy("").is_err());
        assert!(parse_csv_lossy("A\n\"oops\n").is_err());
    }

    #[test]
    fn round_trip() {
        let src = "Make,Price\nFord,25000\n\"a,b\",1\n";
        let t = parse_csv(src).unwrap();
        let out = to_csv(&t);
        let t2 = parse_csv(&out).unwrap();
        assert_eq!(t2.num_rows(), t.num_rows());
        assert_eq!(t2.value(1, 0), Value::Str("a,b".into()));
    }

    #[test]
    fn mixed_int_then_string_becomes_categorical() {
        let t = parse_csv("A\n1\nx\n").unwrap();
        assert_eq!(t.schema().field(0).data_type, DataType::Categorical);
        assert_eq!(t.value(0, 0), Value::Str("1".into()));
    }
}
