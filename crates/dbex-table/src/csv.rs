//! Minimal CSV import/export.
//!
//! Supports the subset of CSV the project needs: comma separation, optional
//! double-quote quoting with `""` escapes, a mandatory header row, and
//! automatic per-column type inference (INT → FLOAT → CATEGORICAL). Empty
//! fields are NULL.

use crate::error::{Error, Result};
use crate::schema::Field;
use crate::table::{Table, TableBuilder};
use crate::value::{DataType, Value};

/// Parses CSV text into a [`Table`], inferring column types.
///
/// Type inference scans every row: a column is `Int` if every non-empty
/// field parses as `i64`, else `Float` if every non-empty field parses as
/// `f64`, else `Categorical`.
pub fn parse_csv(text: &str) -> Result<Table> {
    let mut records = Vec::new();
    let mut record = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    record.push(std::mem::take(&mut field));
                    // Note trailing comma yields an empty final field, which
                    // the flush below pushes.
                }
                '\r' => {}
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(Error::Csv("unterminated quoted field".into()));
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }

    let mut it = records.into_iter();
    let header = it.next().ok_or_else(|| Error::Csv("empty input".into()))?;
    let rows: Vec<Vec<String>> = it.collect();
    for (i, r) in rows.iter().enumerate() {
        if r.len() != header.len() {
            return Err(Error::Csv(format!(
                "row {} has {} fields, header has {}",
                i + 2,
                r.len(),
                header.len()
            )));
        }
    }

    let types: Vec<DataType> = (0..header.len())
        .map(|c| infer_type(rows.iter().map(|r| r[c].as_str())))
        .collect();

    let fields = header
        .iter()
        .zip(&types)
        .map(|(name, &ty)| Field::new(name.trim(), ty))
        .collect();
    let mut builder = TableBuilder::new(fields)?;
    for row in &rows {
        let values = row
            .iter()
            .zip(&types)
            .map(|(raw, &ty)| parse_value(raw, ty))
            .collect::<Result<Vec<_>>>()?;
        builder.push_row(values)?;
    }
    Ok(builder.finish())
}

fn infer_type<'a>(mut fields: impl Iterator<Item = &'a str>) -> DataType {
    let mut ty = DataType::Int;
    let mut saw_any = false;
    for f in fields.by_ref() {
        let f = f.trim();
        if f.is_empty() {
            continue;
        }
        saw_any = true;
        match ty {
            DataType::Int => {
                if f.parse::<i64>().is_err() {
                    ty = if f.parse::<f64>().is_ok() {
                        DataType::Float
                    } else {
                        DataType::Categorical
                    };
                }
            }
            DataType::Float => {
                if f.parse::<f64>().is_err() {
                    ty = DataType::Categorical;
                }
            }
            DataType::Categorical => break,
        }
    }
    if saw_any {
        ty
    } else {
        DataType::Categorical
    }
}

fn parse_value(raw: &str, ty: DataType) -> Result<Value> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Ok(Value::Null);
    }
    Ok(match ty {
        DataType::Int => Value::Int(
            raw.parse::<i64>()
                .map_err(|e| Error::Csv(format!("bad int {raw:?}: {e}")))?,
        ),
        DataType::Float => Value::Float(
            raw.parse::<f64>()
                .map_err(|e| Error::Csv(format!("bad float {raw:?}: {e}")))?,
        ),
        DataType::Categorical => Value::Str(raw.to_owned()),
    })
}

/// Serializes a table to CSV text (header row plus one line per row).
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    let names = table.schema().names();
    out.push_str(&names.join(","));
    out.push('\n');
    for row in 0..table.num_rows() {
        for col in 0..table.num_columns() {
            if col > 0 {
                out.push(',');
            }
            match table.value(row, col) {
                Value::Null => {}
                Value::Str(s) => {
                    if s.contains(',') || s.contains('"') || s.contains('\n') {
                        out.push('"');
                        out.push_str(&s.replace('"', "\"\""));
                        out.push('"');
                    } else {
                        out.push_str(&s);
                    }
                }
                v => out.push_str(&v.to_string()),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_typed_columns() {
        let t = parse_csv("Make,Price,Score\nFord,25000,4.5\nJeep,31000,3.9\n").unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.schema().field(0).data_type, DataType::Categorical);
        assert_eq!(t.schema().field(1).data_type, DataType::Int);
        assert_eq!(t.schema().field(2).data_type, DataType::Float);
        assert_eq!(t.value(1, 1), Value::Int(31_000));
    }

    #[test]
    fn empty_fields_are_null() {
        let t = parse_csv("A,B\n1,\n,x\n").unwrap();
        assert_eq!(t.value(0, 1), Value::Null);
        assert_eq!(t.value(1, 0), Value::Null);
    }

    #[test]
    fn quoted_fields_with_commas_and_escapes() {
        let t = parse_csv("A\n\"hello, \"\"world\"\"\"\n").unwrap();
        assert_eq!(t.value(0, 0), Value::Str("hello, \"world\"".into()));
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(parse_csv("A,B\n1\n").is_err());
        assert!(parse_csv("").is_err());
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(parse_csv("A\n\"oops\n").is_err());
    }

    #[test]
    fn round_trip() {
        let src = "Make,Price\nFord,25000\n\"a,b\",1\n";
        let t = parse_csv(src).unwrap();
        let out = to_csv(&t);
        let t2 = parse_csv(&out).unwrap();
        assert_eq!(t2.num_rows(), t.num_rows());
        assert_eq!(t2.value(1, 0), Value::Str("a,b".into()));
    }

    #[test]
    fn mixed_int_then_string_becomes_categorical() {
        let t = parse_csv("A\n1\nx\n").unwrap();
        assert_eq!(t.schema().field(0).data_type, DataType::Categorical);
        assert_eq!(t.value(0, 0), Value::Str("1".into()));
    }
}
