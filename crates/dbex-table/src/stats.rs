//! Per-column summary statistics.
//!
//! The "simple summary statistics" of the paper's introduction (count,
//! nulls, distinct values, range, mean, top values) — useful on their own
//! and as the payload of `DESCRIBE`-style inspection, but, as the paper
//! argues, no substitute for context-dependent summarization.

use crate::column::Column;
use crate::table::Table;
use crate::value::DataType;
#[cfg(test)]
use crate::value::Value;
use crate::view::View;
use std::collections::HashMap;

/// Summary of one column over a set of rows.
#[derive(Debug, Clone)]
pub struct ColumnSummary {
    /// Attribute name.
    pub name: String,
    /// Attribute type.
    pub data_type: DataType,
    /// Rows examined.
    pub rows: usize,
    /// NULL count.
    pub nulls: usize,
    /// Distinct non-NULL values.
    pub distinct: usize,
    /// Minimum (numeric columns only).
    pub min: Option<f64>,
    /// Maximum (numeric columns only).
    pub max: Option<f64>,
    /// Mean (numeric columns only).
    pub mean: Option<f64>,
    /// Population standard deviation (numeric columns only).
    pub std_dev: Option<f64>,
    /// Most frequent values with counts, descending (categorical columns;
    /// at most five).
    pub top_values: Vec<(String, usize)>,
}

/// Summarizes one column of `view`.
pub fn summarize_column(view: &View<'_>, col: usize) -> ColumnSummary {
    let table = view.table();
    let column = table.column(col);
    let field = table.schema().field(col);
    let mut nulls = 0usize;

    match column {
        Column::Int { .. } | Column::Float { .. } => {
            let mut n = 0usize;
            let mut sum = 0.0;
            let mut sum_sq = 0.0;
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            let mut distinct: std::collections::HashSet<u64> = std::collections::HashSet::new();
            for &row in view.row_ids() {
                match column.get_f64(row as usize) {
                    Some(v) => {
                        n += 1;
                        sum += v;
                        sum_sq += v * v;
                        min = min.min(v);
                        max = max.max(v);
                        distinct.insert(v.to_bits());
                    }
                    None => nulls += 1,
                }
            }
            let mean = (n > 0).then(|| sum / n as f64);
            let std_dev = (n > 0).then(|| {
                let m = sum / n as f64;
                (sum_sq / n as f64 - m * m).max(0.0).sqrt()
            });
            ColumnSummary {
                name: field.name.clone(),
                data_type: field.data_type,
                rows: view.len(),
                nulls,
                distinct: distinct.len(),
                min: (n > 0).then_some(min),
                max: (n > 0).then_some(max),
                mean,
                std_dev,
                top_values: Vec::new(),
            }
        }
        Column::Categorical { .. } => {
            let mut counts: HashMap<u32, usize> = HashMap::new();
            for &row in view.row_ids() {
                match column.get_code(row as usize) {
                    Some(code) if code != crate::dict::NULL_CODE => {
                        *counts.entry(code).or_insert(0) += 1;
                    }
                    _ => nulls += 1,
                }
            }
            let dict = column.dictionary();
            let mut top: Vec<(String, usize)> = counts
                .iter()
                .map(|(&code, &n)| {
                    let label = dict.and_then(|d| d.resolve(code)).unwrap_or("?");
                    (label.to_owned(), n)
                })
                .collect();
            top.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            let distinct = top.len();
            top.truncate(5);
            ColumnSummary {
                name: field.name.clone(),
                data_type: field.data_type,
                rows: view.len(),
                nulls,
                distinct,
                min: None,
                max: None,
                mean: None,
                std_dev: None,
                top_values: top,
            }
        }
    }
}

/// Summarizes every column of `table`.
pub fn summarize_table(table: &Table) -> Vec<ColumnSummary> {
    let view = table.full_view();
    (0..table.num_columns())
        .map(|c| summarize_column(&view, c))
        .collect()
}

impl ColumnSummary {
    /// One-line rendering for `DESCRIBE`-style output.
    pub fn render(&self) -> String {
        match self.data_type {
            DataType::Categorical => {
                let tops: Vec<String> = self
                    .top_values
                    .iter()
                    .map(|(v, n)| format!("{v}({n})"))
                    .collect();
                format!(
                    "{}: {} distinct, {} nulls, top: {}",
                    self.name,
                    self.distinct,
                    self.nulls,
                    tops.join(", ")
                )
            }
            _ => format!(
                "{}: range [{}, {}], mean {:.1}, sd {:.1}, {} distinct, {} nulls",
                self.name,
                self.min.map(|v| v.to_string()).unwrap_or_default(),
                self.max.map(|v| v.to_string()).unwrap_or_default(),
                self.mean.unwrap_or(0.0),
                self.std_dev.unwrap_or(0.0),
                self.distinct,
                self.nulls
            ),
        }
    }
}

// Re-export-friendly helper for the query layer.
impl Table {
    /// Summaries for every column (see [`summarize_table`]).
    pub fn summaries(&self) -> Vec<ColumnSummary> {
        summarize_table(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::table::TableBuilder;

    fn table() -> Table {
        let mut b = TableBuilder::new(vec![
            Field::new("Make", DataType::Categorical),
            Field::new("Price", DataType::Int),
        ])
        .unwrap();
        for (m, p) in [("Ford", 10), ("Ford", 20), ("Jeep", 30)] {
            b.push_row(vec![m.into(), p.into()]).unwrap();
        }
        b.push_row(vec![Value::Null, Value::Null]).unwrap();
        b.finish()
    }

    #[test]
    fn numeric_summary() {
        let t = table();
        let s = summarize_column(&t.full_view(), 1);
        assert_eq!(s.rows, 4);
        assert_eq!(s.nulls, 1);
        assert_eq!(s.distinct, 3);
        assert_eq!(s.min, Some(10.0));
        assert_eq!(s.max, Some(30.0));
        assert_eq!(s.mean, Some(20.0));
        let expected_sd = (200.0f64 / 3.0).sqrt();
        assert!((s.std_dev.unwrap() - expected_sd).abs() < 1e-9);
        assert!(s.render().contains("range [10, 30]"));
    }

    #[test]
    fn categorical_summary() {
        let t = table();
        let s = summarize_column(&t.full_view(), 0);
        assert_eq!(s.distinct, 2);
        assert_eq!(s.nulls, 1);
        assert_eq!(s.top_values[0], ("Ford".to_string(), 2));
        assert!(s.render().contains("Ford(2)"));
    }

    #[test]
    fn view_scoped_summary() {
        let t = table();
        let ford = t.filter(&crate::Predicate::eq("Make", "Ford")).unwrap();
        let s = summarize_column(&ford, 1);
        assert_eq!(s.rows, 2);
        assert_eq!(s.mean, Some(15.0));
    }

    #[test]
    fn table_summaries_cover_all_columns() {
        let t = table();
        let all = t.summaries();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].name, "Make");
        assert_eq!(all[1].name, "Price");
    }

    #[test]
    fn empty_view_summary() {
        let t = table();
        let empty = t.filter(&crate::Predicate::eq("Make", "Tesla")).unwrap();
        let s = summarize_column(&empty, 1);
        assert_eq!(s.rows, 0);
        assert_eq!(s.mean, None);
        assert_eq!(s.min, None);
    }
}
