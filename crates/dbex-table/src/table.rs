//! Tables: a schema plus columns, with row-oriented construction helpers.

use crate::column::Column;
use crate::error::{Error, Result};
use crate::predicate::Predicate;
use crate::schema::{Field, Schema};
use crate::value::Value;
#[cfg(test)]
use crate::value::DataType;
use crate::view::View;

/// An immutable, in-memory columnar table.
///
/// Construct with [`TableBuilder`]. Row identity is positional (`0..n`);
/// result sets are represented as [`View`]s over row-id subsets rather than
/// materialized copies.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
    id: u64,
}

/// Monotonic id source for [`Table::id`].
static NEXT_TABLE_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl Table {
    /// Process-unique identity of this table's contents.
    ///
    /// Assigned once when the builder finishes; clones share the id (their
    /// contents are identical), while any rebuilt table gets a fresh one.
    /// [`View::fingerprint`] folds this in so cached per-view statistics
    /// never survive a table swap.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column at position `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column with attribute name `name`.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// Value at (`row`, `col`).
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].get(row)
    }

    /// Materializes a full row as values, in schema order.
    pub fn row(&self, row: usize) -> Result<Vec<Value>> {
        if row >= self.rows {
            return Err(Error::RowOutOfBounds {
                row,
                len: self.rows,
            });
        }
        Ok(self.columns.iter().map(|c| c.get(row)).collect())
    }

    /// A [`View`] containing every row of the table.
    pub fn full_view(&self) -> View<'_> {
        View::all(self)
    }

    /// Evaluates `predicate` over all rows, returning the selected view.
    ///
    /// This is the engine's `SELECT * FROM t WHERE ...` primitive; the query
    /// layer in `dbex-query` compiles SQL text down to this call. The scan
    /// runs through the columnar batch kernels in [`crate::batch`].
    pub fn filter(&self, predicate: &Predicate) -> Result<View<'_>> {
        self.full_view().refine(predicate)
    }
}

/// Incremental, row-at-a-time table constructor.
///
/// ```
/// use dbex_table::{TableBuilder, Field, DataType, Value};
///
/// let mut b = TableBuilder::new(vec![
///     Field::new("Make", DataType::Categorical),
///     Field::new("Price", DataType::Int),
/// ]).unwrap();
/// b.push_row(vec![Value::from("Ford"), Value::from(25_000)]).unwrap();
/// let table = b.finish();
/// assert_eq!(table.num_rows(), 1);
/// ```
#[derive(Debug)]
pub struct TableBuilder {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl TableBuilder {
    /// Starts a builder for the given fields.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        let schema = Schema::new(fields)?;
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::empty(f.data_type))
            .collect();
        Ok(TableBuilder {
            schema,
            columns,
            rows: 0,
        })
    }

    /// Appends one row. The value count must match the schema arity.
    pub fn push_row(&mut self, values: Vec<Value>) -> Result<()> {
        if values.len() != self.columns.len() {
            return Err(Error::ArityMismatch {
                expected: self.columns.len(),
                found: values.len(),
            });
        }
        for (i, value) in values.into_iter().enumerate() {
            self.columns[i].push(value, &self.schema.field(i).name)?;
        }
        self.rows += 1;
        Ok(())
    }

    /// Number of rows appended so far.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Finalizes the builder into an immutable [`Table`].
    pub fn finish(self) -> Table {
        Table {
            schema: self.schema,
            columns: self.columns,
            rows: self.rows,
            id: NEXT_TABLE_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cars() -> Table {
        let mut b = TableBuilder::new(vec![
            Field::new("Make", DataType::Categorical),
            Field::new("Price", DataType::Int),
            Field::new("Mileage", DataType::Int),
        ])
        .unwrap();
        for (make, price, miles) in [
            ("Ford", 25_000, 12_000),
            ("Ford", 32_000, 28_000),
            ("Jeep", 28_000, 20_000),
            ("Chevrolet", 45_000, 9_000),
        ] {
            b.push_row(vec![make.into(), price.into(), miles.into()])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn build_and_access() {
        let t = cars();
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.num_columns(), 3);
        assert_eq!(t.value(2, 0), Value::Str("Jeep".into()));
        assert_eq!(t.row(0).unwrap()[1], Value::Int(25_000));
        assert!(t.row(99).is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut b = TableBuilder::new(vec![Field::new("A", DataType::Int)]).unwrap();
        assert!(b.push_row(vec![]).is_err());
        assert!(b.push_row(vec![Value::Int(1), Value::Int(2)]).is_err());
    }

    #[test]
    fn filter_by_predicate() {
        let t = cars();
        let p = Predicate::and(vec![
            Predicate::eq("Make", "Ford"),
            Predicate::between("Mileage", 10_000, 30_000),
        ]);
        let v = t.filter(&p).unwrap();
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn filter_unknown_attribute_errors() {
        let t = cars();
        let p = Predicate::eq("Nope", "x");
        assert!(t.filter(&p).is_err());
    }
}
