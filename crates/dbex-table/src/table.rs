//! Tables: a schema plus columns, with row-oriented construction helpers.

use crate::column::Column;
use crate::error::{Error, Result};
use crate::predicate::Predicate;
use crate::schema::{Field, Schema};
use crate::value::Value;
#[cfg(test)]
use crate::value::DataType;
use crate::view::View;

/// An immutable, in-memory columnar table.
///
/// Construct with [`TableBuilder`]. Row identity is positional (`0..n`);
/// result sets are represented as [`View`]s over row-id subsets rather than
/// materialized copies.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
    id: u64,
}

/// Monotonic id source for [`Table::id`].
static NEXT_TABLE_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl Table {
    /// Process-unique identity of this table's contents.
    ///
    /// Assigned once when the builder finishes; clones share the id (their
    /// contents are identical), while any rebuilt table gets a fresh one.
    /// [`View::fingerprint`] folds this in so cached per-view statistics
    /// never survive a table swap.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column at position `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column with attribute name `name`.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// Value at (`row`, `col`).
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].get(row)
    }

    /// Materializes a full row as values, in schema order.
    pub fn row(&self, row: usize) -> Result<Vec<Value>> {
        if row >= self.rows {
            return Err(Error::RowOutOfBounds {
                row,
                len: self.rows,
            });
        }
        Ok(self.columns.iter().map(|c| c.get(row)).collect())
    }

    /// A [`View`] containing every row of the table.
    pub fn full_view(&self) -> View<'_> {
        View::all(self)
    }

    /// Evaluates `predicate` over all rows, returning the selected view.
    ///
    /// This is the engine's `SELECT * FROM t WHERE ...` primitive; the query
    /// layer in `dbex-query` compiles SQL text down to this call. The scan
    /// runs through the columnar batch kernels in [`crate::batch`].
    pub fn filter(&self, predicate: &Predicate) -> Result<View<'_>> {
        self.full_view().refine(predicate)
    }

    /// Assembles a table directly from a schema and pre-built columns with
    /// a fresh [`Table::id`] — the decode path of `dbex-store`'s segment
    /// files, and the reason every invariant the builder guarantees is
    /// re-validated here: arity, per-column types, uniform row counts,
    /// null-mask lengths, and categorical codes in dictionary range. A
    /// corrupt-but-checksum-valid input must surface as a typed error,
    /// never as a panic in a later scan.
    pub fn from_parts(schema: Schema, columns: Vec<Column>, rows: usize) -> Result<Table> {
        validate_parts(&schema, &columns, rows)?;
        Ok(Table {
            schema,
            columns,
            rows,
            id: NEXT_TABLE_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        })
    }

    /// Like [`Table::from_parts`], but first tries to re-adopt the id the
    /// table was persisted under, so fingerprints computed against the
    /// pre-crash table (e.g. persisted cluster-solution cache keys) remain
    /// valid after a warm restart.
    ///
    /// Adoption succeeds only when `persisted_id` is still ahead of the
    /// process's id counter — i.e. no table in this process has taken it —
    /// and atomically bumps the counter past it. Returns the table plus
    /// whether the id was adopted; on `false` the table carries a fresh id
    /// and any persisted fingerprints referring to `persisted_id` must be
    /// discarded (they can never collide with the fresh id).
    pub fn from_parts_adopting(
        schema: Schema,
        columns: Vec<Column>,
        rows: usize,
        persisted_id: u64,
    ) -> Result<(Table, bool)> {
        validate_parts(&schema, &columns, rows)?;
        let adopted = persisted_id != 0
            && persisted_id != u64::MAX
            && NEXT_TABLE_ID
                .fetch_update(
                    std::sync::atomic::Ordering::Relaxed,
                    std::sync::atomic::Ordering::Relaxed,
                    |current| (persisted_id >= current).then_some(persisted_id + 1),
                )
                .is_ok();
        let id = if adopted {
            persisted_id
        } else {
            NEXT_TABLE_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        };
        Ok((
            Table {
                schema,
                columns,
                rows,
                id,
            },
            adopted,
        ))
    }
}

/// Shared validation for the `from_parts*` constructors.
fn validate_parts(schema: &Schema, columns: &[Column], rows: usize) -> Result<()> {
    if columns.len() != schema.len() {
        return Err(Error::ArityMismatch {
            expected: schema.len(),
            found: columns.len(),
        });
    }
    for (i, column) in columns.iter().enumerate() {
        let field = schema.field(i);
        if column.data_type() != field.data_type {
            return Err(Error::TypeMismatch {
                attribute: field.name.clone(),
                expected: field.data_type.to_string(),
                found: column.data_type().to_string(),
            });
        }
        if column.len() != rows {
            return Err(Error::Invalid(format!(
                "column {} has {} rows, expected {rows}",
                field.name,
                column.len()
            )));
        }
        match column {
            Column::Int { data, nulls } => {
                if data.len() != nulls.len() {
                    return Err(Error::Invalid(format!(
                        "column {}: {} values but {} null flags",
                        field.name,
                        data.len(),
                        nulls.len()
                    )));
                }
            }
            Column::Float { data, nulls } => {
                if data.len() != nulls.len() {
                    return Err(Error::Invalid(format!(
                        "column {}: {} values but {} null flags",
                        field.name,
                        data.len(),
                        nulls.len()
                    )));
                }
            }
            Column::Categorical { codes, dict } => {
                for (row, &code) in codes.iter().enumerate() {
                    if code != crate::dict::NULL_CODE && (code as usize) >= dict.len() {
                        return Err(Error::Invalid(format!(
                            "column {} row {row}: code {code} outside dictionary of {} values",
                            field.name,
                            dict.len()
                        )));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Incremental, row-at-a-time table constructor.
///
/// ```
/// use dbex_table::{TableBuilder, Field, DataType, Value};
///
/// let mut b = TableBuilder::new(vec![
///     Field::new("Make", DataType::Categorical),
///     Field::new("Price", DataType::Int),
/// ]).unwrap();
/// b.push_row(vec![Value::from("Ford"), Value::from(25_000)]).unwrap();
/// let table = b.finish();
/// assert_eq!(table.num_rows(), 1);
/// ```
#[derive(Debug)]
pub struct TableBuilder {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl TableBuilder {
    /// Starts a builder for the given fields.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        let schema = Schema::new(fields)?;
        let columns = schema
            .fields()
            .iter()
            .map(|f| Column::empty(f.data_type))
            .collect();
        Ok(TableBuilder {
            schema,
            columns,
            rows: 0,
        })
    }

    /// Appends one row. The value count must match the schema arity.
    pub fn push_row(&mut self, values: Vec<Value>) -> Result<()> {
        if values.len() != self.columns.len() {
            return Err(Error::ArityMismatch {
                expected: self.columns.len(),
                found: values.len(),
            });
        }
        for (i, value) in values.into_iter().enumerate() {
            self.columns[i].push(value, &self.schema.field(i).name)?;
        }
        self.rows += 1;
        Ok(())
    }

    /// Number of rows appended so far.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Finalizes the builder into an immutable [`Table`].
    pub fn finish(self) -> Table {
        Table {
            schema: self.schema,
            columns: self.columns,
            rows: self.rows,
            id: NEXT_TABLE_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cars() -> Table {
        let mut b = TableBuilder::new(vec![
            Field::new("Make", DataType::Categorical),
            Field::new("Price", DataType::Int),
            Field::new("Mileage", DataType::Int),
        ])
        .unwrap();
        for (make, price, miles) in [
            ("Ford", 25_000, 12_000),
            ("Ford", 32_000, 28_000),
            ("Jeep", 28_000, 20_000),
            ("Chevrolet", 45_000, 9_000),
        ] {
            b.push_row(vec![make.into(), price.into(), miles.into()])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn build_and_access() {
        let t = cars();
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.num_columns(), 3);
        assert_eq!(t.value(2, 0), Value::Str("Jeep".into()));
        assert_eq!(t.row(0).unwrap()[1], Value::Int(25_000));
        assert!(t.row(99).is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut b = TableBuilder::new(vec![Field::new("A", DataType::Int)]).unwrap();
        assert!(b.push_row(vec![]).is_err());
        assert!(b.push_row(vec![Value::Int(1), Value::Int(2)]).is_err());
    }

    #[test]
    fn filter_by_predicate() {
        let t = cars();
        let p = Predicate::and(vec![
            Predicate::eq("Make", "Ford"),
            Predicate::between("Mileage", 10_000, 30_000),
        ]);
        let v = t.filter(&p).unwrap();
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn filter_unknown_attribute_errors() {
        let t = cars();
        let p = Predicate::eq("Nope", "x");
        assert!(t.filter(&p).is_err());
    }

    #[test]
    fn from_parts_validates_every_invariant() {
        use crate::dict::{Dictionary, NULL_CODE};
        let schema = || {
            Schema::new(vec![
                Field::new("Make", DataType::Categorical),
                Field::new("Price", DataType::Int),
            ])
            .unwrap()
        };
        let mut dict = Dictionary::new();
        dict.intern("Ford");
        let good_cat = Column::Categorical {
            codes: vec![0, NULL_CODE],
            dict: dict.clone(),
        };
        let good_int = Column::Int {
            data: vec![1, 2],
            nulls: vec![false, false],
        };

        let t = Table::from_parts(schema(), vec![good_cat.clone(), good_int.clone()], 2).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.value(0, 0), Value::Str("Ford".into()));

        // Arity.
        assert!(Table::from_parts(schema(), vec![good_int.clone()], 2).is_err());
        // Type mismatch against the schema.
        assert!(Table::from_parts(schema(), vec![good_int.clone(), good_int.clone()], 2).is_err());
        // Row-count mismatch.
        assert!(Table::from_parts(schema(), vec![good_cat.clone(), good_int.clone()], 3).is_err());
        // Null mask length mismatch.
        let bad_nulls = Column::Int {
            data: vec![1, 2],
            nulls: vec![false],
        };
        let r = Table::from_parts(schema(), vec![good_cat.clone(), bad_nulls], 2);
        assert!(r.is_err(), "{r:?}");
        // Out-of-range categorical code (would panic in cardinality()).
        let bad_code = Column::Categorical {
            codes: vec![0, 7],
            dict,
        };
        assert!(Table::from_parts(schema(), vec![bad_code, good_int], 2).is_err());
    }

    #[test]
    fn id_adoption_is_unique_and_monotonic() {
        let schema = || Schema::new(vec![Field::new("A", DataType::Int)]).unwrap();
        let col = || Column::Int {
            data: vec![5],
            nulls: vec![false],
        };
        // Reserve a known-fresh id by burning one off the counter.
        let probe = Table::from_parts(schema(), vec![col()], 1).unwrap();
        let target = probe.id() + 10;

        let (t1, adopted1) = Table::from_parts_adopting(schema(), vec![col()], 1, target).unwrap();
        assert!(adopted1);
        assert_eq!(t1.id(), target);

        // The same persisted id cannot be adopted twice in one process.
        let (t2, adopted2) = Table::from_parts_adopting(schema(), vec![col()], 1, target).unwrap();
        assert!(!adopted2);
        assert_ne!(t2.id(), t1.id());

        // Fresh builder ids never collide with the adopted id.
        let fresh = Table::from_parts(schema(), vec![col()], 1).unwrap();
        assert!(fresh.id() > target);

        // Sentinel ids are never adopted.
        let (_, adopted0) = Table::from_parts_adopting(schema(), vec![col()], 1, 0).unwrap();
        assert!(!adopted0);
        let (_, adopted_max) =
            Table::from_parts_adopting(schema(), vec![col()], 1, u64::MAX).unwrap();
        assert!(!adopted_max);
    }
}
