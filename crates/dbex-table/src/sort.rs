//! Sorting views by one or more attributes.
//!
//! The paper's Limitation 1 discussion notes that tuple-wise result
//! presentation "could be sorted on some important attributes" — the query
//! layer supports `ORDER BY`, and exploratory flows sort IUnit members when
//! drilling into a cluster.

use crate::error::Result;
use crate::view::View;
use std::cmp::Ordering;

/// One sort key: attribute name plus direction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortKey {
    /// Attribute to sort by.
    pub attribute: String,
    /// `true` for ascending (the default), `false` for descending.
    pub ascending: bool,
}

impl SortKey {
    /// Ascending key.
    pub fn asc(attribute: impl Into<String>) -> SortKey {
        SortKey {
            attribute: attribute.into(),
            ascending: true,
        }
    }

    /// Descending key.
    pub fn desc(attribute: impl Into<String>) -> SortKey {
        SortKey {
            attribute: attribute.into(),
            ascending: false,
        }
    }
}

/// Returns a new view with the same rows ordered by `keys` (stable sort,
/// NULLs first on ascending keys — matching [`crate::Value::total_cmp`]).
pub fn sort_view<'a>(view: &View<'a>, keys: &[SortKey]) -> Result<View<'a>> {
    let table = view.table();
    let cols: Vec<(usize, bool)> = keys
        .iter()
        .map(|k| Ok((table.schema().index_of(&k.attribute)?, k.ascending)))
        .collect::<Result<_>>()?;
    let mut rows: Vec<u32> = view.row_ids().to_vec();
    rows.sort_by(|&a, &b| {
        for &(col, ascending) in &cols {
            let va = table.value(a as usize, col);
            let vb = table.value(b as usize, col);
            let ord = va.total_cmp(&vb);
            if ord != Ordering::Equal {
                return if ascending { ord } else { ord.reverse() };
            }
        }
        Ordering::Equal
    });
    Ok(View::from_rows(table, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::table::TableBuilder;
    use crate::value::{DataType, Value};

    fn table() -> crate::table::Table {
        let mut b = TableBuilder::new(vec![
            Field::new("Make", DataType::Categorical),
            Field::new("Price", DataType::Int),
        ])
        .unwrap();
        for (m, p) in [
            ("Jeep", 30),
            ("Ford", 20),
            ("Ford", 10),
            ("Jeep", 10),
        ] {
            b.push_row(vec![m.into(), p.into()]).unwrap();
        }
        b.push_row(vec!["Ford".into(), Value::Null]).unwrap();
        b.finish()
    }

    #[test]
    fn single_key_ascending_nulls_first() {
        let t = table();
        let sorted = sort_view(&t.full_view(), &[SortKey::asc("Price")]).unwrap();
        let prices: Vec<Value> = (0..sorted.len()).map(|i| sorted.value(i, 1)).collect();
        assert_eq!(prices[0], Value::Null);
        assert_eq!(prices[1], Value::Int(10));
        assert_eq!(prices[4], Value::Int(30));
    }

    #[test]
    fn multi_key_sort() {
        let t = table();
        let sorted = sort_view(
            &t.full_view(),
            &[SortKey::asc("Make"), SortKey::desc("Price")],
        )
        .unwrap();
        // Ford block first (NULL price sorts last on descending key),
        // then Jeep block 30, 10.
        let rows: Vec<(String, Value)> = (0..sorted.len())
            .map(|i| (sorted.value(i, 0).to_string(), sorted.value(i, 1)))
            .collect();
        assert_eq!(rows[0], ("Ford".into(), Value::Int(20)));
        assert_eq!(rows[1], ("Ford".into(), Value::Int(10)));
        assert_eq!(rows[2], ("Ford".into(), Value::Null));
        assert_eq!(rows[3], ("Jeep".into(), Value::Int(30)));
        assert_eq!(rows[4], ("Jeep".into(), Value::Int(10)));
    }

    #[test]
    fn stability_preserves_input_order_on_ties() {
        let t = table();
        let sorted = sort_view(&t.full_view(), &[SortKey::asc("Make")]).unwrap();
        // Ford rows keep original relative order 1, 2, 4.
        let ford_rows: Vec<u32> = sorted
            .row_ids()
            .iter()
            .copied()
            .filter(|&r| t.value(r as usize, 0) == Value::Str("Ford".into()))
            .collect();
        assert_eq!(ford_rows, vec![1, 2, 4]);
    }

    #[test]
    fn unknown_attribute_errors() {
        let t = table();
        assert!(sort_view(&t.full_view(), &[SortKey::asc("Nope")]).is_err());
    }
}
