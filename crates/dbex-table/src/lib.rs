//! # dbex-table
//!
//! In-memory columnar relational engine underpinning DBExplorer.
//!
//! The EDBT 2016 paper assumes "a traditional relational database" as the
//! substrate that produces result sets `R` which the CAD View then
//! summarizes. This crate provides that substrate:
//!
//! * a typed, dictionary-encoded columnar [`Table`] ([`column::Column`],
//!   [`dict::Dictionary`], [`schema::Schema`]),
//! * a predicate AST ([`predicate::Predicate`]) covering the operators used
//!   throughout the paper (`=`, `BETWEEN`, `IN`, `AND`, `OR`, ...),
//! * zero-copy result sets as row-id selections ([`view::View`]),
//! * CSV import/export ([`csv`]) for loading external datasets.
//!
//! The engine is deliberately single-node and in-memory: the paper's
//! evaluation operates on result sets of at most ~40K tuples and 11-23
//! attributes, and its latency budget (interactive, <1s) is met without
//! persistence or parallelism.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod aggregate;
pub mod batch;
pub mod column;
pub mod csv;
pub mod dict;
pub mod error;
pub mod predicate;
pub mod schema;
pub mod sort;
pub mod stats;
pub mod table;
pub mod value;
pub mod view;

pub use aggregate::{group_by, Aggregate};
pub use column::Column;
pub use csv::{parse_csv, parse_csv_lossy, to_csv, CsvImport};
pub use dict::Dictionary;
pub use error::{Error, Result};
pub use predicate::Predicate;
pub use schema::{Field, Schema};
pub use sort::{sort_view, SortKey};
pub use stats::{summarize_column, summarize_table, ColumnSummary};
pub use table::{Table, TableBuilder};
pub use value::{DataType, Value};
pub use view::View;
