//! Error type shared by the storage layer.

use std::fmt;

/// Errors produced by the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// An attribute name was not found in the schema.
    UnknownAttribute(String),
    /// A value's type did not match the column's declared type.
    TypeMismatch {
        /// Attribute on which the mismatch occurred.
        attribute: String,
        /// Human-readable description of what was expected.
        expected: String,
        /// Human-readable description of what was found.
        found: String,
    },
    /// Row data had the wrong arity for the schema.
    ArityMismatch {
        /// Number of columns the schema declares.
        expected: usize,
        /// Number of values supplied.
        found: usize,
    },
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// The offending row index.
        row: usize,
        /// The number of rows in the table.
        len: usize,
    },
    /// Malformed CSV input, located as precisely as possible.
    Csv {
        /// 1-based physical line of the offending input (0 when the error
        /// is not tied to a line, e.g. empty input).
        line: usize,
        /// 1-based field index within the line, when the failure is tied
        /// to one.
        column: Option<usize>,
        /// What went wrong.
        message: String,
    },
    /// Any other constraint violation.
    Invalid(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownAttribute(name) => write!(f, "unknown attribute: {name}"),
            Error::TypeMismatch {
                attribute,
                expected,
                found,
            } => write!(
                f,
                "type mismatch on attribute {attribute}: expected {expected}, found {found}"
            ),
            Error::ArityMismatch { expected, found } => {
                write!(f, "row arity mismatch: expected {expected}, found {found}")
            }
            Error::RowOutOfBounds { row, len } => {
                write!(f, "row index {row} out of bounds for table with {len} rows")
            }
            Error::Csv {
                line,
                column,
                message,
            } => {
                write!(f, "csv error")?;
                if *line > 0 {
                    write!(f, " at line {line}")?;
                }
                if let Some(c) = column {
                    write!(f, ", column {c}")?;
                }
                write!(f, ": {message}")
            }
            Error::Invalid(msg) => write!(f, "invalid operation: {msg}"),
        }
    }
}

impl Error {
    /// Builds a located CSV error. `line` and `column` are 1-based;
    /// pass `line = 0` / `column = None` when the failure has no precise
    /// location.
    pub fn csv(line: usize, column: Option<usize>, message: impl Into<String>) -> Error {
        Error::Csv {
            line,
            column,
            message: message.into(),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the storage layer.
pub type Result<T> = std::result::Result<T, Error>;
