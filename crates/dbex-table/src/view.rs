//! Views: result sets as row-id selections over a base table.

use crate::error::Result;
use crate::predicate::Predicate;
use crate::table::Table;
use crate::value::Value;

/// A result set `R`: an ordered subset of a base table's rows.
///
/// Views are cheap to create and compose — refining a faceted selection or
/// applying a CAD View's WHERE clause never copies column data, it only
/// produces a new row-id vector. All downstream algorithms (feature
/// selection, clustering, digests) iterate row ids through a `View`.
#[derive(Debug, Clone)]
pub struct View<'a> {
    table: &'a Table,
    rows: Vec<u32>,
}

impl<'a> View<'a> {
    /// A view over every row of `table`.
    pub fn all(table: &'a Table) -> Self {
        View {
            table,
            rows: (0..table.num_rows() as u32).collect(),
        }
    }

    /// A view over an explicit row-id list.
    ///
    /// Row ids must be valid for `table`; this is enforced lazily at access
    /// time (out-of-range ids panic like slice indexing).
    pub fn from_rows(table: &'a Table, rows: Vec<u32>) -> Self {
        View { table, rows }
    }

    /// The underlying table.
    pub fn table(&self) -> &'a Table {
        self.table
    }

    /// Selected row ids, in order.
    pub fn row_ids(&self) -> &[u32] {
        &self.rows
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff no rows are selected.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Order-sensitive 64-bit fingerprint of (table identity, row selection).
    ///
    /// Two views with equal fingerprints select the same rows of the same
    /// table (up to negligible FNV-1a collision probability), so the
    /// fingerprint serves as a cache key for per-view statistics: any change
    /// to the selection — or a rebuilt table, which gets a fresh
    /// [`Table::id`] — changes the fingerprint and invalidates the entry.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut hash = OFFSET;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(PRIME);
            }
        };
        mix(self.table.id());
        mix(self.rows.len() as u64);
        for &row in &self.rows {
            mix(u64::from(row));
        }
        hash
    }

    /// [`Self::fingerprint`] restricted to the subset of this view's rows
    /// at `positions` (indices into [`Self::row_ids`], in order).
    ///
    /// A pivot partition is exactly such a subset, so this is the identity
    /// half of the per-partition cluster-reuse cache key: it hashes the
    /// *row ids*, not the positions, so a facet refinement that renumbers
    /// positions but leaves a partition's rows (and their order) intact
    /// still produces the same fingerprint. Out-of-range positions are
    /// hashed as a sentinel instead of panicking.
    pub fn fingerprint_positions(&self, positions: &[usize]) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut hash = OFFSET;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(PRIME);
            }
        };
        mix(self.table.id());
        mix(positions.len() as u64);
        for &pos in positions {
            match self.rows.get(pos) {
                Some(&row) => mix(u64::from(row)),
                None => mix(u64::MAX),
            }
        }
        hash
    }

    /// Value of `col` at the `i`-th selected row.
    pub fn value(&self, i: usize, col: usize) -> Value {
        self.table.value(self.rows[i] as usize, col)
    }

    /// Further filters this view by `predicate`.
    ///
    /// Evaluation runs through the columnar batch kernels
    /// ([`crate::batch`]): one pass per predicate leaf over the typed
    /// column data, no per-row `Value` materialization.
    pub fn refine(&self, predicate: &Predicate) -> Result<View<'a>> {
        predicate.validate(self.table.schema())?;
        dbex_obs::counter!("table.refine.calls").incr(1);
        dbex_obs::counter!("table.rows_scanned").incr(self.rows.len() as u64);
        let rows = crate::batch::select(self.table, &self.rows, predicate)?;
        Ok(View {
            table: self.table,
            rows,
        })
    }

    /// Splits the view by the distinct codes of a categorical column.
    ///
    /// Returns `(code, row-ids)` pairs in first-appearance order. This is
    /// the partition step of CAD View construction: one partition per Pivot
    /// Attribute value.
    pub fn partition_by_code(&self, col: usize) -> Vec<(u32, Vec<u32>)> {
        dbex_obs::counter!("table.partition.calls").incr(1);
        dbex_obs::counter!("table.rows_scanned").incr(self.rows.len() as u64);
        let column = self.table.column(col);
        let (Some(codes), Some(dict)) = (column.codes(), column.dictionary()) else {
            // Non-categorical columns have no codes to partition by.
            return Vec::new();
        };
        // Dictionary codes are dense, so a code-indexed slot vector replaces
        // the HashMap: one bounds-checked index per row instead of a hash.
        const UNSEEN: usize = usize::MAX;
        let mut slots: Vec<usize> = vec![UNSEEN; dict.len()];
        let mut groups: Vec<(u32, Vec<u32>)> = Vec::new();
        for &row in &self.rows {
            let code = codes[row as usize];
            if code == crate::dict::NULL_CODE {
                continue;
            }
            let slot = &mut slots[code as usize];
            if *slot == UNSEEN {
                *slot = groups.len();
                groups.push((code, Vec::new()));
            }
            groups[*slot].1.push(row);
        }
        groups
    }

    /// Deterministic uniform subsample of at most `n` rows.
    ///
    /// Used by the paper's Optimization 1 (Section 6.3): feature selection
    /// and clustering on a 5K-10K sample match full-data results closely.
    /// A partial Fisher-Yates shuffle driven by a fixed-seed xorshift PRNG
    /// makes the sample uniform (no aliasing with periodic row orders) yet
    /// reproducible across runs.
    ///
    /// The shuffle is *sparse*: rather than cloning the whole row pool and
    /// swapping in place, displaced entries are tracked in a map holding at
    /// most `n` overrides, so sampling costs O(n) time and memory even when
    /// `n` is far smaller than the view. The PRNG draw sequence and the
    /// selected set are identical to the dense shuffle this replaced.
    pub fn sample(&self, n: usize) -> View<'a> {
        let len = self.rows.len();
        if n == 0 || len <= n {
            return self.clone();
        }
        dbex_obs::counter!("table.sample.calls").incr(1);
        dbex_obs::counter!("table.rows_sampled").incr(n as u64);
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15 ^ (len as u64);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        // displaced[p] = value virtually swapped into position p; positions
        // not present still hold self.rows[p]. Position i is consumed at
        // step i and never read again, so only the write to j is recorded.
        let mut displaced: std::collections::HashMap<usize, u32> =
            std::collections::HashMap::with_capacity(n * 2);
        let mut picked = Vec::with_capacity(n);
        for i in 0..n {
            let j = i + (next() as usize) % (len - i);
            let at = |p: usize, displaced: &std::collections::HashMap<usize, u32>| {
                displaced.get(&p).copied().unwrap_or(self.rows[p])
            };
            let vi = at(i, &displaced);
            picked.push(at(j, &displaced));
            displaced.insert(j, vi);
        }
        picked.sort_unstable();
        View {
            table: self.table,
            rows: picked,
        }
    }

    /// Intersection of two views over the same table (set semantics,
    /// preserves `self`'s order).
    pub fn intersect(&self, other: &View<'_>) -> View<'a> {
        let other_set: std::collections::HashSet<u32> = other.rows.iter().copied().collect();
        View {
            table: self.table,
            rows: self
                .rows
                .iter()
                .copied()
                .filter(|r| other_set.contains(r))
                .collect(),
        }
    }

    /// Jaccard similarity of the row sets of two views.
    ///
    /// Used to score Task 3 ("alternative search condition") retrieval
    /// quality: how close an alternative selection's result set is to the
    /// target result set.
    pub fn jaccard(&self, other: &View<'_>) -> f64 {
        if self.is_empty() && other.is_empty() {
            return 1.0;
        }
        let a: std::collections::HashSet<u32> = self.rows.iter().copied().collect();
        let b: std::collections::HashSet<u32> = other.rows.iter().copied().collect();
        let inter = a.intersection(&b).count() as f64;
        let union = a.union(&b).count() as f64;
        inter / union
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::table::TableBuilder;
    use crate::value::DataType;

    fn table() -> Table {
        let mut b = TableBuilder::new(vec![
            Field::new("Make", DataType::Categorical),
            Field::new("Price", DataType::Int),
        ])
        .unwrap();
        for (m, p) in [
            ("Ford", 10),
            ("Jeep", 20),
            ("Ford", 30),
            ("Jeep", 40),
            ("Honda", 50),
        ] {
            b.push_row(vec![m.into(), p.into()]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn all_and_refine() {
        let t = table();
        let v = t.full_view();
        assert_eq!(v.len(), 5);
        let r = v.refine(&Predicate::eq("Make", "Ford")).unwrap();
        assert_eq!(r.row_ids(), &[0, 2]);
        let r2 = r
            .refine(&Predicate::cmp("Price", crate::predicate::CmpOp::Gt, 15))
            .unwrap();
        assert_eq!(r2.row_ids(), &[2]);
    }

    #[test]
    fn partition_by_code_groups() {
        let t = table();
        let v = t.full_view();
        let parts = v.partition_by_code(0);
        assert_eq!(parts.len(), 3);
        // First-appearance order: Ford, Jeep, Honda.
        assert_eq!(parts[0].1, vec![0, 2]);
        assert_eq!(parts[1].1, vec![1, 3]);
        assert_eq!(parts[2].1, vec![4]);
    }

    #[test]
    fn sample_bounds() {
        let t = table();
        let v = t.full_view();
        assert_eq!(v.sample(3).len(), 3);
        assert_eq!(v.sample(10).len(), 5);
        assert_eq!(v.sample(0).len(), 5);
    }

    /// The sparse partial Fisher-Yates must pick exactly the rows the dense
    /// clone-the-pool shuffle picked (same PRNG, same draw sequence).
    #[test]
    fn sample_matches_dense_reference() {
        fn dense_sample(rows: &[u32], n: usize) -> Vec<u32> {
            let mut pool = rows.to_vec();
            let mut state: u64 = 0x9E37_79B9_7F4A_7C15 ^ (pool.len() as u64);
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for i in 0..n {
                let j = i + (next() as usize) % (pool.len() - i);
                pool.swap(i, j);
            }
            pool.truncate(n);
            pool.sort_unstable();
            pool
        }
        let mut b = TableBuilder::new(vec![Field::new("X", DataType::Int)]).unwrap();
        for i in 0..5_000 {
            b.push_row(vec![Value::Int(i)]).unwrap();
        }
        let t = b.finish();
        let ids: Vec<u32> = (0..5_000u32).rev().collect();
        let v = View::from_rows(&t, ids.clone());
        for n in [1, 2, 7, 64, 1_000, 4_999] {
            assert_eq!(v.sample(n).row_ids(), dense_sample(&ids, n), "n={n}");
        }
    }

    #[test]
    fn fingerprint_tracks_selection_and_table() {
        let t = table();
        let a = View::from_rows(&t, vec![0, 1, 2]);
        assert_eq!(a.fingerprint(), View::from_rows(&t, vec![0, 1, 2]).fingerprint());
        assert_ne!(a.fingerprint(), View::from_rows(&t, vec![0, 1, 3]).fingerprint());
        assert_ne!(a.fingerprint(), View::from_rows(&t, vec![2, 1, 0]).fingerprint());
        // A structurally identical but rebuilt table has a new id.
        let t2 = table();
        assert_ne!(a.fingerprint(), View::from_rows(&t2, vec![0, 1, 2]).fingerprint());
        // A clone shares the id, so fingerprints agree.
        let t3 = t.clone();
        assert_eq!(a.fingerprint(), View::from_rows(&t3, vec![0, 1, 2]).fingerprint());
    }

    #[test]
    fn fingerprint_positions_tracks_rows_not_positions() {
        let t = table();
        let a = View::from_rows(&t, vec![0, 1, 2, 3]);
        // Same rows selected through different position lists of different
        // views agree as long as the row ids (and their order) agree.
        let b = View::from_rows(&t, vec![1, 3]);
        assert_eq!(a.fingerprint_positions(&[1, 3]), b.fingerprint_positions(&[0, 1]));
        // Different rows or a different order diverge.
        assert_ne!(a.fingerprint_positions(&[1, 3]), a.fingerprint_positions(&[3, 1]));
        assert_ne!(a.fingerprint_positions(&[1, 3]), a.fingerprint_positions(&[1, 2]));
        // The full-subset fingerprint matches the view fingerprint's space
        // (same construction), and out-of-range positions do not panic.
        assert_eq!(a.fingerprint_positions(&[0, 1, 2, 3]), a.fingerprint());
        let _ = a.fingerprint_positions(&[99]);
    }

    #[test]
    fn jaccard_and_intersect() {
        let t = table();
        let a = View::from_rows(&t, vec![0, 1, 2]);
        let b = View::from_rows(&t, vec![1, 2, 3]);
        assert_eq!(a.intersect(&b).row_ids(), &[1, 2]);
        assert!((a.jaccard(&b) - 0.5).abs() < 1e-12);
        let empty = View::from_rows(&t, vec![]);
        assert_eq!(empty.jaccard(&empty), 1.0);
        assert_eq!(empty.jaccard(&a), 0.0);
    }
}
