//! Schema: named, typed attributes.

use crate::error::{Error, Result};
use crate::value::DataType;
use std::collections::HashMap;

/// A single attribute (column) declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Attribute name, e.g. `"Make"` or `"Price"`.
    pub name: String,
    /// Attribute type.
    pub data_type: DataType,
    /// Whether the attribute is exposed in the query panel.
    ///
    /// The paper's Limitation 2 ("Querying Hidden Attributes") distinguishes
    /// *queriable* attributes — exposed by the forms-based interface — from
    /// attributes that exist in the data but cannot be selected on directly
    /// (e.g. `Engine`/`NumCylinders` in the car example). The CAD View
    /// surfaces hidden attributes inside IUnit labels so users can find
    /// queriable surrogates.
    pub queriable: bool,
}

impl Field {
    /// Creates a queriable field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
            queriable: true,
        }
    }

    /// Creates a hidden (non-queriable) field.
    pub fn hidden(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
            queriable: false,
        }
    }
}

/// An ordered collection of [`Field`]s with name lookup.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    fields: Vec<Field>,
    by_name: HashMap<String, usize>,
}

impl Schema {
    /// Builds a schema from fields. Duplicate names are rejected.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        let mut by_name = HashMap::with_capacity(fields.len());
        for (i, f) in fields.iter().enumerate() {
            if by_name.insert(f.name.clone(), i).is_some() {
                return Err(Error::Invalid(format!("duplicate attribute: {}", f.name)));
            }
        }
        Ok(Schema { fields, by_name })
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True iff the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Field at position `idx`.
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// All fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Position of the attribute named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| Error::UnknownAttribute(name.to_owned()))
    }

    /// True iff the schema contains an attribute named `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Names of all attributes, in declaration order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Indices of queriable attributes (see [`Field::queriable`]).
    pub fn queriable_indices(&self) -> Vec<usize> {
        self.fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.queriable)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("Make", DataType::Categorical),
            Field::new("Price", DataType::Int),
            Field::hidden("Engine", DataType::Categorical),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_by_name() {
        let s = schema();
        assert_eq!(s.index_of("Price").unwrap(), 1);
        assert!(s.index_of("Missing").is_err());
        assert!(s.contains("Engine"));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![
            Field::new("A", DataType::Int),
            Field::new("A", DataType::Int),
        ]);
        assert!(err.is_err());
    }

    #[test]
    fn queriable_filtering() {
        let s = schema();
        assert_eq!(s.queriable_indices(), vec![0, 1]);
    }
}
