//! Predicate AST and evaluation.
//!
//! Covers the operators the paper's example queries use: equality,
//! comparison, `BETWEEN`, `IN`, and boolean combinators. NULL semantics are
//! SQL-like: any comparison involving NULL is false (so `NOT` of a
//! NULL-comparison is true — three-valued logic is collapsed to two-valued,
//! which is indistinguishable for the paper's workloads, where filters never
//! target NULLs).

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::table::Table;
use crate::value::Value;
use std::cmp::Ordering;
use std::fmt;

/// Comparison operators for scalar predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A boolean expression over a table's attributes.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `attribute <op> literal`
    Compare {
        /// Attribute name.
        attribute: String,
        /// Comparison operator.
        op: CmpOp,
        /// Literal right-hand side.
        value: Value,
    },
    /// `attribute BETWEEN low AND high` (inclusive both ends).
    Between {
        /// Attribute name.
        attribute: String,
        /// Lower bound (inclusive).
        low: Value,
        /// Upper bound (inclusive).
        high: Value,
    },
    /// `attribute IN (v1, v2, ...)`
    In {
        /// Attribute name.
        attribute: String,
        /// Accepted values.
        values: Vec<Value>,
    },
    /// `attribute IS NULL`
    IsNull {
        /// Attribute name.
        attribute: String,
    },
    /// Conjunction; empty conjunction is `TRUE`.
    And(Vec<Predicate>),
    /// Disjunction; empty disjunction is `FALSE`.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
    /// Constant truth value (used for `SELECT *` without WHERE).
    Const(bool),
}

impl Predicate {
    /// `attribute = value` convenience constructor.
    pub fn eq(attribute: impl Into<String>, value: impl Into<Value>) -> Self {
        Predicate::Compare {
            attribute: attribute.into(),
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// `attribute <op> value` convenience constructor.
    pub fn cmp(attribute: impl Into<String>, op: CmpOp, value: impl Into<Value>) -> Self {
        Predicate::Compare {
            attribute: attribute.into(),
            op,
            value: value.into(),
        }
    }

    /// `attribute BETWEEN low AND high` convenience constructor.
    pub fn between(
        attribute: impl Into<String>,
        low: impl Into<Value>,
        high: impl Into<Value>,
    ) -> Self {
        Predicate::Between {
            attribute: attribute.into(),
            low: low.into(),
            high: high.into(),
        }
    }

    /// `attribute IN (values...)` convenience constructor.
    pub fn in_list(attribute: impl Into<String>, values: Vec<Value>) -> Self {
        Predicate::In {
            attribute: attribute.into(),
            values,
        }
    }

    /// Conjunction constructor.
    pub fn and(preds: Vec<Predicate>) -> Self {
        Predicate::And(preds)
    }

    /// Disjunction constructor.
    pub fn or(preds: Vec<Predicate>) -> Self {
        Predicate::Or(preds)
    }

    /// Negation constructor.
    #[allow(clippy::should_implement_trait)]
    pub fn not(pred: Predicate) -> Self {
        Predicate::Not(Box::new(pred))
    }

    /// Checks that all referenced attributes exist in `schema`.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        match self {
            Predicate::Compare { attribute, .. }
            | Predicate::Between { attribute, .. }
            | Predicate::In { attribute, .. }
            | Predicate::IsNull { attribute } => {
                schema.index_of(attribute).map(|_| ())?;
                Ok(())
            }
            Predicate::And(ps) | Predicate::Or(ps) => {
                ps.iter().try_for_each(|p| p.validate(schema))
            }
            Predicate::Not(p) => p.validate(schema),
            Predicate::Const(_) => Ok(()),
        }
    }

    /// Attribute names referenced by this predicate (with duplicates).
    pub fn referenced_attributes(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_attributes(&mut out);
        out
    }

    fn collect_attributes<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Predicate::Compare { attribute, .. }
            | Predicate::Between { attribute, .. }
            | Predicate::In { attribute, .. }
            | Predicate::IsNull { attribute } => out.push(attribute),
            Predicate::And(ps) | Predicate::Or(ps) => {
                ps.iter().for_each(|p| p.collect_attributes(out))
            }
            Predicate::Not(p) => p.collect_attributes(out),
            Predicate::Const(_) => {}
        }
    }

    /// Structurally simplifies the predicate without changing its meaning:
    /// flattens nested `AND`/`OR`, drops neutral constants, collapses
    /// single-child combinators, folds double negation, and
    /// constant-folds `NOT TRUE`/`NOT FALSE`. Used when exporting user
    /// selections (e.g. faceted state) as readable SQL.
    pub fn simplify(self) -> Predicate {
        match self {
            Predicate::And(ps) => {
                let mut flat = Vec::new();
                for p in ps {
                    match p.simplify() {
                        Predicate::Const(true) => {}
                        Predicate::Const(false) => return Predicate::Const(false),
                        Predicate::And(inner) => flat.extend(inner),
                        other => flat.push(other),
                    }
                }
                match flat.len() {
                    0 => Predicate::Const(true),
                    1 => flat.pop().unwrap_or(Predicate::Const(true)),
                    _ => Predicate::And(flat),
                }
            }
            Predicate::Or(ps) => {
                let mut flat = Vec::new();
                for p in ps {
                    match p.simplify() {
                        Predicate::Const(false) => {}
                        Predicate::Const(true) => return Predicate::Const(true),
                        Predicate::Or(inner) => flat.extend(inner),
                        other => flat.push(other),
                    }
                }
                match flat.len() {
                    0 => Predicate::Const(false),
                    1 => flat.pop().unwrap_or(Predicate::Const(false)),
                    _ => Predicate::Or(flat),
                }
            }
            Predicate::Not(inner) => match inner.simplify() {
                Predicate::Const(b) => Predicate::Const(!b),
                Predicate::Not(inner2) => *inner2,
                other => Predicate::Not(Box::new(other)),
            },
            leaf => leaf,
        }
    }

    /// Evaluates the predicate against row `row` of `table`.
    pub fn eval(&self, table: &Table, row: usize) -> Result<bool> {
        match self {
            Predicate::Compare {
                attribute,
                op,
                value,
            } => {
                let cell = cell(table, attribute, row)?;
                if cell.is_null() || value.is_null() {
                    return Ok(false);
                }
                let ord = cell.total_cmp(value);
                Ok(match op {
                    CmpOp::Eq => ord == Ordering::Equal,
                    CmpOp::Ne => ord != Ordering::Equal,
                    CmpOp::Lt => ord == Ordering::Less,
                    CmpOp::Le => ord != Ordering::Greater,
                    CmpOp::Gt => ord == Ordering::Greater,
                    CmpOp::Ge => ord != Ordering::Less,
                })
            }
            Predicate::Between {
                attribute,
                low,
                high,
            } => {
                let cell = cell(table, attribute, row)?;
                if cell.is_null() {
                    return Ok(false);
                }
                Ok(cell.total_cmp(low) != Ordering::Less
                    && cell.total_cmp(high) != Ordering::Greater)
            }
            Predicate::In { attribute, values } => {
                let cell = cell(table, attribute, row)?;
                if cell.is_null() {
                    return Ok(false);
                }
                Ok(values.iter().any(|v| cell.total_cmp(v) == Ordering::Equal))
            }
            Predicate::IsNull { attribute } => Ok(cell(table, attribute, row)?.is_null()),
            Predicate::And(ps) => {
                for p in ps {
                    if !p.eval(table, row)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Predicate::Or(ps) => {
                for p in ps {
                    if p.eval(table, row)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Predicate::Not(p) => Ok(!p.eval(table, row)?),
            Predicate::Const(b) => Ok(*b),
        }
    }
}

fn cell(table: &Table, attribute: &str, row: usize) -> Result<Value> {
    let idx = table
        .schema()
        .index_of(attribute)
        .map_err(|_| Error::UnknownAttribute(attribute.to_owned()))?;
    Ok(table.value(row, idx))
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Compare {
                attribute,
                op,
                value,
            } => write!(f, "{attribute} {op} {value}"),
            Predicate::Between {
                attribute,
                low,
                high,
            } => write!(f, "{attribute} BETWEEN {low} AND {high}"),
            Predicate::In { attribute, values } => {
                write!(f, "{attribute} IN (")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Predicate::IsNull { attribute } => write!(f, "{attribute} IS NULL"),
            Predicate::And(ps) => join(f, ps, " AND "),
            Predicate::Or(ps) => join(f, ps, " OR "),
            Predicate::Not(p) => write!(f, "NOT ({p})"),
            Predicate::Const(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

fn join(f: &mut fmt::Formatter<'_>, ps: &[Predicate], sep: &str) -> fmt::Result {
    write!(f, "(")?;
    for (i, p) in ps.iter().enumerate() {
        if i > 0 {
            write!(f, "{sep}")?;
        }
        write!(f, "{p}")?;
    }
    write!(f, ")")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::table::TableBuilder;
    use crate::value::DataType;

    fn table() -> Table {
        let mut b = TableBuilder::new(vec![
            Field::new("Make", DataType::Categorical),
            Field::new("Price", DataType::Int),
        ])
        .unwrap();
        b.push_row(vec!["Ford".into(), 25_000.into()]).unwrap();
        b.push_row(vec!["Jeep".into(), 31_000.into()]).unwrap();
        b.push_row(vec![Value::Null, 18_000.into()]).unwrap();
        b.finish()
    }

    #[test]
    fn compare_ops() {
        let t = table();
        assert!(Predicate::eq("Make", "Ford").eval(&t, 0).unwrap());
        assert!(!Predicate::eq("Make", "Ford").eval(&t, 1).unwrap());
        assert!(Predicate::cmp("Price", CmpOp::Gt, 30_000)
            .eval(&t, 1)
            .unwrap());
        assert!(Predicate::cmp("Price", CmpOp::Le, 25_000)
            .eval(&t, 0)
            .unwrap());
    }

    #[test]
    fn between_inclusive() {
        let t = table();
        let p = Predicate::between("Price", 25_000, 31_000);
        assert!(p.eval(&t, 0).unwrap());
        assert!(p.eval(&t, 1).unwrap());
        assert!(!p.eval(&t, 2).unwrap());
    }

    #[test]
    fn in_list_matches() {
        let t = table();
        let p = Predicate::in_list("Make", vec!["Jeep".into(), "Honda".into()]);
        assert!(!p.eval(&t, 0).unwrap());
        assert!(p.eval(&t, 1).unwrap());
    }

    #[test]
    fn null_comparisons_false() {
        let t = table();
        assert!(!Predicate::eq("Make", "Ford").eval(&t, 2).unwrap());
        assert!(Predicate::IsNull {
            attribute: "Make".into()
        }
        .eval(&t, 2)
        .unwrap());
    }

    #[test]
    fn boolean_combinators() {
        let t = table();
        let p = Predicate::or(vec![
            Predicate::eq("Make", "Jeep"),
            Predicate::cmp("Price", CmpOp::Lt, 20_000),
        ]);
        assert!(!p.eval(&t, 0).unwrap());
        assert!(p.eval(&t, 1).unwrap());
        assert!(p.eval(&t, 2).unwrap());
        assert!(Predicate::not(Predicate::Const(false)).eval(&t, 0).unwrap());
        // Empty AND is true, empty OR is false.
        assert!(Predicate::and(vec![]).eval(&t, 0).unwrap());
        assert!(!Predicate::or(vec![]).eval(&t, 0).unwrap());
    }

    #[test]
    fn simplify_flattens_and_folds() {
        // ((a AND TRUE) AND (b AND c)) → AND[a, b, c]
        let p = Predicate::and(vec![
            Predicate::and(vec![Predicate::eq("A", 1), Predicate::Const(true)]),
            Predicate::and(vec![Predicate::eq("B", 2), Predicate::eq("C", 3)]),
        ])
        .simplify();
        let Predicate::And(terms) = p else { panic!() };
        assert_eq!(terms.len(), 3);

        // OR with TRUE short-circuits; AND with FALSE short-circuits.
        assert_eq!(
            Predicate::or(vec![Predicate::eq("A", 1), Predicate::Const(true)]).simplify(),
            Predicate::Const(true)
        );
        assert_eq!(
            Predicate::and(vec![Predicate::eq("A", 1), Predicate::Const(false)]).simplify(),
            Predicate::Const(false)
        );
        // Single-child collapse + double negation.
        assert_eq!(
            Predicate::and(vec![Predicate::eq("A", 1)]).simplify(),
            Predicate::eq("A", 1)
        );
        assert_eq!(
            Predicate::not(Predicate::not(Predicate::eq("A", 1))).simplify(),
            Predicate::eq("A", 1)
        );
        assert_eq!(
            Predicate::not(Predicate::Const(false)).simplify(),
            Predicate::Const(true)
        );
        // Empty combinators keep their identities.
        assert_eq!(Predicate::and(vec![]).simplify(), Predicate::Const(true));
        assert_eq!(Predicate::or(vec![]).simplify(), Predicate::Const(false));
    }

    #[test]
    fn simplify_preserves_semantics() {
        let t = table();
        let gnarly = Predicate::not(Predicate::not(Predicate::or(vec![
            Predicate::and(vec![
                Predicate::eq("Make", "Jeep"),
                Predicate::Const(true),
            ]),
            Predicate::or(vec![Predicate::cmp("Price", CmpOp::Lt, 20_000)]),
            Predicate::Const(false),
        ])));
        let simple = gnarly.clone().simplify();
        for row in 0..t.num_rows() {
            assert_eq!(
                gnarly.eval(&t, row).unwrap(),
                simple.eval(&t, row).unwrap(),
                "row {row}"
            );
        }
    }

    #[test]
    fn referenced_attributes_collects() {
        let p = Predicate::and(vec![
            Predicate::eq("Make", "Ford"),
            Predicate::between("Price", 1, 2),
        ]);
        assert_eq!(p.referenced_attributes(), vec!["Make", "Price"]);
    }

    #[test]
    fn display_round_trip_shape() {
        let p = Predicate::and(vec![
            Predicate::eq("Make", "Ford"),
            Predicate::between("Price", 1, 2),
        ]);
        assert_eq!(p.to_string(), "(Make = Ford AND Price BETWEEN 1 AND 2)");
    }
}
