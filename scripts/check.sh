#!/usr/bin/env bash
# Full local gate: release build, tests, and lint-clean libraries.
#
# The clippy step runs with -D warnings, and the library crates carry
# `#![warn(clippy::unwrap_used, clippy::expect_used)]` outside #[cfg(test)],
# so any new unwrap/expect in library code fails this script.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "All checks passed."
