#!/usr/bin/env bash
# Full local gate: release build, tests, and lint-clean libraries.
#
# The clippy step runs with -D warnings, and the library crates carry
# `#![warn(clippy::unwrap_used, clippy::expect_used)]` outside #[cfg(test)],
# so any new unwrap/expect in library code fails this script.
#
# The observability smoke (also available alone via `--obs-smoke`) runs a
# tiny traced CAD build and asserts the in-memory sink saw the expected
# span taxonomy and that the global counters moved; it is part of the
# default gate because it is cheap and catches silently-dropped
# instrumentation.
#
# `--bench-smoke` additionally runs the CAD bench harness in --quick mode
# with DBEX_THREADS pinned, so the run is reproducible on any machine.
# bench_suite exits non-zero if any parallel build diverges from the
# sequential render or if the generated report is not well-formed JSON,
# so a bad report fails the gate.
#
# `--bench-regression` runs the *full* bench harness (release, 40K rows)
# and diffs it against the committed BENCH_cad.json: bench_suite exits
# non-zero — failing this gate — when the cluster_partition span median
# regresses by more than 25% on any comparable workload. This takes
# minutes and measures real wall-clock, so it is opt-in, not part of the
# default gate.
#
# The serve smoke (also available alone via `--serve-smoke`) boots the
# wire server in-process, replays an exploration script through three
# concurrent clients, and fails unless every transcript is byte-identical
# to the single-session oracle AND to the committed golden snapshot
# (tests/snapshots/serve_smoke.txt); it is part of the default gate.
#
# `--serve-soak` runs the ignored-by-default 60-second hostile-workload
# soak (mid-request disconnects, oversized/truncated frames, connection
# hammers over the cap) in release mode; shorten with
# DBEX_SERVE_SOAK_SECS. Opt-in because of its wall-clock cost.
#
# The suggest smoke (also available alone via `--suggest-smoke`) checks
# the SUGGEST surface: the single-session oracle transcript must match
# the committed golden (tests/snapshots/suggest_wire.txt), three
# concurrent clients must reproduce it byte-for-byte, the wire frames
# must carry exactly what the REPL renders, and one planted-correlation
# seed must recover the planted attribute in the top 3; it is part of
# the default gate.
#
# The store smoke (also available alone via `--store-smoke`) saves a
# snapshot in a child process, reopens it cold, and fails unless the
# rehydrated cluster solutions serve the first post-restart build from
# cache, the rebuilt view renders byte-identical, and a fault-injected
# save leaves the committed generation intact; it is part of the default
# gate.
#
# `--crash-smoke` SIGKILLs a child that saves alternating catalogs in a
# tight loop and requires every reopen to land on a consistent
# generation — never a panic, never a torn mix. Opt-in because the kill
# ladder sleeps between iterations.
#
# The explore smoke (part of the default gate) runs bench_explore in
# --quick mode: it generates the synthetic exploration dataset, drives a
# few dozen seeded sessions with abandon/reconnect churn over the real
# wire protocol, and self-validates the emitted report against the
# BENCH_explore schema — any session wave that completes zero sessions,
# or a malformed report, fails the gate.
#
# `--bench-explore` runs the *full* exploration benchmark (64/256/1024
# concurrent sessions over 6K rows) and diffs it against the committed
# BENCH_explore.json: bench_explore exits non-zero — failing this
# gate — when time-to-first-result p50 or overall p99 regresses by more
# than 25% on any comparable session count. Opt-in: the 1024-session
# wave with real think-times takes minutes of wall-clock.
#
# `--bench-explore-regression` is the seconds-scale CI variant: a
# --quick bench_explore run diffed against the same committed baseline.
# The quick workload is deliberately not latency-comparable to the full
# baseline (the diff reports the mismatch and skips the latency gate),
# but the diff still parses and schema-checks the committed
# BENCH_explore.json — the schema-3 suggest section included — so a
# baseline left stale across a schema bump fails here instead of
# surfacing minutes into the full gate.
#
# `--kernel-ab` is the scalar ↔ SIMD bit-identity gate: it first runs the
# whole test suite pinned to the scalar kernels (DBEX_SIMD=scalar), then
# runs `kernel_ab`, which re-executes itself as one child per dispatch
# family (scalar / sse2 / avx2 / neon, clamped to the hardware) and
# fails unless every family's CAD digests are byte-identical to the
# scalar reference. Opt-in because it rebuilds and re-runs the suite.

set -euo pipefail
cd "$(dirname "$0")/.."

# Scratch reports accumulate here; one trap cleans them all up.
SCRATCH=()
cleanup() { rm -f "${SCRATCH[@]:-}"; }
trap cleanup EXIT

BENCH_SMOKE=0
BENCH_REGRESSION=0
OBS_SMOKE_ONLY=0
SERVE_SMOKE_ONLY=0
SUGGEST_SMOKE_ONLY=0
SERVE_SOAK=0
STORE_SMOKE_ONLY=0
CRASH_SMOKE=0
KERNEL_AB=0
BENCH_EXPLORE=0
BENCH_EXPLORE_REGRESSION=0
for arg in "$@"; do
  case "$arg" in
    --bench-smoke) BENCH_SMOKE=1 ;;
    --bench-regression) BENCH_REGRESSION=1 ;;
    --bench-explore) BENCH_EXPLORE=1 ;;
    --bench-explore-regression) BENCH_EXPLORE_REGRESSION=1 ;;
    --obs-smoke) OBS_SMOKE_ONLY=1 ;;
    --serve-smoke) SERVE_SMOKE_ONLY=1 ;;
    --suggest-smoke) SUGGEST_SMOKE_ONLY=1 ;;
    --serve-soak) SERVE_SOAK=1 ;;
    --store-smoke) STORE_SMOKE_ONLY=1 ;;
    --crash-smoke) CRASH_SMOKE=1 ;;
    --kernel-ab) KERNEL_AB=1 ;;
    *) echo "usage: $0 [--bench-smoke] [--bench-regression] [--bench-explore] [--bench-explore-regression] [--obs-smoke] [--serve-smoke] [--suggest-smoke] [--serve-soak] [--store-smoke] [--crash-smoke] [--kernel-ab]" >&2; exit 2 ;;
  esac
done

if [[ "$OBS_SMOKE_ONLY" -eq 1 ]]; then
  echo "==> obs smoke (traced build against the in-memory sink)"
  cargo run --release --bin obs_smoke
  exit 0
fi

if [[ "$SERVE_SMOKE_ONLY" -eq 1 ]]; then
  echo "==> serve smoke (3 concurrent clients vs oracle + golden transcript)"
  cargo run --release --bin serve_smoke
  exit 0
fi

if [[ "$SUGGEST_SMOKE_ONLY" -eq 1 ]]; then
  echo "==> suggest smoke (oracle + golden + REPL/wire identity + planted recovery)"
  cargo run --release --bin suggest_smoke
  exit 0
fi

if [[ "$SERVE_SOAK" -eq 1 ]]; then
  echo "==> serve soak (hostile mixed workload, ${DBEX_SERVE_SOAK_SECS:-60}s)"
  cargo test --release --test serve_soak -- --ignored --nocapture
  exit 0
fi

if [[ "$STORE_SMOKE_ONLY" -eq 1 ]]; then
  echo "==> store smoke (cross-process warm restart + fault-injected save)"
  cargo run --release --bin store_smoke
  exit 0
fi

if [[ "$CRASH_SMOKE" -eq 1 ]]; then
  echo "==> crash smoke (SIGKILL mid-save loop; every reopen must be consistent)"
  cargo run --release --bin store_smoke -- --crash
  exit 0
fi

if [[ "$KERNEL_AB" -eq 1 ]]; then
  echo "==> kernel A/B gate: full test suite pinned to the scalar kernels"
  DBEX_SIMD=scalar cargo test -q --workspace
  echo "==> kernel A/B gate: per-dispatch CAD digest diff"
  cargo run --release --bin kernel_ab
  exit 0
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> obs smoke (traced build against the in-memory sink)"
cargo run --release --bin obs_smoke

echo "==> serve smoke (3 concurrent clients vs oracle + golden transcript)"
cargo run --release --bin serve_smoke

echo "==> suggest smoke (oracle + golden + REPL/wire identity + planted recovery)"
cargo run --release --bin suggest_smoke

echo "==> store smoke (cross-process warm restart + fault-injected save)"
cargo run --release --bin store_smoke

echo "==> explore smoke (bench_explore --quick, seeded sessions over the wire)"
EXPLORE_OUT="$(mktemp /tmp/bench_explore_smoke.XXXXXX.json)"
SCRATCH+=("$EXPLORE_OUT")
cargo run --release -p dbex-bench --bin bench_explore -- --quick --out "$EXPLORE_OUT"

if [[ "$BENCH_SMOKE" -eq 1 ]]; then
  echo "==> bench smoke (bench_suite --quick, DBEX_THREADS=2)"
  SMOKE_OUT="$(mktemp /tmp/bench_cad_smoke.XXXXXX.json)"
  SCRATCH+=("$SMOKE_OUT")
  DBEX_THREADS=2 cargo run --release -p dbex-bench --bin bench_suite -- \
    --quick --out "$SMOKE_OUT"
fi

if [[ "$BENCH_REGRESSION" -eq 1 ]]; then
  echo "==> bench regression gate (full bench_suite vs committed BENCH_cad.json)"
  REG_OUT="$(mktemp /tmp/bench_cad_regression.XXXXXX.json)"
  SCRATCH+=("$REG_OUT")
  cargo run --release -p dbex-bench --bin bench_suite -- \
    --out "$REG_OUT" --baseline BENCH_cad.json
fi

if [[ "$BENCH_EXPLORE" -eq 1 ]]; then
  echo "==> explore regression gate (full bench_explore vs committed BENCH_explore.json)"
  EXPLORE_REG_OUT="$(mktemp /tmp/bench_explore_regression.XXXXXX.json)"
  SCRATCH+=("$EXPLORE_REG_OUT")
  cargo run --release -p dbex-bench --bin bench_explore -- \
    --out "$EXPLORE_REG_OUT" --baseline BENCH_explore.json
fi

if [[ "$BENCH_EXPLORE_REGRESSION" -eq 1 ]]; then
  echo "==> explore regression smoke (bench_explore --quick vs committed BENCH_explore.json)"
  EXPLORE_QREG_OUT="$(mktemp /tmp/bench_explore_qreg.XXXXXX.json)"
  SCRATCH+=("$EXPLORE_QREG_OUT")
  cargo run --release -p dbex-bench --bin bench_explore -- \
    --quick --out "$EXPLORE_QREG_OUT" --baseline BENCH_explore.json
fi

echo "All checks passed."
