//! Soak test for the wire server: a hostile mixed workload against a
//! small connection cap.
//!
//! Two variants share one harness ([`run_soak`]):
//!
//! * `hostile_mixed_workload_quick` — ~2 s, runs in the default
//!   `cargo test` gate. Same worker zoo, same zero-panic /
//!   gauge-returns-to-0 assertions, small table.
//! * `hostile_mixed_workload_leaks_nothing` — `DBEX_SERVE_SOAK_SECS`
//!   (default 60) seconds, ignored by default; run via
//!   `scripts/check.sh --serve-soak` or:
//!
//!   ```text
//!   DBEX_SERVE_SOAK_SECS=10 cargo test --release --test serve_soak -- --ignored
//!   ```
//!
//! Worker zoo: well-behaved explorers (who also lean on SUGGEST between
//! drills), streamed-preview clients (half of whom vanish between the
//! preview and the exact frame), clients that disconnect mid-request or
//! mid-suggest, clients that abort mid-frame, oversized-frame senders
//! (including oversized partial-predicate SUGGEST frames), invalid-UTF-8
//! senders, a suggest churner that drops its view out from under its own
//! `SUGGEST NEXT` (typed error, never a panic), and connection hammers
//! that overrun the cap.
//! Afterwards the server must show zero caught panics, `BUSY` rejections
//! (the cap held under pressure), and a connection gauge back at 0 — no
//! leaked sessions, threads, or slots.
//!
//! The two variants assert on the same process-wide
//! `server.connections` gauge, so they must not run concurrently; the
//! quick one runs in the default gate and the long one only under
//! `-- --ignored`, which never mixes the two.

use dbexplorer::data::UsedCarsGenerator;
use dbexplorer::serve::{Client, ClientError, ServeConfig, Server, MAX_FRAME};
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CAP: usize = 8;

fn soak_secs() -> u64 {
    std::env::var("DBEX_SERVE_SOAK_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60)
}

/// Quick variant: same hostile mix and assertions, sized for the
/// default `cargo test` gate. The table sits past the preview threshold
/// so the streamed clients genuinely get multi-frame responses.
#[test]
fn hostile_mixed_workload_quick() {
    run_soak(2, 2_500);
}

#[test]
#[ignore = "long-running; invoked by scripts/check.sh --serve-soak"]
fn hostile_mixed_workload_leaks_nothing() {
    run_soak(soak_secs(), 4_000);
}

fn run_soak(secs: u64, rows: usize) {
    let config = ServeConfig {
        max_connections: CAP,
        request_time_limit: Some(Duration::from_millis(150)),
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    server.preload("cars", UsedCarsGenerator::new(3).generate(rows));
    let handle = server.spawn().expect("spawn accept thread");
    let addr = handle.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let busy_seen = Arc::new(AtomicU64::new(0));
    let requests_ok = Arc::new(AtomicU64::new(0));
    let suggest_ok = Arc::new(AtomicU64::new(0));
    let suggest_typed_errors = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        // 3 well-behaved explorers: full exploration rounds, reconnect
        // politely (with backoff) when the hammers push the server to its
        // cap.
        for _ in 0..3 {
            let stop = Arc::clone(&stop);
            let busy_seen = Arc::clone(&busy_seen);
            let requests_ok = Arc::clone(&requests_ok);
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let mut client = match Client::connect(addr) {
                        Ok(c) => c,
                        Err(ClientError::Busy(_)) => {
                            busy_seen.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(Duration::from_millis(10));
                            continue;
                        }
                        Err(_) => continue,
                    };
                    for request in [
                        "SELECT Make FROM cars WHERE BodyType = SUV LIMIT 3",
                        "CREATE CADVIEW v AS SET pivot = Make FROM cars LIMIT COLUMNS 2 IUNITS 2",
                        "SUGGEST NEXT FOR v",
                        "REORDER ROWS IN v ORDER BY SIMILARITY(Jeep) DESC",
                        "SUGGEST COMPLETE SELECT * FROM cars WHERE Make =",
                        ".tables",
                    ] {
                        match client.request(request) {
                            Ok(resp) => {
                                assert!(resp.ok, "well-formed request failed: {request}");
                                requests_ok.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => break, // hammered off; reconnect
                        }
                    }
                }
            });
        }

        // Streamed explorer: opts into previews; alternates between
        // reading the full frame sequence and vanishing right after the
        // first frame — the mid-preview cancel path under churn.
        {
            let stop = Arc::clone(&stop);
            let requests_ok = Arc::clone(&requests_ok);
            let busy_seen = Arc::clone(&busy_seen);
            scope.spawn(move || {
                let mut flip = false;
                while !stop.load(Ordering::Relaxed) {
                    let mut client = match Client::connect(addr) {
                        Ok(c) => c,
                        Err(ClientError::Busy(_)) => {
                            busy_seen.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(Duration::from_millis(10));
                            continue;
                        }
                        Err(_) => continue,
                    };
                    client.set_read_timeout(Some(Duration::from_secs(5))).ok();
                    if !client.request(".stream on").map(|r| r.ok).unwrap_or(false) {
                        continue; // hammered off mid-handshake
                    }
                    let build =
                        "CREATE CADVIEW s AS SET pivot = Make FROM cars LIMIT COLUMNS 2 IUNITS 2";
                    if flip {
                        if let Ok(frames) = client.request_stream(build) {
                            if frames.last().is_some_and(|f| f.ok) {
                                requests_ok.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    } else {
                        let _ = client.send_only(build);
                        let _ = client.read_response();
                        drop(client); // gone between preview and exact frame
                    }
                    flip = !flip;
                    std::thread::sleep(Duration::from_millis(3));
                }
            });
        }

        // Mid-request disconnecter: fire an expensive build, vanish.
        {
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    if let Ok(mut client) = Client::connect(addr) {
                        client.set_read_timeout(Some(Duration::from_millis(5))).ok();
                        let _ = client.request(
                            "CREATE CADVIEW big AS SET pivot = Model FROM cars IUNITS 4",
                        );
                        drop(client); // gone before (or just after) the response
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
            });
        }

        // Mid-frame aborter: declare 64 bytes, send 3, close.
        {
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    if let Ok(mut raw) = TcpStream::connect(addr) {
                        let _ = raw.write_all(&64u32.to_be_bytes());
                        let _ = raw.write_all(b"SEL");
                        drop(raw);
                    }
                    std::thread::sleep(Duration::from_millis(7));
                }
            });
        }

        // Protocol abusers: oversized declarations and invalid UTF-8.
        {
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let mut flip = false;
                while !stop.load(Ordering::Relaxed) {
                    if let Ok(mut raw) = TcpStream::connect(addr) {
                        if flip {
                            let _ = raw.write_all(&((MAX_FRAME + 1) as u32).to_be_bytes());
                        } else {
                            let _ = raw.write_all(&2u32.to_be_bytes());
                            let _ = raw.write_all(&[0x61, 0xFF]);
                        }
                        flip = !flip;
                        let _ = raw.flush();
                        std::thread::sleep(Duration::from_millis(2));
                        drop(raw);
                    }
                    std::thread::sleep(Duration::from_millis(7));
                }
            });
        }

        // Suggest churner: keystroke-paced completion bursts, a
        // mid-suggest disconnecter, an oversized-but-legal partial
        // predicate, and SUGGEST against a view it just dropped — which
        // must come back as a typed error frame, never a panic.
        {
            let stop = Arc::clone(&stop);
            let busy_seen = Arc::clone(&busy_seen);
            let suggest_ok = Arc::clone(&suggest_ok);
            let suggest_typed_errors = Arc::clone(&suggest_typed_errors);
            scope.spawn(move || {
                let huge = format!(
                    "SUGGEST COMPLETE SELECT * FROM cars WHERE Make = {}",
                    "x".repeat(64 * 1024)
                );
                let mut step = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let mut client = match Client::connect(addr) {
                        Ok(c) => c,
                        Err(ClientError::Busy(_)) => {
                            busy_seen.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(Duration::from_millis(10));
                            continue;
                        }
                        Err(_) => continue,
                    };
                    client.set_read_timeout(Some(Duration::from_secs(5))).ok();
                    match step % 4 {
                        0 => {
                            // Keystroke burst: one completion per "keypress".
                            for partial in ["", "Mo", "Make ="] {
                                let req = format!(
                                    "SUGGEST COMPLETE SELECT * FROM cars WHERE {partial}"
                                );
                                match client.request(&req) {
                                    Ok(resp) if resp.ok => {
                                        suggest_ok.fetch_add(1, Ordering::Relaxed);
                                    }
                                    Ok(_) => {}
                                    Err(_) => break, // hammered off
                                }
                            }
                        }
                        1 => {
                            // Mid-suggest disconnect: fire and vanish.
                            let _ = client
                                .send_only("SUGGEST COMPLETE SELECT * FROM cars WHERE Make =");
                            drop(client);
                        }
                        2 => {
                            // A partial predicate far past any sane keystroke,
                            // but inside MAX_FRAME: must be answered, not
                            // crash the session thread.
                            if client.request(&huge).is_ok() {
                                suggest_ok.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        _ => {
                            // Create, drop, then suggest against the corpse.
                            let built = client
                                .request(
                                    "CREATE CADVIEW z AS SET pivot = Make FROM cars \
                                     LIMIT COLUMNS 2 IUNITS 2",
                                )
                                .map(|r| r.ok)
                                .unwrap_or(false)
                                && client
                                    .request("DROP CADVIEW z")
                                    .map(|r| r.ok)
                                    .unwrap_or(false);
                            if built {
                                if let Ok(resp) = client.request("SUGGEST NEXT FOR z") {
                                    assert!(
                                        !resp.ok,
                                        "SUGGEST against a dropped view must fail"
                                    );
                                    suggest_typed_errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                    step += 1;
                    std::thread::sleep(Duration::from_millis(3));
                }
            });
        }

        // Connection hammer: 12 simultaneous holders against a cap of 8 —
        // some MUST be turned away with BUSY, none may be queued forever.
        {
            let stop = Arc::clone(&stop);
            let busy_seen = Arc::clone(&busy_seen);
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let holders: Vec<_> = (0..12).filter_map(|_| {
                        match Client::connect(addr) {
                            Ok(mut c) => {
                                let _ = c.request(".ping");
                                Some(c)
                            }
                            Err(ClientError::Busy(_)) => {
                                busy_seen.fetch_add(1, Ordering::Relaxed);
                                None
                            }
                            Err(_) => None,
                        }
                    }).collect();
                    drop(holders);
                    std::thread::sleep(Duration::from_millis(20));
                }
            });
        }

        let deadline = Instant::now() + Duration::from_secs(secs);
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(100));
        }
        stop.store(true, Ordering::Relaxed);
    });

    // Every worker has exited and dropped its sockets; the server must
    // release every slot.
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.active_connections() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }

    assert_eq!(handle.panics(), 0, "server caught panics during the soak");
    assert_eq!(
        handle.active_connections(),
        0,
        "connection slots leaked after all clients disconnected"
    );
    assert_eq!(
        dbexplorer::obs::global().gauge("server.connections").get(),
        0,
        "server.connections gauge did not return to 0"
    );
    assert!(
        handle.busy_rejections() > 0 || busy_seen.load(Ordering::Relaxed) > 0,
        "12 holders against a cap of {CAP} never produced a BUSY rejection"
    );
    assert!(
        requests_ok.load(Ordering::Relaxed) > 0,
        "no well-behaved request succeeded during the soak"
    );
    assert!(
        suggest_ok.load(Ordering::Relaxed) > 0,
        "no SUGGEST request succeeded during the soak"
    );
    assert!(
        suggest_typed_errors.load(Ordering::Relaxed) > 0,
        "SUGGEST against a dropped view never surfaced its typed error"
    );
    let ok = requests_ok.load(Ordering::Relaxed);
    let sok = suggest_ok.load(Ordering::Relaxed);
    let serr = suggest_typed_errors.load(Ordering::Relaxed);
    let busy = handle.busy_rejections() + busy_seen.load(Ordering::Relaxed);
    handle.shutdown();
    println!(
        "soak[{secs}s]: {ok} ok requests, {sok} ok suggests, {serr} typed suggest errors, \
         {busy} busy rejections, 0 panics, gauge at 0"
    );
}
