//! Connection count must be decoupled from thread count: ~10k mostly-idle
//! connections held open against one server, with the process's thread
//! count and resident set staying flat. This is the property the evented
//! rewrite exists for — the old server spent two threads (and two stacks)
//! per connection, which capped it at a few hundred sessions.
//!
//! This test lives alone in its binary: it asserts on `/proc/self/task`
//! (process-wide), so concurrently running sibling tests would pollute
//! the count.

#![cfg(target_os = "linux")]

use dbexplorer::data::UsedCarsGenerator;
use dbexplorer::serve::{Client, ServeConfig, Server};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Soft fd limit from `/proc/self/limits` ("Max open files").
fn fd_soft_limit() -> usize {
    let limits = std::fs::read_to_string("/proc/self/limits").expect("read /proc/self/limits");
    limits
        .lines()
        .find(|l| l.starts_with("Max open files"))
        .and_then(|l| l.split_whitespace().nth(3))
        .and_then(|v| v.parse().ok())
        .expect("parse soft fd limit")
}

/// Threads in this process right now.
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").expect("read /proc/self/task").count()
}

/// Resident set size in KiB from `/proc/self/status`.
fn rss_kib() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find(|l| l.starts_with("VmRSS:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .expect("parse VmRSS")
}

#[test]
fn ten_thousand_idle_connections_on_a_fixed_thread_budget() {
    // Each held connection costs two fds (client end + server end); leave
    // headroom for the binary's own files, sockets, and the poller.
    let target = 10_000.min((fd_soft_limit().saturating_sub(200)) / 2);
    assert!(target >= 1_000, "fd limit too low to say anything interesting");

    let config = ServeConfig {
        max_connections: target + 16,
        backlog: 8_192,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    server.preload("cars", UsedCarsGenerator::new(5).generate(500));
    let handle = server.spawn().expect("spawn server threads");
    let addr = handle.addr();

    let threads_before = thread_count();
    let rss_before = rss_kib();

    // Hold raw sockets: each one is accepted, greeted, and then sits idle
    // in the poller. Nothing here spawns a thread per connection on the
    // client side either, or the test machine would be the bottleneck.
    let mut held = Vec::with_capacity(target);
    for i in 0..target {
        match TcpStream::connect(addr) {
            Ok(s) => held.push(s),
            Err(e) => panic!("connect {i} of {target} failed: {e}"),
        }
    }

    let deadline = Instant::now() + Duration::from_secs(60);
    while handle.active_connections() < target {
        assert!(
            Instant::now() < deadline,
            "server accepted only {} of {target} connections",
            handle.active_connections()
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // "Mostly idle": with every slot occupied, real clients still get
    // real answers — the loop is polling, not drowning.
    let mut active = Client::connect(addr).expect("connect an active client");
    active.set_read_timeout(Some(Duration::from_secs(10))).expect("set timeout");
    for _ in 0..5 {
        let resp = active.request(".ping").expect("ping with 10k conns open");
        assert!(resp.ok);
    }
    drop(active);

    // The whole point: thread count is workers + loop (+ slack for the
    // test harness), not O(connections); and idle connections hold no
    // stacks or read buffers, so RSS stays within a small fixed budget.
    let threads_during = thread_count();
    assert!(
        threads_during <= threads_before + 4 && threads_during < 20,
        "{target} connections inflated the thread count: {threads_before} -> {threads_during}"
    );
    let rss_during = rss_kib();
    let rss_delta_kib = rss_during.saturating_sub(rss_before);
    assert!(
        rss_delta_kib < 150 * 1024,
        "{target} idle connections cost {rss_delta_kib} KiB of RSS (budget 150 MiB)"
    );

    drop(held);
    let deadline = Instant::now() + Duration::from_secs(60);
    while handle.active_connections() > 0 {
        assert!(
            Instant::now() < deadline,
            "{} connection slot(s) leaked after mass disconnect",
            handle.active_connections()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(handle.panics(), 0);
    handle.shutdown();
    println!(
        "idle-scale: {target} connections, {threads_during} threads, +{rss_delta_kib} KiB RSS"
    );
}
