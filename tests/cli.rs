//! End-to-end test of the `dbex` interactive shell, driven as a subprocess
//! with piped stdin/stdout.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_script(script: &str) -> String {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dbex"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("dbex binary spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(script.as_bytes())
        .expect("script written");
    let output = child.wait_with_output().expect("dbex exits");
    assert!(output.status.success(), "dbex exited with failure");
    String::from_utf8(output.stdout).expect("utf-8 output")
}

#[test]
fn full_session_through_the_shell() {
    let out = run_script(
        ".load cars 3000 7\n\
         SELECT Make, COUNT(*) FROM cars GROUP BY Make ORDER BY 'count(*)' DESC LIMIT 2;\n\
         CREATE CADVIEW v AS SET pivot = Make FROM cars WHERE BodyType = SUV \
           LIMIT COLUMNS 3 IUNITS 2;\n\
         REORDER ROWS IN v ORDER BY SIMILARITY(Jeep) DESC;\n\
         DESCRIBE cars;\n\
         .tables\n\
         .quit\n",
    );
    assert!(out.contains("loaded cars: 3000 rows"), "{out}");
    assert!(out.contains("count(*)"));
    assert!(out.contains("IUnit 1"));
    assert!(out.contains("Jeep (distance 0)"));
    assert!(out.contains("11 attributes"));
    assert!(out.contains("cars"));
}

#[test]
fn shell_reports_errors_without_crashing() {
    let out = run_script(
        ".load mushroom 500\n\
         SELECT * FROM missing_table;\n\
         NOT SQL AT ALL;\n\
         .summary mushroom\n\
         .quit\n",
    );
    assert!(out.contains("loaded mushroom: 500 rows"));
    assert!(out.contains("error:"), "{out}");
    assert!(out.contains("Class:"), "summary should list columns: {out}");
}

#[test]
fn shell_multiline_statement() {
    let out = run_script(
        ".load cars 1000\n\
         SELECT Make, Price FROM cars\n\
         WHERE Price > 30K\n\
         LIMIT 2;\n\
         .quit\n",
    );
    assert!(out.contains("| Make"), "{out}");
    assert!(out.contains("Price"));
}

#[test]
fn shell_help_and_unknown_commands() {
    let out = run_script(".help\n.bogus\n.quit\n");
    assert!(out.contains(".load cars"));
    assert!(out.contains("unknown command"));
}
