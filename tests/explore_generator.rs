//! Fidelity tests for the synthetic exploration dataset generator:
//! requested marginals come out within tolerance, identical seeds are
//! byte-identical across runs *and* thread counts, and the planted
//! correlations are rediscovered by the stats layer itself.

use dbexplorer::explore::{AttrKind, AttrSpec, SyntheticSpec, Zipf};
use dbexplorer::stats::interact::InteractionMatrix;
use dbexplorer::table::{to_csv, Value};
use proptest::prelude::*;

/// A small but non-trivial random spec: 2–5 attributes with varied
/// cardinality, skew, and NULL rates, optionally one planted
/// correlation onto the first attribute.
fn arb_spec() -> impl Strategy<Value = SyntheticSpec> {
    let attr = (2usize..10, 0.0f64..1.5, 0.0f64..0.3, 0u8..2);
    (
        proptest::collection::vec(attr, 2..5),
        0u64..u64::MAX,
        0.3f64..0.9,
        0u8..2,
    )
        .prop_map(|(raw, seed, strength, plant)| {
            let mut attrs: Vec<AttrSpec> = raw
                .into_iter()
                .enumerate()
                .map(|(i, (card, skew, null_rate, numeric))| {
                    let name = format!("a{i}");
                    if numeric == 1 {
                        AttrSpec::numeric(&name, card, skew, null_rate)
                    } else {
                        AttrSpec::categorical(&name, card, skew, null_rate)
                    }
                })
                .collect();
            if plant == 1 {
                let last = attrs.len() - 1;
                attrs[last] = attrs[last].clone().correlated(0, strength);
            }
            SyntheticSpec {
                name: "t".to_owned(),
                seed,
                rows: 1_200,
                attrs,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same seed ⇒ byte-identical CSV, across repeated runs and across
    /// thread counts 1/4/8.
    #[test]
    fn byte_identical_across_runs_and_threads(spec in arb_spec()) {
        let sequential = to_csv(&spec.generate_with_threads(1));
        prop_assert_eq!(&sequential, &to_csv(&spec.generate_with_threads(1)));
        prop_assert_eq!(&sequential, &to_csv(&spec.generate_with_threads(4)));
        prop_assert_eq!(&sequential, &to_csv(&spec.generate_with_threads(8)));
    }

    /// Observed NULL rates sit within a binomial-noise tolerance of the
    /// configured rates, and categorical columns never exceed their
    /// configured cardinality.
    #[test]
    fn marginals_match_the_spec(spec in arb_spec()) {
        let table = spec.generate();
        prop_assert_eq!(table.num_rows(), spec.rows);
        for (i, attr) in spec.attrs.iter().enumerate() {
            let mut nulls = 0usize;
            let mut distinct = std::collections::HashSet::new();
            for r in 0..table.num_rows() {
                match table.value(r, i) {
                    Value::Null => nulls += 1,
                    v => { distinct.insert(format!("{v:?}")); }
                }
            }
            let observed = nulls as f64 / spec.rows as f64;
            // 1200 draws: 4 sigma of a worst-case p=0.3 binomial ≈ 0.053.
            prop_assert!(
                (observed - attr.null_rate).abs() < 0.055,
                "{}: observed NULL rate {observed:.3} vs configured {:.3}",
                attr.name, attr.null_rate
            );
            let bound = match attr.kind {
                AttrKind::Categorical => attr.cardinality,
                AttrKind::Numeric => attr.cardinality * 100,
            };
            prop_assert!(distinct.len() <= bound);
        }
    }
}

/// The observed marginal of an independent skewed attribute tracks the
/// configured Zipf pmf on its most frequent levels.
#[test]
fn skew_matches_configured_zipf() {
    let spec = SyntheticSpec {
        name: "t".to_owned(),
        seed: 11,
        rows: 20_000,
        attrs: vec![AttrSpec::categorical("a0", 6, 1.0, 0.0)],
    };
    let table = spec.generate();
    let mut counts = vec![0usize; 6];
    for r in 0..table.num_rows() {
        if let Value::Str(s) = table.value(r, 0) {
            let k: usize = s.trim_start_matches("a0_v").parse().expect("level label");
            counts[k] += 1;
        }
    }
    let zipf = Zipf::new(6, 1.0);
    for (k, &c) in counts.iter().enumerate() {
        let observed = c as f64 / spec.rows as f64;
        let expected = zipf.pmf(k);
        assert!(
            (observed - expected).abs() < 0.015,
            "level {k}: observed {observed:.4} vs Zipf pmf {expected:.4}"
        );
    }
    // The skew is actually visible: most frequent level clearly dominates.
    assert!(counts[0] > counts[5] * 3, "skew 1.0 not visible in counts {counts:?}");
}

/// The stats layer rediscovers exactly the correlations the generator
/// planted: every planted pair scores a higher Cramér's V than every
/// noise pair in the default exploration dataset.
#[test]
fn interaction_matrix_rediscovers_planted_correlations() {
    let spec = SyntheticSpec::exploration_default(4_000, 42);
    let table = spec.generate();
    let view = table.full_view();
    let attrs: Vec<usize> = (0..spec.attrs.len()).collect();
    let matrix = InteractionMatrix::compute(&view, &attrs, 8);

    // Planted: c0←p (5,0), c1←d0 (6,1), c2←c1 (7,6), n0←d1 (8,2).
    let planted = [(5usize, 0usize), (6, 1), (7, 6), (8, 2)];
    // Noise attrs x0..x2 (9..12) are independent of everything.
    let mut weakest_planted = f64::INFINITY;
    for &(a, b) in &planted {
        let v = matrix.pair(a, b).expect("planted pair present").cramers_v;
        assert!(v > 0.3, "planted pair ({a},{b}) only scored V={v:.3}");
        weakest_planted = weakest_planted.min(v);
    }
    let mut strongest_noise: f64 = 0.0;
    for p in &matrix.pairs {
        if (9..12).contains(&p.a) || (9..12).contains(&p.b) {
            strongest_noise = strongest_noise.max(p.cramers_v);
        }
    }
    assert!(
        weakest_planted > strongest_noise,
        "weakest planted V {weakest_planted:.3} does not beat strongest noise V {strongest_noise:.3}"
    );
}
