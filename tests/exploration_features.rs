//! Integration tests for the exploration features beyond the core CAD View:
//! context diffs, exports, interaction analysis, aggregates, and the
//! alternative top-k algorithms — exercised through the facade crate on the
//! synthetic datasets.

use dbexplorer::core::{build_cad_view, CadRequest, ContextDiff};
use dbexplorer::data::{MushroomGenerator, UsedCarsGenerator};
use dbexplorer::query::{QueryOutput, Session};
use dbexplorer::stats::interact::InteractionMatrix;
use dbexplorer::table::{Predicate, Value};
use dbexplorer::topk::{div_astar, div_cut, ConflictGraph};

#[test]
fn context_diff_detects_condition_effect() {
    let cars = UsedCarsGenerator::new(42).generate(15_000);
    let request = || {
        CadRequest::new("Make")
            .with_pivot_values(vec!["Chevrolet", "Jeep"])
            .with_compare(vec!["Model", "Engine", "Price"])
            .with_max_compare_attrs(3)
            .with_iunits(3)
    };
    let all = cars.filter(&Predicate::eq("BodyType", "SUV")).unwrap();
    let before = build_cad_view(&all, &request()).unwrap();
    let budget = all
        .refine(&Predicate::between("Price", 5_000, 18_000))
        .unwrap();
    let after = build_cad_view(&budget, &request()).unwrap();

    let diff = ContextDiff::compute(&before, &after).unwrap();
    assert!(diff.stability() < 1.0, "price cap must change the structure");
    assert!(diff.stability() > 0.0, "some structure must persist");
    let text = diff.render(&before, &after);
    assert!(text.contains("Context diff"));
}

#[test]
fn exports_are_consistent_with_the_view() {
    let cars = UsedCarsGenerator::new(7).generate(5_000);
    let cad = build_cad_view(
        &cars.full_view(),
        &CadRequest::new("Make").with_iunits(2).with_max_compare_attrs(3),
    )
    .unwrap();
    let md = dbexplorer::core::cad_to_markdown(&cad);
    let csv = dbexplorer::core::cad_to_csv(&cad);
    for row in &cad.rows {
        assert!(md.contains(&format!("| {} |", row.pivot_label)));
        assert!(csv.contains(&format!("{},1,", row.pivot_label)));
    }
    // CSV line count = header + Σ (iunits × compare attrs).
    let expected: usize = cad
        .rows
        .iter()
        .map(|r| r.iunits.len() * cad.compare_names.len())
        .sum();
    assert_eq!(csv.lines().count(), expected + 1);
}

#[test]
fn interaction_matrix_recovers_planted_dependencies() {
    let shrooms = MushroomGenerator::new(2016).generate(6_000);
    let attrs: Vec<usize> = (0..shrooms.schema().len()).collect();
    let matrix = InteractionMatrix::compute(&shrooms.full_view(), &attrs, 6);

    let idx = |name: &str| shrooms.schema().index_of(name).unwrap();
    // The twin stalk colors are near-functional in both directions.
    let twins = matrix
        .pair(idx("StalkColorAboveRing"), idx("StalkColorBelowRing"))
        .unwrap();
    assert!(twins.cramers_v > 0.85, "V = {}", twins.cramers_v);
    // Odor nearly determines Class.
    let odor_class = matrix.pair(idx("Odor"), idx("Class")).unwrap();
    assert!(odor_class.cramers_v > 0.85);
    // VeilColor is largely constant noise: weak everywhere.
    let veil_class = matrix.pair(idx("VeilColor"), idx("Class")).unwrap();
    assert!(veil_class.cramers_v < 0.2);
    // Soft FDs include odor -> class.
    let fds = matrix.soft_fds(0.6);
    assert!(
        fds.iter().any(|&(x, y, _)| x == idx("Odor") && y == idx("Class")),
        "missing odor->class FD"
    );
}

#[test]
fn aggregate_queries_over_generated_data() {
    let mut session = Session::new();
    session.register_table("cars", UsedCarsGenerator::new(42).generate(10_000));
    let QueryOutput::Rows { columns, rows } = session
        .execute(
            "SELECT BodyType, COUNT(*), AVG(Price), MIN(Year), MAX(Year) FROM cars \
             GROUP BY BodyType ORDER BY 'count(*)' DESC",
        )
        .unwrap()
    else {
        panic!("expected rows");
    };
    assert_eq!(columns.len(), 5);
    assert!(rows.len() >= 3); // SUV, Sedan, Truck, (Van)
    // Counts descending and summing to the table size.
    let counts: Vec<i64> = rows
        .iter()
        .map(|r| {
            let Value::Int(n) = r[1] else { panic!() };
            n
        })
        .collect();
    assert!(counts.windows(2).all(|w| w[0] >= w[1]));
    assert_eq!(counts.iter().sum::<i64>(), 10_000);
    // Year bounds within the generator's range.
    for r in &rows {
        let (Value::Float(lo), Value::Float(hi)) = (&r[3], &r[4]) else {
            panic!()
        };
        assert!(*lo >= 2005.0 && *hi <= 2013.0);
    }
}

#[test]
fn div_cut_equals_div_astar_on_cad_scale_instances() {
    // Deterministic pseudo-random instances at CAD scale.
    let mut state = 0xD1CEu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..40 {
        let n = 6 + (next() % 10) as usize;
        let scores: Vec<f64> = (0..n).map(|_| (next() % 500) as f64).collect();
        let mut graph = ConflictGraph::new(n);
        for a in 0..n {
            for b in (a + 1)..n {
                if next() % 10 < 2 {
                    graph.add_conflict(a, b);
                }
            }
        }
        let k = 1 + (next() % 6) as usize;
        let a = div_astar(&scores, &graph, k);
        let c = div_cut(&scores, &graph, k);
        assert!((a.total_score - c.total_score).abs() < 1e-9);
    }
}

#[test]
fn explain_and_describe_through_the_facade() {
    let mut session = Session::new();
    session.register_table("m", MushroomGenerator::new(1).generate(2_000));
    let QueryOutput::Text(desc) = session.execute("DESCRIBE m").unwrap() else {
        panic!()
    };
    assert!(desc.contains("23 attributes"));
    let QueryOutput::Text(plan) = session
        .execute("EXPLAIN CREATE CADVIEW p AS SET pivot = Class FROM m IUNITS 2")
        .unwrap()
    else {
        panic!()
    };
    assert!(plan.contains("chi2"));
    assert!(plan.contains("Odor") || plan.contains("SporePrintColor"));
}
