//! Direction-level assertions for the paper's evaluation claims, kept fast
//! enough for CI (small result sets, few simulations). The full-scale
//! regenerations live in `dbex-bench`.

use dbexplorer::core::{build_cad_view, CadConfig, CadRequest};
use dbexplorer::data::usedcars::UsedCarsGenerator;
use dbexplorer::stats::feature::{select_compare_attributes, FeatureSelectionConfig};
use dbexplorer::table::Predicate;

fn population() -> dbexplorer::table::Table {
    UsedCarsGenerator::new(0xD_BE).generate(30_000)
}

fn five_makes(table: &dbexplorer::table::Table) -> dbexplorer::table::View<'_> {
    table
        .filter(&Predicate::in_list(
            "Make",
            ["Chevrolet", "Ford", "Honda", "Toyota", "Jeep"]
                .iter()
                .map(|&m| m.into())
                .collect(),
        ))
        .unwrap()
}

/// Figure 8's monotone trend: bigger result sets cost more to summarize.
#[test]
fn build_time_grows_with_result_size() {
    let table = population();
    let pop = five_makes(&table);
    let request = CadRequest::new("Make").with_iunits(6).with_max_compare_attrs(8);
    let time_at = |n: usize| {
        // Median of 3 to damp scheduler noise.
        let mut times: Vec<f64> = (0..3)
            .map(|_| {
                let cad = build_cad_view(&pop.sample(n), &request).unwrap();
                cad.timings.total().as_secs_f64()
            })
            .collect();
        times.sort_by(f64::total_cmp);
        times[1]
    };
    let small = time_at(2_000);
    let large = time_at(12_000);
    assert!(
        large > small,
        "12K rows ({large:.4}s) should cost more than 2K ({small:.4}s)"
    );
}

/// Optimization 1: a modest sample reproduces the full-data Compare
/// Attribute choice.
#[test]
fn sampled_feature_selection_agrees_with_full() {
    let table = population();
    let result = five_makes(&table);
    let pivot = table.schema().index_of("Make").unwrap();
    let dict = table.column(pivot).dictionary().unwrap();
    let codes: Vec<u32> = ["Chevrolet", "Ford", "Honda", "Toyota", "Jeep"]
        .iter()
        .map(|m| dict.code(m).unwrap())
        .collect();
    let candidates: Vec<usize> = (0..table.schema().len()).filter(|&i| i != pivot).collect();

    let run = |sample| {
        let config = FeatureSelectionConfig {
            max_attrs: 5,
            sample,
            ..FeatureSelectionConfig::default()
        };
        let (set, _) =
            select_compare_attributes(&result, pivot, &codes, &[], &candidates, &config);
        let mut set = set;
        set.sort_unstable();
        set
    };
    let full = run(None);
    let sampled = run(Some(5_000));
    let agree = sampled.iter().filter(|a| full.contains(a)).count();
    assert!(
        agree >= 4,
        "5K sample selected {sampled:?}, full selected {full:?}"
    );
}

/// Combined optimizations are strictly faster at 20K+ rows while keeping
/// the same Compare Attribute set.
#[test]
fn optimized_config_is_faster_and_consistent() {
    let table = population();
    let pop = five_makes(&table);
    let result = pop.sample(20_000);

    let worst = CadRequest::new("Make")
        .with_iunits(6)
        .with_max_compare_attrs(8)
        .with_config(CadConfig {
            alpha: 1.0,
            candidate_factor: 2.5,
            ..CadConfig::default()
        });
    let optimized = CadRequest::new("Make")
        .with_iunits(6)
        .with_max_compare_attrs(5)
        .with_config(CadConfig::optimized());

    let median = |request: &CadRequest| {
        let mut times: Vec<f64> = (0..3)
            .map(|_| {
                build_cad_view(&result, request)
                    .unwrap()
                    .timings
                    .total()
                    .as_secs_f64()
            })
            .collect();
        times.sort_by(f64::total_cmp);
        times[1]
    };
    let tw = median(&worst);
    let to = median(&optimized);
    assert!(
        to < tw,
        "optimized ({to:.4}s) should beat worst-case ({tw:.4}s)"
    );

    let cad = build_cad_view(&result, &optimized).unwrap();
    // The optimized view still contains the strong discriminators.
    assert!(cad.compare_names.iter().any(|n| n == "Model"));
}

/// Table 1's headline comparison claims: Chevrolet and Ford offer similar
/// SUVs; Jeep is different (all 4WD, different price points).
#[test]
fn chevrolet_ford_similar_jeep_different() {
    let table = UsedCarsGenerator::new(42).generate(30_000);
    let result = table
        .filter(&Predicate::and(vec![
            Predicate::eq("BodyType", "SUV"),
            Predicate::eq("Transmission", "Automatic"),
        ]))
        .unwrap();
    let cad = build_cad_view(
        &result,
        &CadRequest::new("Make")
            .with_pivot_values(vec!["Chevrolet", "Ford", "Honda", "Toyota", "Jeep"])
            .with_iunits(3)
            .with_max_compare_attrs(5),
    )
    .unwrap();
    let order = cad.reorder_rows("Chevrolet");
    let pos = |make: &str| order.iter().position(|(l, _)| l == make).unwrap();
    assert_eq!(pos("Chevrolet"), 0);
    assert!(
        pos("Jeep") > pos("Ford"),
        "Jeep should rank below Ford in similarity to Chevrolet: {order:?}"
    );
}

/// The simulated user study's headline: TPFacet is several times faster on
/// every task with quality no worse (direction only; tiny dataset).
#[test]
fn study_headline_direction_small() {
    use dbexplorer::study::{run_study, Interface, StudyConfig, TaskId};
    let report = run_study(&StudyConfig {
        rows: 2_000,
        ..StudyConfig::default()
    });
    for task in [TaskId::Classifier, TaskId::SimilarPair] {
        let solr = report.mean(task, Interface::Solr, true);
        let tp = report.mean(task, Interface::TpFacet, true);
        assert!(solr > 1.5 * tp, "{}: {solr:.1} vs {tp:.1} min", task.name());
    }
    let err_solr = report.mean(TaskId::AltCondition, Interface::Solr, false);
    let err_tp = report.mean(TaskId::AltCondition, Interface::TpFacet, false);
    assert!(err_tp < err_solr, "error {err_tp:.2} vs {err_solr:.2}");
}
