//! Robustness suite: fuzz-style SQL property tests, an adversarial CSV
//! corpus, and deterministic fault injection.
//!
//! The contract under test (see DESIGN.md, "Error handling & graceful
//! degradation"): no statement fed to [`Session::execute`] may abort the
//! process — every failure surfaces as a typed [`QueryError`] whose
//! `source()` chain is non-empty, and a statement that panics inside the
//! engine is caught at the session boundary and reported as
//! `QueryError::Panicked` (which the fuzz loop treats as a bug).

use dbexplorer::core::ExecBudget;
use dbexplorer::data::usedcars::UsedCarsGenerator;
use dbexplorer::query::{QueryError, QueryOutput, Session};
use std::error::Error as _;
use std::time::Duration;

/// xorshift64*: small, deterministic, no dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.next() % 100 < percent
    }
}

/// Walks the source chain; fails the test if it is empty or cyclic.
fn assert_typed_with_chain(err: &QueryError, stmt: &str) {
    assert!(
        err.source().is_some(),
        "error with empty source() chain for {stmt:?}: {err:?}"
    );
    let mut depth = 0;
    let mut src = err.source();
    while let Some(s) = src {
        depth += 1;
        assert!(depth < 32, "unreasonably deep source chain for {stmt:?}");
        src = s.source();
    }
}

/// Flattens an error and its sources into one searchable string.
fn chain_text(err: &QueryError) -> String {
    let mut out = err.to_string();
    let mut src = err.source();
    while let Some(s) = src {
        out.push_str(": ");
        out.push_str(&s.to_string());
        src = s.source();
    }
    out
}

fn small_session() -> Session {
    let mut s = Session::new();
    s.register_table("cars", UsedCarsGenerator::new(1).generate(300));
    s.execute("CREATE CADVIEW seeded AS SET pivot = Make FROM cars IUNITS 2")
        .expect("seed CAD view");
    s
}

// ---------------------------------------------------------------------------
// Fuzz-style property test: ≥1000 random/mutated statements, zero aborts.
// ---------------------------------------------------------------------------

/// Valid statements covering every verb; mutation starts from these.
const SEEDS: &[&str] = &[
    "SELECT * FROM cars WHERE BodyType = SUV AND Mileage BETWEEN 10K AND 30K",
    "SELECT Make, Price FROM cars WHERE Make IN (Ford, Jeep) ORDER BY Price DESC LIMIT 5",
    "SELECT Make, COUNT(*), AVG(Price) FROM cars GROUP BY Make",
    "CREATE CADVIEW v AS SET pivot = Make SELECT Price FROM cars \
     WHERE BodyType = SUV LIMIT COLUMNS 4 IUNITS 2",
    "CREATE CADVIEW w AS SET pivot = BodyType FROM cars IUNITS 2 ORDER BY Price ASC",
    "EXPLAIN CREATE CADVIEW x AS SET pivot = Make FROM cars IUNITS 2",
    "HIGHLIGHT SIMILAR IUNITS IN seeded WHERE SIMILARITY(Ford, 1) > 2.0",
    "REORDER ROWS IN seeded ORDER BY SIMILARITY(Ford) DESC",
    "DESCRIBE cars",
    "SHOW CADVIEWS",
    "DROP CADVIEW w",
    "SELECT * FROM cars WHERE Price != 10K OR NOT Make = Ford",
];

/// Tokens spliced in by the mutator: keywords, junk, extreme literals.
const SPLICE: &[&str] = &[
    "SELECT", "FROM", "WHERE", "CADVIEW", "IUNITS", "ORDER", "BY", "SIMILARITY",
    "BETWEEN", "IN", "AND", "OR", "NOT", "LIMIT", "GROUP", "COLUMNS", "pivot",
    "COUNT(*)", "''", "'", "(", ")", ",", ";", "=", "!=", "<=", ">=", "<>",
    "9999999999999999999K", "-9999999999999999999M", "0.0000000001", "NaN",
    "1e308", "''''", "nope", "\u{0}", "émile", "🦀",
];

const MUTATION_CHARS: &[char] = &[
    '(', ')', ',', '\'', '=', '<', '>', '!', '*', ';', '.', '-', '_', ' ', '\t',
    '\n', '0', '9', 'K', 'M', 'a', 'Z', 'é', '🦀', '\u{0}', '\u{7f}',
];

fn mutate(seed: &str, rng: &mut Rng) -> String {
    let mut chars: Vec<char> = seed.chars().collect();
    for _ in 0..=rng.below(3) {
        if chars.is_empty() {
            break;
        }
        match rng.below(7) {
            // Truncate at a random point.
            0 => chars.truncate(rng.below(chars.len())),
            // Delete a random character.
            1 => {
                let i = rng.below(chars.len());
                chars.remove(i);
            }
            // Insert a random character.
            2 => {
                let i = rng.below(chars.len() + 1);
                chars.insert(i, MUTATION_CHARS[rng.below(MUTATION_CHARS.len())]);
            }
            // Replace a random character.
            3 => {
                let i = rng.below(chars.len());
                chars[i] = MUTATION_CHARS[rng.below(MUTATION_CHARS.len())];
            }
            // Duplicate a random slice.
            4 => {
                let a = rng.below(chars.len());
                let b = (a + 1 + rng.below(8)).min(chars.len());
                let slice: Vec<char> = chars[a..b].to_vec();
                chars.splice(a..a, slice);
            }
            // Splice in a random token at a random point.
            5 => {
                let i = rng.below(chars.len() + 1);
                let tok: Vec<char> = format!(" {} ", SPLICE[rng.below(SPLICE.len())])
                    .chars()
                    .collect();
                chars.splice(i..i, tok);
            }
            // Swap two whitespace-separated tokens.
            _ => {
                let s: String = chars.iter().collect();
                let mut toks: Vec<&str> = s.split_whitespace().collect();
                if toks.len() >= 2 {
                    let a = rng.below(toks.len());
                    let b = rng.below(toks.len());
                    toks.swap(a, b);
                    chars = toks.join(" ").chars().collect();
                }
            }
        }
    }
    chars.into_iter().collect()
}

fn garbage(rng: &mut Rng) -> String {
    let len = rng.below(48);
    (0..len)
        .map(|_| MUTATION_CHARS[rng.below(MUTATION_CHARS.len())])
        .collect()
}

#[test]
fn fuzzed_statements_never_abort_and_errors_carry_chains() {
    const CASES: usize = 1_200;
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    let mut session = small_session();
    let (mut ok, mut errs) = (0usize, 0usize);
    for case in 0..CASES {
        let stmt = if rng.chance(15) {
            garbage(&mut rng)
        } else {
            mutate(SEEDS[rng.below(SEEDS.len())], &mut rng)
        };
        match session.execute(&stmt) {
            Ok(_) => ok += 1,
            Err(QueryError::Panicked(p)) => {
                panic!("case {case}: statement panicked inside the engine: {stmt:?} — {p:?}")
            }
            Err(e) => {
                assert_typed_with_chain(&e, &stmt);
                errs += 1;
            }
        }
    }
    assert_eq!(ok + errs, CASES);
    // The mutator must actually exercise both paths to mean anything.
    assert!(errs > CASES / 4, "mutations too tame: only {errs} errors");
    assert!(ok > 0, "mutations too destructive: nothing executed");
    // The session is still usable after the storm.
    session
        .execute("SELECT * FROM cars WHERE Make = Ford")
        .expect("session survives the fuzz run");
}

#[test]
fn fuzz_run_is_deterministic() {
    let run = |seed: u64| {
        let mut rng = Rng(seed);
        let mut session = small_session();
        (0..100)
            .map(|_| {
                let stmt = mutate(SEEDS[rng.below(SEEDS.len())], &mut rng);
                match session.execute(&stmt) {
                    Ok(_) => "ok".to_owned(),
                    Err(e) => chain_text(&e),
                }
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(7), run(7));
}

// ---------------------------------------------------------------------------
// Adversarial CSV corpus: degenerate tables through the full pipeline.
// ---------------------------------------------------------------------------

/// (name, csv, pivot) triples of degenerate inputs. Every one must either
/// build a valid CAD View or fail with a typed, chained error — never panic.
const ADVERSARIAL: &[(&str, &str, &str)] = &[
    ("header_only", "Make,Price\n", "Make"),
    ("one_row", "Make,Price,Body\nFord,100,SUV\n", "Make"),
    (
        "all_null_column",
        "Make,Price\nFord,\nJeep,\nFord,\nJeep,\nFord,\n",
        "Make",
    ),
    (
        "single_distinct_pivot",
        "Make,Price\nFord,1\nFord,2\nFord,3\nFord,4\n",
        "Make",
    ),
    (
        "nan_and_infinities",
        "Make,Score\nFord,NaN\nJeep,inf\nHonda,-inf\nKia,1.5\nFord,2.5\nJeep,NaN\n",
        "Make",
    ),
    (
        "numeric_pivot_constant",
        "Price,Make\n7,Ford\n7,Jeep\n7,Ford\n7,Kia\n",
        "Price",
    ),
    ("null_pivot_values", "Make,Price\n,1\n,2\nFord,3\n", "Make"),
];

#[test]
fn adversarial_csv_corpus_never_panics() {
    for (name, csv, pivot) in ADVERSARIAL {
        let table = dbexplorer::table::parse_csv(csv)
            .unwrap_or_else(|e| panic!("corpus entry {name} failed to parse: {e}"));
        let mut session = Session::new();
        session.register_table("t", table);
        let statements = [
            "SELECT * FROM t".to_owned(),
            format!("SELECT {pivot}, COUNT(*) FROM t GROUP BY {pivot}"),
            format!("CREATE CADVIEW v AS SET pivot = {pivot} FROM t IUNITS 2"),
            format!("EXPLAIN CREATE CADVIEW v AS SET pivot = {pivot} FROM t IUNITS 2"),
            "HIGHLIGHT SIMILAR IUNITS IN v WHERE SIMILARITY(Ford, 1) > 0.1".to_owned(),
            "REORDER ROWS IN v ORDER BY SIMILARITY(Ford) DESC".to_owned(),
        ];
        for stmt in &statements {
            match session.execute(stmt) {
                Ok(_) => {}
                Err(QueryError::Panicked(p)) => {
                    panic!("corpus {name}: {stmt:?} panicked inside the engine: {p:?}")
                }
                Err(e) => assert_typed_with_chain(&e, stmt),
            }
        }
    }
}

#[test]
fn one_row_view_builds_or_fails_typed() {
    // A 1-row result set is the smallest possible CAD input; clustering has
    // exactly one point. It must produce a single-IUnit view, not divide by
    // zero or index out of bounds.
    let mut session = Session::new();
    session.register_table(
        "t",
        dbexplorer::table::parse_csv("Make,Price,Body\nFord,100,SUV\n").expect("csv"),
    );
    let out = session
        .execute("CREATE CADVIEW v AS SET pivot = Make FROM t IUNITS 3")
        .expect("1-row view must build");
    let QueryOutput::Cad { rendered, .. } = out else {
        panic!("expected CAD output")
    };
    assert!(rendered.contains("Ford"), "{rendered}");
    let cad = session.cad_view("v").expect("stored");
    assert_eq!(cad.rows.len(), 1);
    assert_eq!(cad.rows[0].iunits.len(), 1);
}

// ---------------------------------------------------------------------------
// Deterministic fault injection: armed failure sites in lower layers.
// ---------------------------------------------------------------------------

#[test]
fn stats_fault_in_pivot_discretization_surfaces_chain() {
    let mut session = small_session();
    let _guard = dbexplorer::stats::fault::scoped("histogram::build");
    // A numeric pivot forces discretization, which builds a histogram.
    let err = session
        .execute("CREATE CADVIEW p AS SET pivot = Price FROM cars IUNITS 2")
        .expect_err("armed histogram fault must fail the build");
    assert_typed_with_chain(&err, "pivot = Price under histogram fault");
    let chain = chain_text(&err);
    assert!(
        chain.contains("injected fault at histogram::build"),
        "chain does not reach the injected fault: {chain}"
    );
}

#[test]
fn stats_fault_in_codec_surfaces_chain() {
    let mut session = small_session();
    let _guard = dbexplorer::stats::fault::scoped("codec::build");
    let err = session
        .execute("CREATE CADVIEW c AS SET pivot = Make FROM cars IUNITS 2")
        .expect_err("armed codec fault must fail the build");
    assert_typed_with_chain(&err, "codec::build fault");
    assert!(chain_text(&err).contains("injected fault at codec::build"));
}

#[test]
fn kmeans_fault_degrades_to_minibatch_instead_of_failing() {
    let mut session = small_session();
    let rendered_degradation = {
        let _guard = dbexplorer::cluster::fault::scoped("cluster::kmeans");
        let out = session
            .execute("CREATE CADVIEW k AS SET pivot = Make FROM cars IUNITS 2")
            .expect("kmeans fault must degrade, not fail");
        let QueryOutput::Cad { degradation, .. } = out else {
            panic!("expected CAD output")
        };
        degradation
    };
    assert!(
        rendered_degradation.iter().any(|d| d.contains("clustering failed")),
        "no degradation recorded for the failed rung: {rendered_degradation:?}"
    );
    // The view is stored and fully usable despite the degraded build.
    let cad = session.cad_view("k").expect("degraded view stored");
    assert!(cad.is_degraded());
    assert!(!cad.rows.is_empty());
    for row in &cad.rows {
        assert!(!row.iunits.is_empty(), "row {} has no IUnits", row.pivot_label);
    }
    // With the fault disarmed the same statement builds cleanly.
    let out = session
        .execute("CREATE CADVIEW k2 AS SET pivot = Make FROM cars IUNITS 2")
        .expect("clean rebuild");
    let QueryOutput::Cad { degradation, .. } = out else {
        panic!("expected CAD output")
    };
    assert!(degradation.is_empty(), "clean build degraded: {degradation:?}");
}

#[test]
fn minibatch_fault_under_row_budget_degrades_to_sampled() {
    let mut session = small_session();
    // The row budget forces the mini-batch rung; the armed fault knocks the
    // ladder down one more rung to the sampled build.
    session.set_budget(ExecBudget::unlimited().with_max_rows(10));
    let _guard = dbexplorer::cluster::fault::scoped("cluster::minibatch");
    let out = session
        .execute("CREATE CADVIEW m AS SET pivot = Make FROM cars IUNITS 2")
        .expect("minibatch fault must degrade to sampled, not fail");
    let QueryOutput::Cad { degradation, .. } = out else {
        panic!("expected CAD output")
    };
    assert!(
        degradation.iter().any(|d| d.contains("sampled-clustering")
            || d.contains("single-unit-fallback")),
        "expected a lower rung after the minibatch fault: {degradation:?}"
    );
}

#[test]
fn fuzz_under_fault_injection_still_never_aborts() {
    // The fuzz property must hold even while a lower layer is failing.
    let mut rng = Rng(0xDEAD_BEEF_CAFE_F00D);
    let mut session = small_session();
    let _guard = dbexplorer::cluster::fault::scoped("cluster::kmeans");
    for _ in 0..200 {
        let stmt = mutate(SEEDS[rng.below(SEEDS.len())], &mut rng);
        match session.execute(&stmt) {
            Ok(_) => {}
            Err(QueryError::Panicked(p)) => {
                panic!("panic under fault injection: {stmt:?} — {p:?}")
            }
            Err(e) => assert_typed_with_chain(&e, &stmt),
        }
    }
}

// ---------------------------------------------------------------------------
// Budget exhaustion: degraded-but-valid views (acceptance criterion).
// ---------------------------------------------------------------------------

#[test]
fn exhausted_budget_returns_degraded_but_valid_view() {
    let table = UsedCarsGenerator::new(3).generate(2_000);
    // Reference: distinct pivot values from an unlimited build.
    let mut reference = Session::new();
    reference.register_table("cars", table.clone());
    reference
        .execute("CREATE CADVIEW r AS SET pivot = Make FROM cars IUNITS 2")
        .expect("reference build");
    let expected_rows: Vec<String> = reference.cad_view("r").expect("ref")
        .rows
        .iter()
        .map(|r| r.pivot_label.clone())
        .collect();

    let mut session = Session::new();
    session.register_table("cars", table);
    // A zero time budget is exhausted before the first stage runs.
    session.set_budget(ExecBudget::unlimited().with_time_limit(Duration::ZERO));
    let out = session
        .execute("CREATE CADVIEW v AS SET pivot = Make FROM cars IUNITS 2")
        .expect("exhausted budget must degrade, not error or hang");
    let QueryOutput::Cad { degradation, .. } = out else {
        panic!("expected CAD output")
    };
    assert!(!degradation.is_empty(), "no degradation recorded");
    let cad = session.cad_view("v").expect("stored");
    assert!(cad.is_degraded());
    let got_rows: Vec<String> = cad.rows.iter().map(|r| r.pivot_label.clone()).collect();
    assert_eq!(got_rows, expected_rows, "degraded view lost pivot rows");
    for row in &cad.rows {
        assert!(!row.iunits.is_empty(), "row {} has no IUnits", row.pivot_label);
    }
}
