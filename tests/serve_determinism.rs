//! 32 concurrent clients must be byte-indistinguishable from one.
//!
//! Every client replays the same exploration script against one server;
//! every response line must equal the single-session oracle transcript
//! ([`oracle_transcript`]) — cold cache and warm. The warm pass must
//! additionally show shared-cache hits: client sessions draw codecs,
//! contingency tables, and cluster partitions from one process-wide
//! `StatsCache`, and a byte-identical answer that *recomputed* everything
//! would be a performance bug, not a correctness pass.

use dbexplorer::data::UsedCarsGenerator;
use dbexplorer::serve::{
    oracle_transcript, strip_stream_tags, Client, ServeConfig, Server, ServerHandle,
};

const CLIENTS: usize = 32;
const ROWS: usize = 1_500;
const SEED: u64 = 11;

const SCRIPT: &[&str] = &[
    ".tables",
    "SELECT Make, Price FROM cars WHERE BodyType = Sedan LIMIT 4",
    "CREATE CADVIEW v AS SET pivot = Make FROM cars WHERE BodyType = Sedan LIMIT COLUMNS 2 IUNITS 2",
    "REORDER ROWS IN v ORDER BY SIMILARITY(Honda) DESC",
    "HIGHLIGHT SIMILAR IUNITS IN v WHERE SIMILARITY(Ford, 1) > 0.5",
];

fn cars() -> dbexplorer::table::Table {
    UsedCarsGenerator::new(SEED).generate(ROWS)
}

/// Runs `CLIENTS` concurrent replays of [`SCRIPT`]; panics (with the
/// offending request) on the first byte that differs from `oracle`.
fn replay_pass(handle: &ServerHandle, oracle: &[String], pass: &str) {
    let transcripts: Vec<Vec<String>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let addr = handle.addr();
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    SCRIPT
                        .iter()
                        .map(|req| client.request_line(req).expect("request"))
                        .collect::<Vec<String>>()
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("client thread"))
            .collect()
    });
    for (i, transcript) in transcripts.iter().enumerate() {
        assert_eq!(transcript.len(), oracle.len());
        for (j, (got, want)) in transcript.iter().zip(oracle).enumerate() {
            assert_eq!(
                got, want,
                "{pass} pass: client {i} diverged from the oracle on {:?}",
                SCRIPT[j]
            );
        }
    }
}

#[test]
fn thirty_two_clients_are_byte_identical_to_one_session() {
    let config = ServeConfig::default();
    let oracle = oracle_transcript(vec![("cars".to_owned(), cars())], &config, SCRIPT);
    // The script must exercise every response kind we serve.
    assert!(oracle.iter().any(|l| l.contains("\"kind\":\"rows\"")));
    assert!(oracle.iter().any(|l| l.contains("\"kind\":\"cad\"")));
    assert!(oracle.iter().any(|l| l.contains("\"kind\":\"reordered\"")));

    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    server.preload("cars", cars());
    let cache = server.cache();
    let handle = server.spawn().expect("spawn accept thread");

    replay_pass(&handle, &oracle, "cold");
    let after_cold = cache.stats();
    assert!(
        after_cold.hits > 0,
        "32 clients building the same view must share stats work: {after_cold}"
    );

    replay_pass(&handle, &oracle, "warm");
    let after_warm = cache.stats();
    assert!(after_warm.hits > after_cold.hits, "warm pass produced no cache hits");
    assert_eq!(
        after_warm.misses, after_cold.misses,
        "warm pass repeated identical requests yet missed the shared cache"
    );

    assert_eq!(handle.panics(), 0);
    handle.shutdown();
}

/// Streamed mode must refine toward the *same* bytes: for clients in
/// `.stream on`, expensive builds answer with a preview frame first, but
/// the final frame — minus its `seq`/`final` tags — must still equal the
/// single-session oracle line for line. The table is sized past the
/// preview threshold so the CAD build genuinely streams.
#[test]
fn streamed_replay_strips_to_the_oracle() {
    const STREAM_ROWS: usize = 4_000;
    const STREAM_CLIENTS: usize = 8;
    let script: &[&str] = &[
        ".tables",
        "SELECT Make, Price FROM cars WHERE BodyType = Sedan LIMIT 4",
        "CREATE CADVIEW v AS SET pivot = Make FROM cars LIMIT COLUMNS 2 IUNITS 2",
        "REORDER ROWS IN v ORDER BY SIMILARITY(Honda) DESC",
    ];
    let cars = || UsedCarsGenerator::new(SEED).generate(STREAM_ROWS);

    let config = ServeConfig::default();
    let oracle = oracle_transcript(vec![("cars".to_owned(), cars())], &config, script);
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    server.preload("cars", cars());
    let handle = server.spawn().expect("spawn server threads");

    let streams: Vec<Vec<Vec<String>>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..STREAM_CLIENTS)
            .map(|_| {
                let addr = handle.addr();
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let ack = client.request(".stream on").expect(".stream on");
                    assert!(ack.ok, "{ack:?}");
                    script
                        .iter()
                        .map(|req| client.request_stream_lines(req).expect("request"))
                        .collect::<Vec<Vec<String>>>()
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("client thread"))
            .collect()
    });

    for (i, transcript) in streams.iter().enumerate() {
        assert_eq!(transcript.len(), oracle.len());
        let mut previews = 0;
        for (j, (frames, want)) in transcript.iter().zip(&oracle).enumerate() {
            previews += frames.len() - 1; // every non-final frame is a preview
            let last = frames.last().expect("at least one frame");
            assert_eq!(
                &strip_stream_tags(last),
                want,
                "client {i}: streamed final frame diverged from the oracle on {:?}",
                script[j]
            );
        }
        assert!(
            previews > 0,
            "client {i} saw no preview frames — the CAD build never streamed"
        );
    }

    assert_eq!(handle.panics(), 0);
    handle.shutdown();
}
