//! Golden snapshot tests over the observability surface.
//!
//! `EXPLAIN ANALYZE CADVIEW` output and the REPL's `.metrics` dump are
//! compared against checked-in snapshots under `tests/snapshots/`, with
//! every wall-clock-dependent field masked by
//! [`dbexplorer::obs::mask_timings`] first. Structural fields — span
//! names, call counts, rows scanned, cache hits/misses, degradation
//! level, chi-square scores — are compared byte-for-byte.
//!
//! Regenerate after an intentional output change with:
//!
//! ```text
//! UPDATE_SNAPSHOTS=1 cargo test --test observability
//! ```
//!
//! Cache-counter determinism depends on one session per build: the
//! session's StatsCache starts empty, so hit/miss deltas are a function
//! of the build alone.

use dbexplorer::data::{HotelsGenerator, MushroomGenerator, UsedCarsGenerator};
use dbexplorer::obs::mask_timings;
use dbexplorer::query::{QueryOutput, Session};
use dbexplorer::table::Table;
use std::path::PathBuf;

/// The three datasets of `parallel_determinism.rs`, with their pivots.
fn datasets() -> Vec<(&'static str, Table, &'static str)> {
    vec![
        ("cars", UsedCarsGenerator::new(7).generate(6_000), "Make"),
        ("mushroom", MushroomGenerator::new(7).generate(4_000), "Odor"),
        ("hotels", HotelsGenerator::new(7).generate(4_000), "District"),
    ]
}

/// Runs `EXPLAIN ANALYZE CADVIEW` over a fresh session and returns the
/// masked report.
fn masked_explain_analyze(name: &str, table: Table, pivot: &str, threads: usize) -> String {
    let mut session = Session::new();
    session.set_threads(threads);
    session.register_table(name, table);
    let sql =
        format!("EXPLAIN ANALYZE CADVIEW v AS SET pivot = {pivot} FROM {name} IUNITS 3");
    let out = session
        .execute(&sql)
        .unwrap_or_else(|e| panic!("{name}: EXPLAIN ANALYZE failed: {e}"));
    let QueryOutput::Text(text) = out else {
        panic!("{name}: EXPLAIN ANALYZE returned a non-text output");
    };
    mask_timings(&text)
}

fn snapshot_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(file)
}

/// Compares `actual` against the named snapshot; rewrites the snapshot
/// instead when `UPDATE_SNAPSHOTS` is set.
fn assert_snapshot(file: &str, actual: &str) {
    let path = snapshot_path(file);
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::write(&path, actual)
            .unwrap_or_else(|e| panic!("cannot write snapshot {}: {e}", path.display()));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read snapshot {} ({e}); generate it with \
             UPDATE_SNAPSHOTS=1 cargo test --test observability",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "masked output diverged from {}; if the change is intentional, \
         regenerate with UPDATE_SNAPSHOTS=1 cargo test --test observability",
        path.display()
    );
}

#[test]
fn explain_analyze_matches_snapshot_per_dataset() {
    for (name, table, pivot) in datasets() {
        let masked = masked_explain_analyze(name, table, pivot, 1);
        // Sanity before pinning: the report must actually carry the
        // analyze section and the structural counters.
        assert!(masked.contains("analyze (per-phase spans):"), "{name}:\n{masked}");
        assert!(masked.contains("cad_build"), "{name}:\n{masked}");
        assert!(masked.contains("cache_hits="), "{name}:\n{masked}");
        assert!(masked.contains("degradation_level="), "{name}:\n{masked}");
        assert!(!masked.contains("ms "), "unmasked duration in {name}:\n{masked}");
        assert_snapshot(&format!("explain_analyze_{name}.txt"), &masked);
    }
}

#[test]
fn explain_analyze_masked_output_is_thread_count_invariant() {
    // Everything except wall time is part of the determinism contract:
    // the masked report must be byte-identical at 1, 2, and 8 threads.
    for (name, table, pivot) in datasets() {
        let reference = masked_explain_analyze(name, table.clone(), pivot, 1);
        for threads in [2, 8] {
            let masked = masked_explain_analyze(name, table.clone(), pivot, threads);
            assert_eq!(
                masked, reference,
                "{name}: masked EXPLAIN ANALYZE diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn repl_metrics_dump_matches_snapshot() {
    // The metrics registry is process-wide, so the golden runs in a
    // subprocess REPL: one fixed script, whole stdout masked. In-process
    // assertions would race with every other test that builds a view.
    use std::io::Write;
    use std::process::{Command, Stdio};
    let script = ".load cars 2000 7\n\
                  .trace on\n\
                  CREATE CADVIEW v AS SET pivot = Make FROM cars IUNITS 2;\n\
                  .metrics\n\
                  .quit\n";
    let mut child = Command::new(env!("CARGO_BIN_EXE_dbex"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("dbex binary spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(script.as_bytes())
        .expect("script written");
    let output = child.wait_with_output().expect("dbex exits");
    assert!(output.status.success(), "dbex exited with failure");
    let stdout = String::from_utf8(output.stdout).expect("utf-8 output");
    let masked = mask_timings(&stdout);
    assert!(masked.contains("metrics registry"), "{masked}");
    assert!(masked.contains("counter"), "{masked}");
    assert!(masked.contains("cad.builds"), "{masked}");
    assert!(masked.contains("trace (per-phase spans):"), "{masked}");
    assert_snapshot("repl_metrics.txt", &masked);
}
