//! Cross-crate integration tests: the full DBExplorer pipeline from data
//! generation through SQL to CAD View exploration.

use dbexplorer::core::{build_cad_view, CadRequest, Preference};
use dbexplorer::data::usedcars::UsedCarsGenerator;
use dbexplorer::query::{QueryOutput, Session};
use dbexplorer::table::Predicate;

fn cars() -> dbexplorer::table::Table {
    UsedCarsGenerator::new(42).generate(20_000)
}

#[test]
fn paper_example_1_pipeline() {
    // Mary's session: initial query, CAD View, highlight, reorder.
    let mut session = Session::new();
    session.register_table("UsedCars", cars());

    let out = session
        .execute(
            "SELECT * FROM UsedCars WHERE Mileage BETWEEN 10K AND 30K \
             AND Transmission = Automatic AND BodyType = SUV",
        )
        .unwrap();
    let QueryOutput::Rows { rows, .. } = out else {
        panic!("expected rows");
    };
    assert!(rows.len() > 1_000, "initial result too small: {}", rows.len());

    let out = session
        .execute(
            "CREATE CADVIEW CompareMakes AS SET pivot = Make SELECT Price \
             FROM UsedCars \
             WHERE Mileage BETWEEN 10K AND 30K AND Transmission = Automatic \
               AND BodyType = SUV AND \
               (Make = Jeep OR Make = Toyota OR Make = Honda OR Make = Ford \
                OR Make = Chevrolet) \
             LIMIT COLUMNS 5 IUNITS 3",
        )
        .unwrap();
    let QueryOutput::Cad { rendered, .. } = out else {
        panic!("expected CAD view");
    };
    assert!(rendered.contains("Chevrolet"));
    assert!(rendered.contains("IUnit 3"));

    let cad = session.cad_view("CompareMakes").unwrap();
    assert_eq!(cad.rows.len(), 5);
    assert_eq!(cad.compare_names[0], "Price"); // forced by SELECT
    assert!(cad.compare_names.len() <= 5);
    for row in &cad.rows {
        assert!(row.iunits.len() <= 3);
        assert!(!row.iunits.is_empty(), "row {} has no IUnits", row.pivot_label);
    }

    // Follow-up statements operate on the stored view.
    let out = session
        .execute(
            "HIGHLIGHT SIMILAR IUNITS IN CompareMakes WHERE SIMILARITY(Chevrolet, 1) > 2.0",
        )
        .unwrap();
    let QueryOutput::Highlights(hits) = out else {
        panic!("expected highlights");
    };
    for (_, id, sim) in &hits {
        assert!(*id >= 1 && *id <= 3);
        assert!(*sim >= 2.0 && *sim <= 5.0 + 1e-9);
    }

    let out = session
        .execute("REORDER ROWS IN CompareMakes ORDER BY SIMILARITY(Jeep) DESC")
        .unwrap();
    let QueryOutput::Reordered(order) = out else {
        panic!("expected reorder");
    };
    assert_eq!(order[0].0, "Jeep");
    assert_eq!(order.len(), 5);
    assert_eq!(
        session.cad_view("CompareMakes").unwrap().rows[0].pivot_label,
        "Jeep"
    );
}

#[test]
fn hidden_attribute_surfaces_in_cad_view() {
    // Limitation 2: Engine is non-queriable, yet the CAD View exposes it.
    let table = cars();
    let engine_idx = table.schema().index_of("Engine").unwrap();
    assert!(!table.schema().field(engine_idx).queriable);

    let result = table
        .filter(&Predicate::eq("BodyType", "SUV"))
        .unwrap();
    let cad = build_cad_view(&result, &CadRequest::new("Make")).unwrap();
    assert!(
        cad.compare_names.iter().any(|n| n == "Engine"),
        "Engine should be auto-selected: {:?}",
        cad.compare_names
    );
}

#[test]
fn table1_qualitative_structure() {
    // The regenerated Table 1 should show the paper's qualitative facts.
    let table = UsedCarsGenerator::new(42).generate(40_000);
    let result = table
        .filter(&Predicate::and(vec![
            Predicate::eq("BodyType", "SUV"),
            Predicate::between("Mileage", 10_000, 30_000),
            Predicate::eq("Transmission", "Automatic"),
        ]))
        .unwrap();
    let cad = build_cad_view(
        &result,
        &CadRequest::new("Make")
            .with_pivot_values(vec!["Chevrolet", "Ford", "Honda", "Toyota", "Jeep"])
            .with_compare(vec!["Price"])
            .with_max_compare_attrs(5)
            .with_iunits(3),
    )
    .unwrap();

    // Model is among the Compare Attributes (the paper highlights that
    // Model, not Mileage, is the best discriminator).
    assert!(cad.compare_names.iter().any(|n| n == "Model"));

    // Jeep's IUnits are overwhelmingly 4WD (paper: Jeep differs from
    // Chevrolet primarily in Price and Drivetrain).
    let drivetrain_pos = cad
        .compare_names
        .iter()
        .position(|n| n == "Drivetrain")
        .expect("Drivetrain selected");
    let jeep = cad.row("Jeep").unwrap();
    let has_4wd = jeep
        .iunits
        .iter()
        .filter(|u| u.labels[drivetrain_pos].contains(&"4WD".to_string()))
        .count();
    assert!(has_4wd >= 2, "Jeep IUnits should be mostly 4WD");

    // Chevrolet has a large-SUV V8 cluster (Suburban/Tahoe).
    let model_pos = cad.compare_names.iter().position(|n| n == "Model").unwrap();
    let chevy = cad.row("Chevrolet").unwrap();
    let big_suv = chevy.iunits.iter().any(|u| {
        u.labels[model_pos]
            .iter()
            .any(|m| m.contains("Suburban") || m.contains("Tahoe"))
    });
    assert!(big_suv, "Chevrolet should show the Suburban/Tahoe cluster");
}

#[test]
fn preference_function_reorders_iunits() {
    let table = cars();
    let result = table.filter(&Predicate::eq("BodyType", "SUV")).unwrap();
    let by_size = build_cad_view(
        &result,
        &CadRequest::new("Make")
            .with_pivot_values(vec!["Ford"])
            .with_iunits(3),
    )
    .unwrap();
    let by_price = build_cad_view(
        &result,
        &CadRequest::new("Make")
            .with_pivot_values(vec!["Ford"])
            .with_iunits(3)
            .with_preference(Preference::AttributeAsc("Price".into())),
    )
    .unwrap();
    // Price-ascending preference must produce monotone mean prices over
    // the selected IUnits.
    let price_col = table.schema().index_of("Price").unwrap();
    let mean_price = |unit: &dbexplorer::core::IUnit| {
        let sum: f64 = unit
            .members
            .iter()
            .map(|&pos| {
                table
                    .column(price_col)
                    .get_f64(result.row_ids()[pos] as usize)
                    .unwrap_or(0.0)
            })
            .sum();
        sum / unit.members.len().max(1) as f64
    };
    let prices: Vec<f64> = by_price.rows[0].iunits.iter().map(mean_price).collect();
    for w in prices.windows(2) {
        assert!(w[0] <= w[1] + 1e-9, "not price-ascending: {prices:?}");
    }
    // And it is genuinely a different ordering criterion than size.
    assert_eq!(by_size.rows[0].iunits.len(), by_price.rows[0].iunits.len());
}

#[test]
fn csv_round_trip_preserves_cad_structure() {
    let table = UsedCarsGenerator::new(7).generate(3_000);
    let csv = dbexplorer::table::csv::to_csv(&table);
    let parsed = dbexplorer::table::csv::parse_csv(&csv).unwrap();
    assert_eq!(parsed.num_rows(), table.num_rows());
    assert_eq!(parsed.num_columns(), table.num_columns());

    let request = CadRequest::new("Make").with_iunits(2).with_max_compare_attrs(4);
    let a = build_cad_view(&table.full_view(), &request).unwrap();
    let b = build_cad_view(&parsed.full_view(), &request).unwrap();
    assert_eq!(a.compare_names, b.compare_names);
    assert_eq!(a.rows.len(), b.rows.len());
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.pivot_label, rb.pivot_label);
        assert_eq!(ra.iunits.len(), rb.iunits.len());
    }
}

#[test]
fn facade_reexports_compile_and_link() {
    // Every facade module is reachable.
    let _ = dbexplorer::stats::special::chi2_sf(1.0, 1.0);
    let _ = dbexplorer::topk::ConflictGraph::new(3);
    let _ = dbexplorer::cluster::KMeansConfig::default();
    let _ = dbexplorer::study::StudyConfig::default();
    let _ = dbexplorer::facet::FacetState::default();
    let _ = dbexplorer::query::parse("SELECT * FROM t").unwrap();
}

// ---------------------------------------------------------------------------
// Budget-governed degradation (robustness layer).
// ---------------------------------------------------------------------------

#[test]
fn tiny_budget_yields_well_formed_degraded_view() {
    use dbexplorer::core::{DegradationKind, ExecBudget};
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;
    use std::time::Duration;

    // The manual clock makes the deadline deterministic: a zero time limit
    // is exhausted before the first pipeline stage runs, regardless of how
    // fast the machine is.
    let clock = Arc::new(AtomicU64::new(1_000));
    let mut session = Session::new();
    session.register_table("cars", UsedCarsGenerator::new(5).generate(4_000));
    session.set_budget(
        ExecBudget::unlimited()
            .with_time_limit(Duration::ZERO)
            .with_manual_clock(clock),
    );
    let out = session
        .execute("CREATE CADVIEW v AS SET pivot = Make FROM cars IUNITS 3")
        .expect("exhausted budget must degrade, not fail");
    let QueryOutput::Cad { degradation, .. } = out else {
        panic!("expected CAD output");
    };
    assert!(!degradation.is_empty(), "degradation not reported in output");

    let cad = session.cad_view("v").unwrap();
    assert!(cad.is_degraded());
    assert!(
        cad.degradation
            .iter()
            .any(|d| d.kind == DegradationKind::SampledClustering),
        "time exhaustion should force the sampled rung: {:?}",
        cad.degradation
    );
    // Well-formed despite the shortcuts: every pivot value present, every
    // row populated, and the view still answers similarity queries.
    assert!(!cad.rows.is_empty());
    for row in &cad.rows {
        assert!(!row.iunits.is_empty(), "row {} has no IUnits", row.pivot_label);
        assert!(row.iunits.len() <= 3);
    }
    session
        .execute("REORDER ROWS IN v ORDER BY SIMILARITY(Ford) DESC")
        .expect("degraded view still supports REORDER");
}

#[test]
fn row_budget_forces_minibatch_clustering() {
    use dbexplorer::core::{DegradationKind, ExecBudget};

    let mut session = Session::new();
    session.register_table("cars", UsedCarsGenerator::new(5).generate(4_000));
    session.set_budget(ExecBudget::unlimited().with_max_rows(50));
    session
        .execute("CREATE CADVIEW v AS SET pivot = Make FROM cars IUNITS 3")
        .expect("row budget must degrade, not fail");
    let cad = session.cad_view("v").unwrap();
    assert!(
        cad.degradation
            .iter()
            .any(|d| d.kind == DegradationKind::MiniBatchClustering),
        "partitions over the row budget should use mini-batch: {:?}",
        cad.degradation
    );
}

#[test]
fn kmeans_iteration_cap_is_recorded() {
    use dbexplorer::core::{DegradationKind, ExecBudget};

    let mut session = Session::new();
    session.register_table("cars", UsedCarsGenerator::new(5).generate(2_000));
    session.set_budget(ExecBudget::unlimited().with_kmeans_iters(1));
    session
        .execute("CREATE CADVIEW v AS SET pivot = Make FROM cars IUNITS 3")
        .expect("iteration cap must degrade, not fail");
    let cad = session.cad_view("v").unwrap();
    assert!(
        cad.degradation
            .iter()
            .any(|d| d.kind == DegradationKind::ClampedKMeansIters),
        "clamped iterations should be recorded: {:?}",
        cad.degradation
    );
}

#[test]
fn explain_cadview_surfaces_degradation() {
    use dbexplorer::core::ExecBudget;
    use std::time::Duration;

    let mut session = Session::new();
    session.register_table("cars", UsedCarsGenerator::new(5).generate(2_000));

    // Unlimited budget: EXPLAIN reports a clean build.
    let out = session
        .execute("EXPLAIN CREATE CADVIEW v AS SET pivot = Make FROM cars IUNITS 2")
        .unwrap();
    let QueryOutput::Text(text) = out else {
        panic!("expected text output");
    };
    assert!(text.contains("degradation: none"), "{text}");

    // Exhausted budget: EXPLAIN lists every shortcut taken.
    session.set_budget(ExecBudget::unlimited().with_time_limit(Duration::ZERO));
    let out = session
        .execute("EXPLAIN CREATE CADVIEW v AS SET pivot = Make FROM cars IUNITS 2")
        .unwrap();
    let QueryOutput::Text(text) = out else {
        panic!("expected text output");
    };
    assert!(text.contains("degradation:"), "{text}");
    assert!(text.contains("sampled"), "{text}");
}
