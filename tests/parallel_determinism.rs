//! Parallel CAD construction is an *optimization*, never a semantic
//! change: at a fixed seed, a build fanned out across any number of pool
//! workers must be byte-identical to the sequential build — rows, IUnit
//! membership, scores, feature statistics, and the degradation log.
//!
//! Also pinned here: the budget ladder still fires under parallelism, and
//! the thread-local fault-injection hooks keep their documented semantics
//! (they fire on the arming thread only — honored at `threads = 1`,
//! invisible to pool workers at `threads > 1`).

use dbexplorer::core::{
    build_cad_view, CadConfig, CadRequest, CadView, DegradationKind, ExecBudget,
};
use dbexplorer::data::{HotelsGenerator, MushroomGenerator, UsedCarsGenerator};
use dbexplorer::table::Table;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Duration;

/// Flattens everything observable about a view into one comparable string
/// (float bits included, so "close" never passes for "equal").
fn digest(cad: &CadView) -> String {
    let mut out = format!(
        "pivot={} compare={:?} k={} tau={}\n",
        cad.pivot_name, cad.compare_names, cad.k, cad.tau
    );
    for s in &cad.feature_scores {
        out.push_str(&format!(
            "score attr={} stat={} p={}\n",
            s.attr_index,
            s.statistic.to_bits(),
            s.p_value.to_bits()
        ));
    }
    for row in &cad.rows {
        out.push_str(&format!("row {} {}\n", row.pivot_code, row.pivot_label));
        for u in &row.iunits {
            out.push_str(&format!(
                "  size={} score={} labels={:?} members={:?}\n",
                u.size,
                u.score.to_bits(),
                u.labels,
                u.members
            ));
        }
    }
    for d in &cad.degradation {
        out.push_str(&format!("degraded {d}\n"));
    }
    out
}

fn request_with_threads(pivot: &str, threads: usize) -> CadRequest {
    CadRequest::new(pivot).with_iunits(3).with_config(CadConfig {
        threads,
        ..CadConfig::default()
    })
}

/// The three datasets and their pivot attributes.
fn datasets() -> Vec<(&'static str, Table, &'static str)> {
    vec![
        ("cars", UsedCarsGenerator::new(7).generate(6_000), "Make"),
        ("mushroom", MushroomGenerator::new(7).generate(4_000), "Odor"),
        ("hotels", HotelsGenerator::new(7).generate(4_000), "District"),
    ]
}

#[test]
fn parallel_build_is_byte_identical_across_datasets() {
    for (name, table, pivot) in datasets() {
        let view = table.full_view();
        let sequential = build_cad_view(&view, &request_with_threads(pivot, 1))
            .unwrap_or_else(|e| panic!("{name}: sequential build failed: {e}"));
        assert!(
            !sequential.is_degraded(),
            "{name}: unlimited budget must not degrade"
        );
        let reference = digest(&sequential);
        for threads in [2, 4, 8] {
            let parallel = build_cad_view(&view, &request_with_threads(pivot, threads))
                .unwrap_or_else(|e| panic!("{name}: {threads}-thread build failed: {e}"));
            assert_eq!(parallel.threads_used, threads);
            assert_eq!(
                digest(&parallel),
                reference,
                "{name}: {threads}-thread build diverged from sequential"
            );
        }
    }
}

#[test]
fn trace_structure_is_identical_across_thread_counts() {
    // The observability layer is part of the determinism contract:
    // same-named sibling spans merge, so the span tree — names, call
    // counts, rows scanned, cache hits/misses, degradation level —
    // must be byte-identical at 1, 2, and 8 threads (only wall times,
    // which the structural digest excludes, may differ).
    use dbexplorer::core::{build_cad_view_traced, StatsCache, Tracer};
    for (name, table, pivot) in datasets() {
        let view = table.full_view();
        let build = |threads: usize| {
            // A fresh cache per build keeps hit/miss deltas a function
            // of the build alone, not of prior builds.
            let cache = StatsCache::new();
            let tracer = Tracer::enabled();
            let cad = build_cad_view_traced(
                &view,
                &request_with_threads(pivot, threads),
                Some(&cache),
                &tracer,
            )
            .unwrap_or_else(|e| panic!("{name}: {threads}-thread traced build failed: {e}"));
            let trace = cad.trace.unwrap_or_else(|| panic!("{name}: traced build has no trace"));
            assert_eq!(trace.forced_closures, 0, "{name}: spans leaked at {threads} threads");
            trace.structural_digest()
        };
        let sequential = build(1);
        assert!(
            sequential.contains("cluster_partition"),
            "{name}: worker spans missing from the sequential trace:\n{sequential}"
        );
        for threads in [2, 8] {
            assert_eq!(
                build(threads),
                sequential,
                "{name}: {threads}-thread trace structure diverged from sequential"
            );
        }
    }
}

#[test]
fn budget_degradation_still_fires_under_parallelism() {
    let table = UsedCarsGenerator::new(11).generate(5_000);
    let view = table.full_view();
    // A zero deadline on a manual clock is exhausted before any stage
    // runs, deterministically, regardless of machine speed or pool size.
    let clock = Arc::new(AtomicU64::new(10_000));
    let request = request_with_threads("Make", 4).with_budget(
        ExecBudget::unlimited()
            .with_time_limit(Duration::ZERO)
            .with_manual_clock(clock),
    );
    let cad = build_cad_view(&view, &request).expect("exhausted budget degrades, not fails");
    assert_eq!(cad.threads_used, 4);
    for kind in [
        DegradationKind::SampledFeatureSelection,
        DegradationKind::SampledClustering,
        DegradationKind::GreedyTopK,
    ] {
        assert!(
            cad.degradation.iter().any(|d| d.kind == kind),
            "{kind:?} missing under parallelism: {:?}",
            cad.degradation
        );
    }
    // Row caps too: per-partition sizes, not scheduling order, drive them.
    let request = request_with_threads("Make", 4)
        .with_budget(ExecBudget::unlimited().with_max_rows(50));
    let cad = build_cad_view(&view, &request).expect("row budget degrades, not fails");
    assert!(
        cad.degradation
            .iter()
            .any(|d| d.kind == DegradationKind::MiniBatchClustering),
        "{:?}",
        cad.degradation
    );
}

#[test]
fn budget_degradation_identical_between_sequential_and_parallel() {
    // With a manual clock the deadline state is identical for every
    // worker, so even the *degraded* output must match byte-for-byte.
    let table = UsedCarsGenerator::new(13).generate(4_000);
    let view = table.full_view();
    let build = |threads: usize| {
        let clock = Arc::new(AtomicU64::new(42));
        let request = request_with_threads("Make", threads).with_budget(
            ExecBudget::unlimited()
                .with_time_limit(Duration::ZERO)
                .with_manual_clock(clock),
        );
        build_cad_view(&view, &request).expect("degraded build succeeds")
    };
    let sequential = digest(&build(1));
    for threads in [2, 8] {
        assert_eq!(
            digest(&build(threads)),
            sequential,
            "degraded {threads}-thread build diverged"
        );
    }
}

#[test]
fn fault_hooks_fire_sequentially_and_are_invisible_to_pool_workers() {
    let table = UsedCarsGenerator::new(17).generate(2_000);
    let view = table.full_view();

    // threads = 1: the armed fault lives on the build thread, every
    // clustering attempt sees it, and the ladder descends all the way to
    // the single-unit fallback for every partition.
    {
        let _kmeans = dbexplorer::cluster::fault::scoped("cluster::kmeans");
        let cad = build_cad_view(&view, &request_with_threads("Make", 1))
            .expect("fault degrades, not fails");
        assert!(
            cad.degradation
                .iter()
                .any(|d| d.kind == DegradationKind::MiniBatchClustering
                    && d.reason.contains("clustering failed")),
            "armed fault should force the ladder down at threads = 1: {:?}",
            cad.degradation
        );
    }

    // threads = 4: partitions cluster on pool workers whose fresh
    // thread-locals were never armed — the build is full-fidelity even
    // though the *caller's* thread still has the fault armed.
    {
        let _kmeans = dbexplorer::cluster::fault::scoped("cluster::kmeans");
        let cad = build_cad_view(&view, &request_with_threads("Make", 4))
            .expect("build succeeds");
        assert!(
            !cad.is_degraded(),
            "pool workers must not see the caller's armed fault: {:?}",
            cad.degradation
        );
    }

    // Sanity: with nothing armed, the sequential build is clean too.
    let cad = build_cad_view(&view, &request_with_threads("Make", 1)).expect("clean build");
    assert!(!cad.is_degraded());
}

/// Categorical-only compare attributes, forced: categorical dictionary
/// codes are stable across refinements (unlike numeric equi-depth bins,
/// which re-bin and deliberately invalidate cluster reuse), so untouched
/// pivot partitions can be served from the cluster-reuse cache.
fn categorical_request(threads: usize) -> CadRequest {
    request_with_threads("Make", threads)
        .with_compare(vec!["Model", "BodyType", "Engine", "Drivetrain"])
        .with_max_compare_attrs(4)
}

#[test]
fn incremental_rebuild_is_byte_identical_to_cold_rebuild() {
    use dbexplorer::core::{build_cad_view_cached, StatsCache};
    use dbexplorer::table::predicate::{CmpOp, Predicate};

    let table = UsedCarsGenerator::new(23).generate(4_000);
    let full = table.full_view();
    // The refinement drops one pivot value entirely; every other
    // partition keeps exactly its rows (ids and order), so its cluster
    // solution from the pre-refinement build is reusable verbatim.
    let refined = full
        .refine(&Predicate::cmp("Make", CmpOp::Ne, "BMW"))
        .expect("refine");
    assert!(refined.len() < full.len());

    for threads in [1, 2, 8] {
        let request = categorical_request(threads);
        // Reference: a cold, uncached build of the refined result set.
        let cold = build_cad_view(&refined, &request).expect("cold build");
        // Incremental: prime the cache on the pre-refinement view, then
        // rebuild after the refinement.
        let cache = StatsCache::new();
        let primed = build_cad_view_cached(&full, &request, Some(&cache)).expect("prime");
        assert_eq!(primed.partitions_reused, 0, "first build has nothing to reuse");
        let incremental =
            build_cad_view_cached(&refined, &request, Some(&cache)).expect("incremental");
        assert_eq!(
            digest(&incremental),
            digest(&cold),
            "{threads}-thread incremental rebuild diverged from a cold rebuild"
        );
        assert_eq!(
            incremental.partitions_reused,
            incremental.rows.len(),
            "every untouched partition must be served from the cluster cache"
        );
        assert!(cache.stats().hits > 0, "cluster reuse must register cache hits");

        // A second identical build reuses every partition too.
        let again = build_cad_view_cached(&refined, &request, Some(&cache)).expect("repeat");
        assert_eq!(digest(&again), digest(&cold));
        assert_eq!(again.partitions_reused, again.rows.len());
    }
}

#[test]
fn incremental_rebuild_matches_cold_under_budget_degradation() {
    use dbexplorer::core::{build_cad_view_cached, StatsCache};
    use dbexplorer::table::predicate::{CmpOp, Predicate};

    let table = UsedCarsGenerator::new(23).generate(4_000);
    let full = table.full_view();
    let refined = full
        .refine(&Predicate::cmp("Make", CmpOp::Ne, "BMW"))
        .expect("refine");
    // Degraded rungs are shaped by transient budget state, so the builder
    // must bypass the cluster cache entirely: the incremental rebuild has
    // to degrade exactly like the cold one, with zero reuse.
    let degraded_request = |threads: usize| {
        let clock = Arc::new(AtomicU64::new(77));
        categorical_request(threads).with_budget(
            ExecBudget::unlimited()
                .with_time_limit(Duration::ZERO)
                .with_manual_clock(clock),
        )
    };
    for threads in [1, 2, 8] {
        let cold = build_cad_view(&refined, &degraded_request(threads)).expect("cold degraded");
        assert!(cold.is_degraded());
        let cache = StatsCache::new();
        // Prime at full fidelity so the cache *would* have solutions to
        // offer if the builder (incorrectly) consulted it while degraded.
        build_cad_view_cached(&full, &categorical_request(threads), Some(&cache))
            .expect("prime");
        let incremental =
            build_cad_view_cached(&refined, &degraded_request(threads), Some(&cache))
                .expect("incremental degraded");
        assert_eq!(
            digest(&incremental),
            digest(&cold),
            "{threads}-thread degraded incremental rebuild diverged from cold"
        );
        assert_eq!(incremental.partitions_reused, 0, "degraded rungs must not reuse");
    }
}

#[test]
fn packed_kernel_matches_onehot_oracle_end_to_end() {
    // The packed-code kernels are an optimization with a bit-identity
    // contract: a build on packed `u8`/`u16` code rows must equal the
    // sparse one-hot reference build byte for byte — at full fidelity and
    // on the mini-batch degradation rung.
    let with_kernel = |pivot: &str, packed: bool| {
        CadRequest::new(pivot).with_iunits(3).with_config(CadConfig {
            packed_kernel: packed,
            ..CadConfig::default()
        })
    };
    for (name, table, pivot) in datasets() {
        let view = table.full_view();
        let packed = build_cad_view(&view, &with_kernel(pivot, true))
            .unwrap_or_else(|e| panic!("{name}: packed build failed: {e}"));
        let onehot = build_cad_view(&view, &with_kernel(pivot, false))
            .unwrap_or_else(|e| panic!("{name}: one-hot build failed: {e}"));
        assert_eq!(
            digest(&packed),
            digest(&onehot),
            "{name}: packed kernel diverged from the one-hot oracle"
        );
    }
    // Mini-batch rung (row budget forces it) — packed and reference
    // mini-batch must agree too.
    let table = UsedCarsGenerator::new(29).generate(5_000);
    let view = table.full_view();
    let budgeted = |packed: bool| {
        let request = with_kernel("Make", packed)
            .with_budget(ExecBudget::unlimited().with_max_rows(50));
        build_cad_view(&view, &request).expect("row budget degrades, not fails")
    };
    let packed = budgeted(true);
    assert!(
        packed
            .degradation
            .iter()
            .any(|d| d.kind == DegradationKind::MiniBatchClustering),
        "{:?}",
        packed.degradation
    );
    assert_eq!(digest(&packed), digest(&budgeted(false)));
}

#[test]
fn warm_start_mode_reseeds_and_stays_deterministic() {
    use dbexplorer::core::{build_cad_view_cached, StatsCache};
    use dbexplorer::table::predicate::{CmpOp, Predicate};

    // Opt-in warm starting seeds k-means from the previous build's
    // centroids for the same pivot value, even after the partition's
    // membership changed. It is allowed to differ from a cold build —
    // but it must be deterministic: the same build history replayed
    // gives the same bytes, at any thread count.
    let table = UsedCarsGenerator::new(31).generate(4_000);
    let full = table.full_view();
    let refined = full
        .refine(&Predicate::cmp("Make", CmpOp::Ne, "BMW"))
        .expect("refine");
    let warm_request = |threads: usize| {
        let mut request = categorical_request(threads);
        request.config.warm_start = true;
        request
    };
    let run = |threads: usize| {
        let cache = StatsCache::new();
        let first =
            build_cad_view_cached(&full, &warm_request(threads), Some(&cache)).expect("first");
        let second = build_cad_view_cached(&refined, &warm_request(threads), Some(&cache))
            .expect("second");
        (digest(&first), digest(&second), second.warm_starts)
    };
    let (first_a, second_a, warm_a) = run(1);
    assert!(warm_a > 0, "second build must warm-start from stored centroids");
    let (first_b, second_b, warm_b) = run(1);
    assert_eq!((&first_a, &second_a, warm_a), (&first_b, &second_b, warm_b));
    for threads in [2, 8] {
        let (first_t, second_t, warm_t) = run(threads);
        assert_eq!(
            (&first_t, &second_t, warm_t),
            (&first_a, &second_a, warm_a),
            "{threads}-thread warm-start history diverged"
        );
    }
}

// ---------------------------------------------------------------------
// Property-based A/B digests for the packed clustering kernels: the u16
// width-promoted path and the chunked-merge parallel path. The CAD-level
// tests above pin end-to-end determinism on curated datasets; these pin
// the same contracts on *arbitrary* inputs, including row counts that
// land chunk boundaries unevenly.
// ---------------------------------------------------------------------

use dbexplorer::cluster::{kmeans, kmeans_packed, KMeansConfig, KMeansResult, OneHotSpace, PackedMatrix};
use dbexplorer::stats::discretize::{AttributeCodec, CodedColumn};
use proptest::prelude::*;

/// Flattens a [`KMeansResult`] into one comparable string, float bits
/// included — the kernel-level analogue of [`digest`].
fn kmeans_digest(r: &KMeansResult) -> String {
    let mut out = format!(
        "assign={:?} sizes={:?} iters={} inertia={}\n",
        r.assignments,
        r.sizes,
        r.iterations,
        r.inertia.to_bits()
    );
    for (c, centroid) in r.centroids.iter().enumerate() {
        let bits: Vec<u64> = centroid.iter().map(|v| v.to_bits()).collect();
        out.push_str(&format!("centroid {c} {bits:?}\n"));
    }
    for (h, count) in &r.histograms {
        out.push_str(&format!("hist {h:?} {count}\n"));
    }
    out
}

/// Coded columns over the given cardinalities filled with deterministic
/// xorshift draws (NULL with probability ~1/8). A seed-driven fill keeps
/// proptest shrinking cheap even at four-digit row counts.
fn seeded_columns(cards: &[usize], n: usize, seed: u64) -> Vec<CodedColumn> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut columns: Vec<CodedColumn> = cards
        .iter()
        .enumerate()
        .map(|(a, &card)| CodedColumn {
            attr_index: a,
            codec: AttributeCodec::Categorical {
                labels: (0..card).map(|i| format!("v{i}")).collect(),
            },
            codes: Vec::with_capacity(n),
        })
        .collect();
    for _ in 0..n {
        for (a, &card) in cards.iter().enumerate() {
            let r = next();
            columns[a].codes.push(if r % 8 == 0 {
                dbexplorer::table::dict::NULL_CODE
            } else {
                (r % card as u64) as u32
            });
        }
    }
    columns
}

fn packed_config(k: usize, seed: u64, threads: usize) -> KMeansConfig {
    KMeansConfig {
        k,
        max_iters: 12,
        seed,
        plus_plus: true,
        threads,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A/B digest for the width-promoted packed path: an attribute
    /// cardinality above 255 forces `u16` code storage, and the promoted
    /// kernel must still equal the one-hot reference bit for bit — and
    /// stay byte-identical when the assignment pass is chunked across
    /// worker threads.
    #[test]
    fn u16_promoted_kernel_matches_onehot_reference_at_any_thread_count(
        wide_card in 256usize..340,
        narrow_card in 2usize..6,
        n in 40usize..160,
        k in 2usize..6,
        seed in 0u64..10_000,
    ) {
        let columns = seeded_columns(&[wide_card, narrow_card], n, seed | 1);
        let refs: Vec<&CodedColumn> = columns.iter().collect();
        let positions: Vec<usize> = (0..n).collect();
        let matrix = PackedMatrix::from_columns(&refs, &positions).expect("packable");
        prop_assert!(!matrix.is_u8(), "cardinality {wide_card} must promote to u16");
        let space = OneHotSpace::from_columns(&refs);
        let points = space.encode_positions(&refs, &positions);
        let reference = kmeans(&points, space.dim(), &packed_config(k, seed, 1)).unwrap();
        let a = kmeans_digest(&reference);
        for threads in [1usize, 2, 8] {
            let packed = kmeans_packed(&matrix, &packed_config(k, seed, threads)).unwrap();
            prop_assert_eq!(
                &kmeans_digest(&packed),
                &a,
                "u16 packed kernel at {} threads diverged from the one-hot reference",
                threads
            );
        }
    }

    /// A/B digest for the chunked merge: row counts straddling multiples
    /// of the 256-row minimum chunk land the final chunk short (uneven
    /// boundaries), and the per-chunk integer partials must still merge
    /// to the sequential bytes at every thread count.
    #[test]
    fn chunked_merge_is_byte_identical_across_uneven_boundaries(
        n in 512usize..1300,
        k in 2usize..7,
        seed in 0u64..10_000,
    ) {
        let columns = seeded_columns(&[7, 4, 3], n, seed.wrapping_add(17) | 1);
        let refs: Vec<&CodedColumn> = columns.iter().collect();
        let positions: Vec<usize> = (0..n).collect();
        let matrix = PackedMatrix::from_columns(&refs, &positions).expect("packable");
        let a = kmeans_digest(&kmeans_packed(&matrix, &packed_config(k, seed, 1)).unwrap());
        for threads in [2usize, 8] {
            let b = kmeans_digest(&kmeans_packed(&matrix, &packed_config(k, seed, threads)).unwrap());
            prop_assert_eq!(
                &b, &a,
                "{} rows at {} threads: chunked merge diverged from sequential",
                n, threads
            );
        }
    }
}

#[test]
fn few_pivot_values_route_spare_threads_into_partition_chunking() {
    // End-to-end coverage of the intra-partition parallel path: with only
    // two pivot values and eight requested threads, the builder hands the
    // spare threads to the clustering kernel, whose partitions (≥ 1024
    // rows each) split into multiple chunks — and the build must still be
    // byte-identical to sequential.
    use dbexplorer::table::{DataType, Field, TableBuilder, Value};
    let mut b = TableBuilder::new(vec![
        Field::new("Pivot", DataType::Categorical),
        Field::new("Cat", DataType::Categorical),
        Field::new("Cat2", DataType::Categorical),
        Field::new("Num", DataType::Int),
    ])
    .expect("schema");
    for i in 0..2600usize {
        b.push_row(vec![
            Value::Str(format!("p{}", i % 2)),
            Value::Str(format!("c{}", (i / 3) % 5)),
            Value::Str(format!("d{}", (i * 7) % 4)),
            Value::Int(((i * 37) % 100) as i64 - 50),
        ])
        .expect("row");
    }
    let table = b.finish();
    let view = table.full_view();
    let sequential = build_cad_view(&view, &request_with_threads("Pivot", 1)).expect("sequential");
    let reference = digest(&sequential);
    for threads in [2, 8] {
        let parallel =
            build_cad_view(&view, &request_with_threads("Pivot", threads)).expect("parallel");
        assert_eq!(
            digest(&parallel),
            reference,
            "{threads}-thread chunked build diverged from sequential"
        );
    }
}

#[test]
fn caller_thread_stages_still_see_faults_under_parallelism() {
    // The pivot codec is built on the caller's thread even at threads > 1,
    // so an armed `codec::build` fails the build the same way it does
    // sequentially (a typed error, not a panic).
    let table = UsedCarsGenerator::new(19).generate(500);
    let view = table.full_view();
    let _codec = dbexplorer::stats::fault::scoped("codec::build");
    let err = build_cad_view(&view, &request_with_threads("Make", 4));
    assert!(err.is_err(), "pivot codec fault must surface at any thread count");
}
