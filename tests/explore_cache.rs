//! The sharded stats cache under realistically skewed key traffic,
//! driven through its public API with keys drawn from the exploration
//! benchmark's Zipf sampler.
//!
//! Every cached payload is *self-describing* — it encodes the key it was
//! built for — so a single equality assertion per lookup proves the
//! cache can never serve a payload built for a different fingerprint.

use dbexplorer::explore::Zipf;
use dbexplorer::stats::cache::{CodecKey, ContingencyKey, StatsCache, MAX_ENTRIES};
use dbexplorer::stats::chi2::ContingencyTable;
use dbexplorer::stats::discretize::AttributeCodec;
use dbexplorer::stats::histogram::BinningStrategy;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A codec whose only label names the fingerprint it was built for.
fn codec_for(fp: u64) -> AttributeCodec {
    AttributeCodec::Categorical {
        labels: vec![format!("fp{fp}")],
    }
}

fn codec_key(fp: u64) -> CodecKey {
    CodecKey {
        view_fp: fp,
        attr: 0,
        bins: 8,
        strategy: BinningStrategy::EquiDepth,
    }
}

/// A contingency table whose dimensions encode the key it was built for.
fn table_for(fp: u64) -> ContingencyTable {
    ContingencyTable::new((fp % 5) as usize + 1, (fp % 3) as usize + 1)
}

/// Zipf-skewed codec traffic over a key space much larger than the
/// cache: the hit rate must reflect the skew (the hot head stays
/// resident), evictions must flow monotonically, and every returned
/// payload must be the one built for the requested fingerprint.
#[test]
fn zipf_codec_traffic_skewed_hit_rate_and_no_stale_payloads() {
    const KEY_SPACE: usize = 5_000; // ≫ MAX_ENTRIES = 1024
    const LOOKUPS: usize = 30_000;

    let cache = StatsCache::new();
    let zipf = Zipf::new(KEY_SPACE, 1.0);
    let mut rng = StdRng::seed_from_u64(0xCAC4E);

    let mut last = cache.stats();
    for i in 0..LOOKUPS {
        let fp = zipf.sample(&mut rng) as u64;
        let codec = cache
            .codec_with(codec_key(fp), || Ok(codec_for(fp)))
            .expect("build closure is infallible");
        assert_eq!(
            codec.label(0),
            format!("fp{fp}"),
            "cache served a payload built for a different fingerprint"
        );
        if i % 1_000 == 0 {
            let now = cache.stats();
            assert!(now.hits >= last.hits, "hit counter went backwards");
            assert!(now.misses >= last.misses, "miss counter went backwards");
            assert!(now.evictions >= last.evictions, "eviction counter went backwards");
            assert!(now.codec_entries <= MAX_ENTRIES, "cache exceeded its entry cap");
            last = now;
        }
    }

    let stats = cache.stats();
    assert_eq!(
        stats.hits + stats.misses,
        LOOKUPS as u64,
        "every lookup is exactly one hit or one miss"
    );
    // 5000 keys cannot fit in 1024 entries: the tail must churn.
    assert!(stats.evictions > 0, "no evictions despite key space ≫ capacity");
    assert!(stats.codec_entries <= MAX_ENTRIES);
    // Every miss inserts exactly one entry; entries = inserts − evictions.
    assert_eq!(
        stats.codec_entries as u64,
        stats.misses - stats.evictions,
        "entry accounting out of balance"
    );
    // Zipf(s=1) head mass: the resident hot set should serve well over
    // half the traffic even while the tail churns.
    let hit_rate = stats.hits as f64 / LOOKUPS as f64;
    assert!(
        hit_rate > 0.5,
        "hit rate {hit_rate:.3} implausibly low for skewed traffic"
    );
}

/// Concurrent mixed codec + contingency traffic from independently
/// seeded Zipf streams: counters stay exactly consistent, the cap
/// holds, and no thread ever observes a stale payload.
#[test]
fn concurrent_zipf_traffic_stays_consistent() {
    const THREADS: u64 = 4;
    const PER_THREAD: usize = 8_000;

    let cache = StatsCache::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = &cache;
            scope.spawn(move || {
                let zipf = Zipf::new(3_000, 0.9);
                let mut rng = StdRng::seed_from_u64(0xBEEF_0000 + t * 0x9E37);
                for _ in 0..PER_THREAD {
                    let fp = zipf.sample(&mut rng) as u64;
                    if fp.is_multiple_of(2) {
                        let codec = cache
                            .codec_with(codec_key(fp), || Ok(codec_for(fp)))
                            .expect("build closure is infallible");
                        assert_eq!(codec.label(0), format!("fp{fp}"), "stale codec payload");
                    } else {
                        let key = ContingencyKey {
                            view_fp: fp,
                            class_ctx: fp.rotate_left(17),
                            attr: 1,
                            bins: 8,
                            strategy: BinningStrategy::EquiWidth,
                        };
                        let table = cache
                            .contingency_with(key, || Some(table_for(fp)))
                            .expect("build closure always returns a table");
                        assert_eq!(
                            (table.rows(), table.cols()),
                            ((fp % 5) as usize + 1, (fp % 3) as usize + 1),
                            "stale contingency payload"
                        );
                    }
                }
            });
        }
    });

    let stats = cache.stats();
    // codec_with/contingency_with record exactly one hit or miss per call,
    // even when two threads race to build the same key.
    assert_eq!(
        stats.hits + stats.misses,
        THREADS * PER_THREAD as u64,
        "hit/miss accounting lost lookups under concurrency"
    );
    assert!(stats.codec_entries <= MAX_ENTRIES);
    assert!(stats.contingency_entries <= MAX_ENTRIES);
    assert!(
        stats.hits > stats.misses,
        "skewed traffic should be hit-dominated (got {} hits / {} misses)",
        stats.hits,
        stats.misses
    );
}
