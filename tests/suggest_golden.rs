//! Golden snapshots for the SUGGEST surface.
//!
//! Three locks:
//!
//! * the REPL's `.suggest` output (subprocess, whole stdout masked) —
//!   `tests/snapshots/suggest_repl.txt`;
//! * the wire-protocol SUGGEST frames (single client against a live
//!   server, compared byte-for-byte against the single-session oracle
//!   after masking) — `tests/snapshots/suggest_wire.txt`;
//! * byte-identity between the two surfaces: a wire frame's `text` is
//!   exactly `QueryOutput::render` of the same statement executed
//!   in-process, so `.suggest` in the REPL and SUGGEST over the wire can
//!   never drift apart.
//!
//! Regenerate after an intentional output change with:
//!
//! ```text
//! UPDATE_SNAPSHOTS=1 cargo test --test suggest_golden
//! ```

use dbexplorer::data::UsedCarsGenerator;
use dbexplorer::obs::mask_timings;
use dbexplorer::query::Session;
use dbexplorer::serve::{oracle_transcript, Client, ServeConfig, Server};
use std::path::PathBuf;

const ROWS: usize = 3_000;
const SEED: u64 = 7;

/// The wire script: build a view, then exercise every SUGGEST shape —
/// next-step, value completion, attribute completion, EXPLAIN ANALYZE,
/// and the typed error for an unknown view.
const SCRIPT: &[&str] = &[
    "CREATE CADVIEW v AS SET pivot = Make FROM cars WHERE BodyType = SUV LIMIT COLUMNS 3 IUNITS 2",
    "SUGGEST NEXT FOR v",
    "SUGGEST COMPLETE SELECT * FROM cars WHERE Make =",
    "SUGGEST COMPLETE SELECT * FROM cars WHERE",
    "EXPLAIN ANALYZE SUGGEST NEXT FOR v",
    "SUGGEST NEXT FOR nosuch",
];

fn snapshot_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(file)
}

/// Compares `actual` against the named snapshot; rewrites the snapshot
/// instead when `UPDATE_SNAPSHOTS` is set.
fn assert_snapshot(file: &str, actual: &str) {
    let path = snapshot_path(file);
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::write(&path, actual)
            .unwrap_or_else(|e| panic!("cannot write snapshot {}: {e}", path.display()));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read snapshot {} ({e}); generate it with \
             UPDATE_SNAPSHOTS=1 cargo test --test suggest_golden",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "masked output diverged from {}; if the change is intentional, \
         regenerate with UPDATE_SNAPSHOTS=1 cargo test --test suggest_golden",
        path.display()
    );
}

#[test]
fn suggest_repl_output_matches_snapshot() {
    // The REPL golden runs in a subprocess: one fixed script, whole
    // stdout masked. Covers `.suggest <view>` (next-step sugar),
    // `.suggest <partial>` (completion sugar), raw SUGGEST SQL, and the
    // EXPLAIN ANALYZE report.
    use std::io::Write;
    use std::process::{Command, Stdio};
    let script = format!(
        ".load cars {ROWS} {SEED}\n\
         CREATE CADVIEW v AS SET pivot = Make FROM cars WHERE BodyType = SUV \
         LIMIT COLUMNS 3 IUNITS 2;\n\
         .suggest v\n\
         .suggest SELECT * FROM cars WHERE Make = \n\
         SUGGEST COMPLETE SELECT * FROM cars WHERE;\n\
         EXPLAIN ANALYZE SUGGEST NEXT FOR v;\n\
         .quit\n"
    );
    let mut child = Command::new(env!("CARGO_BIN_EXE_dbex"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("dbex binary spawns");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(script.as_bytes())
        .expect("script written");
    let output = child.wait_with_output().expect("dbex exits");
    assert!(output.status.success(), "dbex exited with failure");
    let stdout = String::from_utf8(output.stdout).expect("utf-8 output");
    let masked = mask_timings(&stdout);
    assert!(masked.contains("next steps for v"), "{masked}");
    assert!(masked.contains("complete value for Make over cars"), "{masked}");
    assert!(masked.contains("complete attribute over cars"), "{masked}");
    assert!(masked.contains("SUGGEST NEXT FOR v"), "{masked}");
    assert!(masked.contains("rank time:"), "{masked}");
    assert_snapshot("suggest_repl.txt", &masked);
}

#[test]
fn suggest_wire_frames_match_oracle_and_snapshot() {
    let config = ServeConfig::default();
    let oracle = oracle_transcript(
        vec![("cars".to_owned(), UsedCarsGenerator::new(SEED).generate(ROWS))],
        &config,
        SCRIPT,
    );
    let masked_oracle = mask_timings(&format!("{}\n", oracle.join("\n")));

    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    server.preload("cars", UsedCarsGenerator::new(SEED).generate(ROWS));
    let handle = server.spawn().expect("spawn server");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let transcript: Vec<String> = SCRIPT
        .iter()
        .map(|req| client.request_line(req).expect("request"))
        .collect();
    handle.shutdown();
    let masked_wire = mask_timings(&format!("{}\n", transcript.join("\n")));

    // Wire and oracle must agree byte-for-byte once wall times are
    // masked — the same determinism contract serve_smoke enforces for
    // the CAD surface.
    assert_eq!(
        masked_wire, masked_oracle,
        "wire SUGGEST frames diverge from the single-session oracle"
    );
    assert!(masked_wire.contains("\"kind\":\"suggestions\""), "{masked_wire}");
    assert!(
        masked_wire.contains("unknown CAD View nosuch"),
        "unknown view must be a typed error frame: {masked_wire}"
    );
    assert_snapshot("suggest_wire.txt", &masked_wire);
}

#[test]
fn wire_suggest_text_is_byte_identical_to_repl_render() {
    // The wire layer must carry exactly what an in-process session
    // renders — REPL and wire users see the same bytes by construction.
    let mut session = Session::new();
    session.register_table("cars", UsedCarsGenerator::new(SEED).generate(ROWS));
    let rendered: Vec<String> = SCRIPT[..4]
        .iter()
        .map(|sql| session.execute(sql).expect("execute").render())
        .collect();

    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    server.preload("cars", UsedCarsGenerator::new(SEED).generate(ROWS));
    let handle = server.spawn().expect("spawn server");
    let mut client = Client::connect(handle.addr()).expect("connect");
    for (sql, expected) in SCRIPT[..4].iter().zip(&rendered) {
        let resp = client.request(sql).expect("request");
        assert!(resp.ok, "{sql} failed over the wire: {}", resp.text);
        assert_eq!(
            &resp.text, expected,
            "wire text for {sql:?} diverged from QueryOutput::render"
        );
    }
    handle.shutdown();
}
