//! Property-based tests over the core data structures and invariants.

use dbexplorer::core::simil::{attribute_value_distance, iunit_similarity};
use dbexplorer::core::{build_cad_view, CadRequest, IUnit};
use dbexplorer::stats::histogram::{BinningStrategy, Histogram};
use dbexplorer::stats::simil::cosine_similarity;
use dbexplorer::table::{DataType, Field, Predicate, TableBuilder, Value};
use dbexplorer::topk::{div_astar, greedy, ConflictGraph};
use proptest::prelude::*;

/// Random-ish but valid SQL-fragment strings for parser robustness.
fn arb_sql() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~]{0,80}").expect("valid regex")
}

/// Builds a small random categorical/numeric table.
fn arb_table() -> impl Strategy<Value = dbexplorer::table::Table> {
    let rows = prop::collection::vec((0u8..4, 0u8..3, -50i64..50), 8..80);
    rows.prop_map(|rows| {
        let mut b = TableBuilder::new(vec![
            Field::new("Pivot", DataType::Categorical),
            Field::new("Cat", DataType::Categorical),
            Field::new("Num", DataType::Int),
        ])
        .unwrap();
        for (p, c, n) in rows {
            b.push_row(vec![
                Value::Str(format!("p{p}")),
                Value::Str(format!("c{c}")),
                Value::Int(n),
            ])
            .unwrap();
        }
        b.finish()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cad_view_respects_bounds(table in arb_table(), k in 1usize..5, m in 1usize..4) {
        let request = CadRequest::new("Pivot").with_iunits(k).with_max_compare_attrs(m);
        let cad = build_cad_view(&table.full_view(), &request).unwrap();
        prop_assert!(cad.compare_attrs.len() <= m);
        prop_assert!(!cad.compare_attrs.is_empty());
        for row in &cad.rows {
            prop_assert!(row.iunits.len() <= k);
        }
        // Distinct pivot values in the view = distinct values in the data.
        let expected = table.column(0).cardinality();
        prop_assert_eq!(cad.rows.len(), expected);
    }

    #[test]
    fn iunit_members_partition_each_pivot_row(table in arb_table()) {
        // With l = k and a tau of 0 candidates never get dropped by
        // diversification unless similar; members of the selected IUnits
        // must be disjoint and within the partition.
        let request = CadRequest::new("Pivot").with_iunits(3);
        let cad = build_cad_view(&table.full_view(), &request).unwrap();
        let view = table.full_view();
        for row in &cad.rows {
            let mut seen = std::collections::HashSet::new();
            for unit in &row.iunits {
                prop_assert_eq!(unit.members.len(), unit.size);
                for &pos in &unit.members {
                    prop_assert!(pos < view.len());
                    // Member rows carry the row's pivot value.
                    let value = view.value(pos, 0);
                    prop_assert_eq!(value.to_string(), row.pivot_label.clone());
                    prop_assert!(seen.insert(pos), "IUnits overlap within a row");
                }
            }
        }
    }

    #[test]
    fn algorithm1_similarity_bounded_and_symmetric(table in arb_table()) {
        let cad = build_cad_view(&table.full_view(), &CadRequest::new("Pivot")).unwrap();
        let units: Vec<&IUnit> = cad.rows.iter().flat_map(|r| r.iunits.iter()).collect();
        let max = cad.compare_attrs.len() as f64;
        for a in &units {
            for b in &units {
                let s = iunit_similarity(a, b);
                prop_assert!((0.0..=max + 1e-9).contains(&s), "sim {s} out of [0,{max}]");
                prop_assert!((s - iunit_similarity(b, a)).abs() < 1e-12);
            }
            prop_assert!(iunit_similarity(a, a) > 0.0);
        }
    }

    #[test]
    fn algorithm2_distance_symmetric_zero_on_self(table in arb_table(), tau_f in 0.1f64..0.9) {
        let cad = build_cad_view(&table.full_view(), &CadRequest::new("Pivot")).unwrap();
        let tau = tau_f * cad.compare_attrs.len() as f64;
        for a in &cad.rows {
            prop_assert_eq!(attribute_value_distance(&a.iunits, &a.iunits, tau), 0.0);
            for b in &cad.rows {
                let d1 = attribute_value_distance(&a.iunits, &b.iunits, tau);
                let d2 = attribute_value_distance(&b.iunits, &a.iunits, tau);
                prop_assert_eq!(d1, d2);
                prop_assert!(d1 >= 0.0);
            }
        }
    }

    #[test]
    fn predicate_filter_matches_row_scan(table in arb_table(), lo in -50i64..0, hi in 0i64..50) {
        let p = Predicate::or(vec![
            Predicate::and(vec![
                Predicate::eq("Cat", "c1"),
                Predicate::between("Num", lo, hi),
            ]),
            Predicate::not(Predicate::eq("Pivot", "p0")),
        ]);
        let filtered = table.filter(&p).unwrap();
        for row in 0..table.num_rows() {
            let expected = p.eval(&table, row).unwrap();
            let present = filtered.row_ids().contains(&(row as u32));
            prop_assert_eq!(expected, present, "row {}", row);
        }
    }

    #[test]
    fn histogram_edges_monotone_and_total(values in prop::collection::vec(-1e6f64..1e6, 1..200), bins in 1usize..12) {
        for strategy in [BinningStrategy::EquiWidth, BinningStrategy::EquiDepth, BinningStrategy::VOptimal, BinningStrategy::MaxDiff] {
            let h = Histogram::build(&values, bins, strategy).unwrap();
            let edges = h.edges();
            for w in edges.windows(2) {
                prop_assert!(w[0] < w[1], "{strategy:?}: non-monotone {edges:?}");
            }
            prop_assert!(h.num_bins() <= bins);
            for &v in &values {
                let b = h.bin_of(v);
                prop_assert!(b < h.num_bins());
            }
            // Out-of-range values clamp.
            prop_assert_eq!(h.bin_of(f64::MIN), 0);
            prop_assert_eq!(h.bin_of(f64::MAX), h.num_bins() - 1);
        }
    }

    #[test]
    fn cosine_similarity_bounds(a in prop::collection::vec(0.0f64..100.0, 0..20),
                                b in prop::collection::vec(0.0f64..100.0, 0..20)) {
        let s = cosine_similarity(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&s));
        prop_assert!((s - cosine_similarity(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn div_astar_valid_and_at_least_greedy(
        scores in prop::collection::vec(0.0f64..100.0, 1..14),
        edges in prop::collection::vec((0usize..14, 0usize..14), 0..40),
        k in 1usize..6,
    ) {
        let n = scores.len();
        let mut graph = ConflictGraph::new(n);
        for (a, b) in edges {
            if a < n && b < n && a != b {
                graph.add_conflict(a, b);
            }
        }
        let exact = div_astar(&scores, &graph, k);
        let approx = greedy(&scores, &graph, k);
        prop_assert!(exact.items.len() <= k);
        for (i, &a) in exact.items.iter().enumerate() {
            for &b in &exact.items[i + 1..] {
                prop_assert!(!graph.conflicts(a, b), "conflicting items selected");
            }
        }
        prop_assert!(exact.total_score + 1e-9 >= approx.total_score);
        let sum: f64 = exact.items.iter().map(|&i| scores[i]).sum();
        prop_assert!((sum - exact.total_score).abs() < 1e-9);
    }

    #[test]
    fn parser_never_panics(input in arb_sql()) {
        // Any printable-ASCII input must produce Ok or Err, never a panic.
        let _ = dbexplorer::query::parse(&input);
    }

    #[test]
    fn facet_bins_partition_the_table(table in arb_table()) {
        // Selecting each facet value of an attribute, one at a time, must
        // partition the table: every row in exactly one value's results.
        use dbexplorer::facet::{FacetState, FacetedEngine};
        let engine = FacetedEngine::new(&table, 4);
        for (attr, codec) in engine.attributes() {
            let mut seen = vec![0usize; table.num_rows()];
            for code in 0..codec.cardinality() as u32 {
                let label = codec.label(code).to_owned();
                let mut state = FacetState::default();
                state.selections.insert(*attr, vec![label]);
                let view = engine.results_for(&state).unwrap();
                for &r in view.row_ids() {
                    seen[r as usize] += 1;
                }
            }
            for (r, &count) in seen.iter().enumerate() {
                // NULL rows match no facet value; all others exactly one.
                let is_null = table.column(*attr).is_null(r);
                prop_assert_eq!(count, usize::from(!is_null), "row {} attr {}", r, attr);
            }
        }
    }

    #[test]
    fn group_by_counts_partition_the_view(table in arb_table()) {
        use dbexplorer::table::{group_by, Aggregate, Value};
        let out = group_by(
            &table.full_view(),
            &["Pivot".into(), "Cat".into()],
            &[Aggregate::Count, Aggregate::Avg("Num".into())],
        ).unwrap();
        // Counts over all groups sum to the table size.
        let mut total = 0i64;
        for r in 0..out.num_rows() {
            let Value::Int(n) = out.value(r, 2) else { panic!("count col") };
            prop_assert!(n > 0, "empty group emitted");
            total += n;
        }
        prop_assert_eq!(total as usize, table.num_rows());
        // Every group key actually occurs in the data.
        for r in 0..out.num_rows() {
            let p = out.value(r, 0).to_string();
            let c = out.value(r, 1).to_string();
            let matched = table
                .filter(&Predicate::and(vec![
                    Predicate::eq("Pivot", p.as_str()),
                    Predicate::eq("Cat", c.as_str()),
                ]))
                .unwrap();
            prop_assert!(!matched.is_empty());
        }
    }

    #[test]
    fn sort_view_is_an_ordered_permutation(table in arb_table()) {
        use dbexplorer::table::{sort_view, SortKey};
        let sorted = sort_view(
            &table.full_view(),
            &[SortKey::asc("Num"), SortKey::desc("Cat")],
        ).unwrap();
        prop_assert_eq!(sorted.len(), table.num_rows());
        // Permutation: same multiset of row ids.
        let mut ids: Vec<u32> = sorted.row_ids().to_vec();
        ids.sort_unstable();
        let expected: Vec<u32> = (0..table.num_rows() as u32).collect();
        prop_assert_eq!(ids, expected);
        // Ordered by the primary key.
        for w in sorted.row_ids().windows(2) {
            let a = table.value(w[0] as usize, 2);
            let b = table.value(w[1] as usize, 2);
            prop_assert!(a.total_cmp(&b) != std::cmp::Ordering::Greater);
        }
    }

    #[test]
    fn predicate_simplify_preserves_eval(table in arb_table(), lo in -50i64..0, hi in 0i64..50) {
        let gnarly = Predicate::not(Predicate::and(vec![
            Predicate::or(vec![
                Predicate::eq("Cat", "c0"),
                Predicate::Const(false),
                Predicate::or(vec![Predicate::between("Num", lo, hi)]),
            ]),
            Predicate::Const(true),
            Predicate::and(vec![Predicate::not(Predicate::not(Predicate::eq(
                "Pivot", "p1",
            )))]),
        ]));
        let simple = gnarly.clone().simplify();
        for row in 0..table.num_rows() {
            prop_assert_eq!(
                gnarly.eval(&table, row).unwrap(),
                simple.eval(&table, row).unwrap()
            );
        }
    }

    #[test]
    fn span_trees_are_well_nested(ops in prop::collection::vec((0u8..3, 0u8..8), 0..60)) {
        // Drive the raw span API with an arbitrary interleaving of
        // enter / exit / add-counter operations and check that the
        // merged tree conserves every structural quantity.
        use dbexplorer::obs::Tracer;
        const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
        const KEYS: [&str; 2] = ["k0", "k1"];
        let tracer = Tracer::enabled();
        // Open spans as (id, name); parents are picked from this list,
        // so every parent precedes its children in the log.
        let mut open: Vec<(dbexplorer::obs::SpanId, &'static str)> = Vec::new();
        let mut enters = 0u64;
        let mut exits = 0u64;
        // Expected multiset of (parent name or None, span name) pairs.
        let mut pairs = std::collections::BTreeMap::<(Option<&str>, &str), u64>::new();
        let mut counter_sums = std::collections::BTreeMap::<&str, u64>::new();
        for (op, sel) in ops {
            let sel = sel as usize;
            match op {
                0 => {
                    let name = NAMES[sel % NAMES.len()];
                    let pick = sel % (open.len() + 1);
                    let parent = if pick == 0 { None } else { Some(open[pick - 1]) };
                    if let Some(id) = tracer.enter_raw(parent.map(|(id, _)| id), name) {
                        enters += 1;
                        *pairs.entry((parent.map(|(_, n)| n), name)).or_insert(0) += 1;
                        open.push((id, name));
                    }
                }
                1 => {
                    if !open.is_empty() {
                        let (id, _) = open.remove(sel % open.len());
                        tracer.exit_raw(id);
                        exits += 1;
                    }
                }
                _ => {
                    if !open.is_empty() {
                        let (id, _) = open[sel % open.len()];
                        let key = KEYS[sel % KEYS.len()];
                        tracer.add_raw(id, key, sel as u64);
                        *counter_sums.entry(key).or_insert(0) += sel as u64;
                    }
                }
            }
        }
        let trace = tracer.finish().expect("enabled tracer yields a trace");
        // Every entered span survives merging exactly once.
        prop_assert_eq!(trace.total_spans(), enters);
        // Spans left open are force-closed, and only those.
        prop_assert_eq!(trace.forced_closures, enters - exits);
        // The (parent name, child name) multiset and the per-key counter
        // sums are conserved by sibling merging.
        fn walk<'a>(
            nodes: &'a [dbexplorer::obs::SpanNode],
            parent: Option<&'a str>,
            pairs: &mut std::collections::BTreeMap<(Option<&'a str>, &'a str), u64>,
            counters: &mut std::collections::BTreeMap<&'a str, u64>,
        ) {
            for node in nodes {
                *pairs.entry((parent, node.name.as_str())).or_insert(0) += node.calls;
                for (key, n) in &node.counters {
                    *counters.entry(key.as_str()).or_insert(0) += n;
                }
                walk(&node.children, Some(node.name.as_str()), pairs, counters);
            }
        }
        let mut got_pairs = std::collections::BTreeMap::new();
        let mut got_counters = std::collections::BTreeMap::new();
        walk(&trace.roots, None, &mut got_pairs, &mut got_counters);
        // An `add` of 0 legitimately materializes a zero-valued key in
        // the trace; compare only the nonzero entries on both sides.
        got_pairs.retain(|_, n| *n > 0);
        got_counters.retain(|_, n| *n > 0);
        pairs.retain(|_, n| *n > 0);
        counter_sums.retain(|_, n| *n > 0);
        prop_assert_eq!(got_pairs, pairs);
        prop_assert_eq!(got_counters, counter_sums);
    }

    #[test]
    fn histogram_buckets_sum_to_count(
        observations in prop::collection::vec((0u8..5, -1e15f64..1e15), 0..300),
        bounds in prop::collection::vec(-1e9f64..1e9, 0..8),
    ) {
        // Bucket counts plus the NaN bin always account for every
        // observation, for arbitrary f64 including NaN and ±infinity.
        let h = dbexplorer::obs::Histogram::new(&bounds);
        for &(kind, v) in &observations {
            h.observe(match kind {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => 0.0,
                _ => v,
            });
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.total(), observations.len() as u64);
        prop_assert_eq!(snap.count, observations.len() as u64);
        // One bucket per bound plus the overflow bucket, regardless of
        // duplicate or unsorted input bounds.
        prop_assert_eq!(snap.buckets.len(), snap.bounds.len() + 1);
        let nan_expected = observations.iter().filter(|(k, _)| *k == 0).count() as u64;
        prop_assert_eq!(snap.nan, nan_expected);
    }

    #[test]
    fn view_sample_is_subset_without_duplicates(table in arb_table(), n in 0usize..100) {
        let view = table.full_view();
        let sample = view.sample(n);
        prop_assert!(sample.len() <= view.len());
        if n > 0 {
            prop_assert!(sample.len() <= n.max(view.len().min(n)));
        }
        let mut seen = std::collections::HashSet::new();
        for &r in sample.row_ids() {
            prop_assert!((r as usize) < table.num_rows());
            prop_assert!(seen.insert(r), "duplicate row in sample");
        }
    }
}

/// Arbitrary valid UTF-8 (including multi-byte sequences: lossy decoding
/// of random bytes inserts U+FFFD replacement characters).
fn arb_utf8() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..255, 0..300)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ------------------------------------------------------------------
    // Wire protocol: the framing layer must round-trip any UTF-8 and
    // turn any malformed input into a typed error — never a panic.
    // ------------------------------------------------------------------

    #[test]
    fn frames_round_trip_any_utf8(msg in arb_utf8()) {
        use dbexplorer::serve::{decode_frame, encode_frame};
        let frame = encode_frame(&msg).unwrap();
        let (decoded, consumed) = decode_frame(&frame).unwrap().expect("complete frame");
        prop_assert_eq!(&decoded, &msg);
        prop_assert_eq!(consumed, frame.len());
    }

    #[test]
    fn concatenated_frames_stream_back_in_order(msgs in prop::collection::vec(arb_utf8(), 0..8)) {
        use dbexplorer::serve::{encode_frame, read_frame};
        let mut buf = Vec::new();
        for msg in &msgs {
            buf.extend(encode_frame(msg).unwrap());
        }
        let mut stream: &[u8] = &buf;
        for msg in &msgs {
            let got = read_frame(&mut stream).unwrap().expect("frame per message");
            prop_assert_eq!(&got, msg);
        }
        // After the last frame: clean EOF, not an error.
        prop_assert!(read_frame(&mut stream).unwrap().is_none());
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(bytes in prop::collection::vec(0u8..255, 0..600)) {
        use dbexplorer::serve::{decode_frame, read_frame};
        // Buffered decode: any result is fine, a panic is not.
        let _ = decode_frame(&bytes);
        // Streaming decode: drain the input; every frame either decodes,
        // asks for more (clean EOF), or fails typed.
        let mut stream: &[u8] = &bytes;
        while let Ok(Some(_)) = read_frame(&mut stream) {}
    }

    #[test]
    fn truncated_frames_are_typed_errors(msg in arb_utf8(), cut_seed in 0usize..10_000) {
        use dbexplorer::serve::{decode_frame, encode_frame, read_frame, ProtocolError};
        let frame = encode_frame(&msg).unwrap();
        let cut = cut_seed % frame.len(); // frame.len() >= 4, cut < len
        // A buffered prefix just asks for more bytes...
        prop_assert!(decode_frame(&frame[..cut]).unwrap().is_none());
        // ...but a *stream* ending there is a typed truncation (or, at
        // cut 0, a clean EOF).
        let mut stream = &frame[..cut];
        match read_frame(&mut stream) {
            Ok(None) => prop_assert_eq!(cut, 0, "mid-frame EOF reported as clean"),
            Err(ProtocolError::Truncated { expected, got }) => {
                prop_assert!(cut > 0);
                prop_assert!(got < expected);
            }
            other => prop_assert!(false, "unexpected: {:?}", other),
        }
    }

    #[test]
    fn oversized_and_invalid_utf8_frames_are_typed(extra in 1usize..1000, bad_at in 0usize..50) {
        use dbexplorer::serve::{decode_frame, ProtocolError, HEADER_LEN, MAX_FRAME};
        // Oversized declaration: rejected from the header alone.
        let declared = MAX_FRAME + extra;
        let header = (declared as u32).to_be_bytes();
        prop_assert!(matches!(
            decode_frame(&header),
            Err(ProtocolError::Oversized { declared: d, .. }) if d == declared
        ));
        // Invalid UTF-8 payload: typed, with the valid prefix length.
        let mut payload = vec![b'a'; bad_at + 1];
        payload[bad_at] = 0xFF;
        let mut buf = (payload.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(&payload);
        match decode_frame(&buf) {
            Err(ProtocolError::InvalidUtf8 { valid_up_to }) => {
                prop_assert_eq!(valid_up_to, bad_at);
            }
            other => prop_assert!(false, "unexpected: {:?}", other),
        }
        let _ = HEADER_LEN; // referenced for the doc link above
    }

    // ------------------------------------------------------------------
    // SUGGEST: ranking and completion invariants over arbitrary tables.
    // New counterexamples persist to tests/properties.proptest-regressions
    // next to the older properties — keep that file checked in.
    // ------------------------------------------------------------------

    #[test]
    fn suggest_scores_bounded_sorted_and_deterministic(table in arb_table()) {
        use dbexplorer::suggest::{suggest_next, SuggestConfig};
        let view = table.full_view();
        let cfg = SuggestConfig { limit: usize::MAX, ..SuggestConfig::default() };
        let report = suggest_next(&view, 0, &cfg, None).unwrap();
        for s in &report.suggestions {
            prop_assert!(s.attr != 0, "pivot suggested itself");
            prop_assert!(s.score.is_finite());
            prop_assert!((0.0..=1.0 + 1e-9).contains(&s.score), "SU {} out of [0,1]", s.score);
            prop_assert!(s.score > 0.0, "constant attribute survived the cut");
        }
        // Strict total order: score descending, column index ascending on ties.
        for w in report.suggestions.windows(2) {
            prop_assert!(
                w[0].score > w[1].score || (w[0].score == w[1].score && w[0].attr < w[1].attr),
                "ranking violates (score desc, attr asc): {:?} then {:?}",
                (w[0].attr, w[0].score),
                (w[1].attr, w[1].score)
            );
        }
        // Parallel scoring is byte-identical to sequential, float bits included.
        let par_cfg = SuggestConfig { threads: 4, limit: usize::MAX, ..SuggestConfig::default() };
        let par = suggest_next(&view, 0, &par_cfg, None).unwrap();
        prop_assert_eq!(report.suggestions.len(), par.suggestions.len());
        for (a, b) in report.suggestions.iter().zip(&par.suggestions) {
            prop_assert_eq!(a.attr, b.attr);
            prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn value_completion_frequencies_form_a_distribution(
        table in arb_table(),
        partial_idx in 0usize..5,
    ) {
        use dbexplorer::suggest::{complete_value, SuggestConfig};
        let partial = ["", "c", "C1", "c2", "zzz"][partial_idx];
        let view = table.full_view();
        let cfg = SuggestConfig { limit: usize::MAX, ..SuggestConfig::default() };
        let items = complete_value(&view, "Cat", partial, &cfg, None).unwrap();
        let needle = partial.to_ascii_lowercase();
        for item in &items {
            prop_assert!(item.text.to_ascii_lowercase().starts_with(&needle));
            prop_assert!(item.score > 0.0 && item.score <= 1.0 + 1e-9);
        }
        for w in items.windows(2) {
            prop_assert!(w[0].score >= w[1].score, "completion not sorted by frequency");
        }
        if partial.is_empty() {
            // No nulls in arb_table: the frequencies are a full distribution.
            let total: f64 = items.iter().map(|i| i.score).sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "frequencies sum to {total}");
        }
        // The unknown-attribute path is a typed error, never a panic.
        prop_assert!(complete_value(&view, "NoSuchAttr", partial, &cfg, None).is_err());
    }

    #[test]
    fn analyze_prefix_never_panics(input in arb_utf8()) {
        use dbexplorer::suggest::{analyze_prefix, CompletionMode};
        let analysis = analyze_prefix(&input);
        // A value completion always knows which attribute it completes.
        if let CompletionMode::Value { attr, .. } = &analysis.mode {
            prop_assert!(!attr.is_empty());
        }
    }

    #[test]
    fn wire_responses_round_trip_any_text(ok_bit in 0u8..2, tag in arb_utf8(), text in arb_utf8()) {
        use dbexplorer::serve::WireResponse;
        let resp = if ok_bit == 1 {
            WireResponse::ok(&tag, &text)
        } else {
            WireResponse::err(&tag, &text)
        };
        let line = resp.to_line();
        // JSON lines may not contain raw newlines or other C0 controls
        // (DEL and C1 controls are legal unescaped JSON and may pass
        // through).
        prop_assert!(!line.contains('\n'));
        prop_assert!(line.chars().all(|c| (c as u32) >= 0x20));
        let parsed = WireResponse::parse(&line).unwrap();
        prop_assert_eq!(parsed, resp);
    }
}

/// Explicit replay of the counterexample committed in
/// `tests/properties.proptest-regressions` (shrunk to a single value in a
/// single bin by `histogram_edges_monotone_and_total`). Pinned as a plain
/// test so the degenerate-histogram case survives even if the regressions
/// file is ever pruned.
#[test]
fn histogram_regression_single_value_single_bin() {
    let values = [71515.76335789483];
    for strategy in [
        BinningStrategy::EquiWidth,
        BinningStrategy::EquiDepth,
        BinningStrategy::VOptimal,
        BinningStrategy::MaxDiff,
    ] {
        let h = Histogram::build(&values, 1, strategy).unwrap();
        let edges = h.edges();
        for w in edges.windows(2) {
            assert!(w[0] < w[1], "{strategy:?}: non-monotone {edges:?}");
        }
        assert_eq!(h.num_bins(), 1);
        assert_eq!(h.bin_of(values[0]), 0);
        assert_eq!(h.bin_of(f64::MIN), 0);
        assert_eq!(h.bin_of(f64::MAX), 0);
    }
}
