//! Ranking-correctness battery for the SUGGEST subsystem.
//!
//! Four contracts, each load-bearing for the feature:
//!
//! 1. **Determinism** — `suggest_next` is byte-identical (float bits
//!    included) at 1, 2, and 8 scoring threads, and with or without the
//!    shared stats cache.
//! 2. **Permutation invariance** — shuffling the *rows* or reordering
//!    the *columns* of the input table never changes the ranking (by
//!    attribute name) or moves a score by more than float noise.
//! 3. **Monotonicity** — refining a view only ever *removes* candidates:
//!    an attribute eliminated (constant over the rows) at one step can
//!    never resurface at a deeper refinement.
//! 4. **Planted-correlation recovery** — on the exploration benchmark's
//!    synthetic dataset, the attribute planted to follow the pivot lands
//!    in the top 3 for at least 90% of seeds.

use dbexplorer::explore::SyntheticSpec;
use dbexplorer::stats::StatsCache;
use dbexplorer::suggest::{suggest_next, NextReport, SuggestConfig};
use dbexplorer::table::{DataType, Field, Predicate, Table, TableBuilder, Value, View};

/// Flattens a [`NextReport`] into one comparable string, float bits
/// included, so "close" never passes for "equal".
fn digest(r: &NextReport) -> String {
    let mut out = format!(
        "pivot={} name={} rows={} candidates={}\n",
        r.pivot, r.pivot_name, r.view_rows, r.candidates
    );
    for s in &r.suggestions {
        out.push_str(&format!(
            "attr={} name={} score={:016x} gain={:016x} entropy={:016x} card={}\n",
            s.attr,
            s.name,
            s.score.to_bits(),
            s.gain.to_bits(),
            s.entropy.to_bits(),
            s.cardinality
        ));
    }
    out
}

fn config(threads: usize) -> SuggestConfig {
    SuggestConfig {
        threads,
        // No limit cut: the full candidate ranking is under test.
        limit: usize::MAX,
        ..SuggestConfig::default()
    }
}

/// A 400-row table with one strong planted dependency (`echo` follows
/// `pivot`), one weak one, and independent noise. `row_order` and
/// `attr_order` permute the physical layout without touching the data,
/// which is exactly what the invariance tests vary.
fn planted_table(row_order: &[usize], attr_order: &[usize]) -> Table {
    const N: usize = 400;
    assert_eq!(row_order.len(), N);
    let fields = [
        ("pivot", DataType::Categorical),
        ("echo", DataType::Categorical),
        ("weak", DataType::Categorical),
        ("noise", DataType::Categorical),
        ("num", DataType::Int),
    ];
    let mut b = TableBuilder::new(
        attr_order
            .iter()
            .map(|&a| Field::new(fields[a].0, fields[a].1))
            .collect(),
    )
    .expect("schema");
    // Deterministic xorshift stream; one draw per cell per row.
    let mut state = 0x243F_6A88_85A3_08D3u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let rows: Vec<[Value; 5]> = (0..N)
        .map(|_| {
            let p = (next() % 4) as i64;
            // echo copies the pivot level 85% of the time.
            let echo = if next() % 100 < 85 { p } else { (next() % 4) as i64 };
            let weak = if next() % 100 < 35 { p } else { (next() % 4) as i64 };
            let noise = (next() % 5) as i64;
            [
                Value::Str(format!("p{p}")),
                Value::Str(format!("e{echo}")),
                Value::Str(format!("w{weak}")),
                Value::Str(format!("x{noise}")),
                Value::Int((next() % 1000) as i64),
            ]
        })
        .collect();
    for &r in row_order {
        b.push_row(attr_order.iter().map(|&a| rows[r][a].clone()).collect())
            .expect("row");
    }
    b.finish()
}

fn identity(n: usize) -> Vec<usize> {
    (0..n).collect()
}

/// A fixed but non-trivial permutation of `0..n`.
fn shuffled(n: usize) -> Vec<usize> {
    let mut order = identity(n);
    let mut state = 0x9E37_79B9u64;
    for i in (1..n).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        order.swap(i, (state % (i as u64 + 1)) as usize);
    }
    order
}

// -------------------------------------------------------------------
// 1. Determinism
// -------------------------------------------------------------------

#[test]
fn ranking_is_byte_identical_across_thread_counts() {
    let table = planted_table(&identity(400), &identity(5));
    let view = View::all(&table);
    let reference = digest(&suggest_next(&view, 0, &config(1), None).expect("rank"));
    assert!(reference.contains("name=echo"), "planted attr missing:\n{reference}");
    for threads in [2, 8] {
        let parallel = digest(&suggest_next(&view, 0, &config(threads), None).expect("rank"));
        assert_eq!(
            parallel, reference,
            "{threads}-thread ranking diverged from sequential"
        );
    }
}

#[test]
fn cached_ranking_is_byte_identical_to_uncached() {
    let table = planted_table(&identity(400), &identity(5));
    let view = View::all(&table);
    let uncached = digest(&suggest_next(&view, 0, &config(1), None).expect("rank"));
    let cache = StatsCache::new();
    for threads in [1, 8] {
        let cold = suggest_next(&view, 0, &config(threads), Some(&cache)).expect("cold");
        assert_eq!(digest(&cold), uncached, "cached ranking diverged (cold)");
        let warm = suggest_next(&view, 0, &config(threads), Some(&cache)).expect("warm");
        assert_eq!(digest(&warm), uncached, "cached ranking diverged (warm)");
        assert!(
            warm.cache_hits > 0 && warm.cache_misses == 0,
            "a repeated suggestion over an unchanged view must be all cache hits \
             ({} hits, {} misses)",
            warm.cache_hits,
            warm.cache_misses
        );
    }
}

// -------------------------------------------------------------------
// 2. Permutation invariance
// -------------------------------------------------------------------

/// Compares two rankings by *name*: same set, same order wherever the
/// score gap exceeds float noise, and pairwise-close scores. Exact byte
/// equality is deliberately not required here — permuting rows permutes
/// dictionary code order, which reorders floating-point summation.
fn assert_same_ranking(a: &NextReport, b: &NextReport, what: &str) {
    fn names(r: &NextReport) -> Vec<&str> {
        r.suggestions.iter().map(|s| s.name.as_str()).collect()
    }
    let score_of = |r: &NextReport, name: &str| -> f64 {
        r.suggestions
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("{what}: attribute {name} missing"))
            .score
    };
    let (mut an, mut bn) = (names(a), names(b));
    an.sort_unstable();
    bn.sort_unstable();
    assert_eq!(an, bn, "{what}: candidate sets differ");
    for name in &an {
        let (sa, sb) = (score_of(a, name), score_of(b, name));
        assert!(
            (sa - sb).abs() < 1e-9,
            "{what}: score of {name} moved: {sa} vs {sb}"
        );
    }
    // Relative order must agree for every pair separated by more than
    // float noise in the reference ranking.
    for (i, x) in a.suggestions.iter().enumerate() {
        for y in &a.suggestions[i + 1..] {
            if x.score - y.score > 1e-9 {
                let bx = b.suggestions.iter().position(|s| s.name == x.name).unwrap();
                let by = b.suggestions.iter().position(|s| s.name == y.name).unwrap();
                assert!(
                    bx < by,
                    "{what}: {} (score {}) must outrank {} (score {})",
                    x.name,
                    x.score,
                    y.name,
                    y.score
                );
            }
        }
    }
}

#[test]
fn ranking_is_invariant_under_row_permutation() {
    let base = planted_table(&identity(400), &identity(5));
    let permuted = planted_table(&shuffled(400), &identity(5));
    let a = suggest_next(&View::all(&base), 0, &config(1), None).expect("base");
    let b = suggest_next(&View::all(&permuted), 0, &config(1), None).expect("permuted");
    assert_same_ranking(&a, &b, "row permutation");
    assert_eq!(a.suggestions[0].name, "echo", "planted attr must rank first");
    assert_eq!(b.suggestions[0].name, "echo", "planted attr must rank first");
}

#[test]
fn ranking_is_invariant_under_attribute_permutation() {
    let base = planted_table(&identity(400), &identity(5));
    // Pivot lands at a different column index in the permuted schema.
    let attr_order = [3, 0, 4, 2, 1];
    let permuted = planted_table(&identity(400), &attr_order);
    let pivot_col = attr_order.iter().position(|&a| a == 0).unwrap();
    let a = suggest_next(&View::all(&base), 0, &config(1), None).expect("base");
    let b = suggest_next(&View::all(&permuted), pivot_col, &config(1), None).expect("permuted");
    assert_eq!(b.pivot_name, "pivot");
    assert_same_ranking(&a, &b, "attribute permutation");
}

// -------------------------------------------------------------------
// 3. Monotonicity
// -------------------------------------------------------------------

#[test]
fn refinement_never_resurfaces_an_eliminated_attribute() {
    // A chain of refinements over the synthetic exploration dataset.
    // With no limit cut, the suggested set is exactly the attributes
    // still varying over the view — so each refinement's set must be a
    // subset of its parent's.
    let spec = SyntheticSpec::exploration_default(2_000, 5);
    let table = spec.generate();
    let full = table.full_view();
    let steps = [
        Predicate::eq("d0", "d0_v0"),
        Predicate::eq("d3", "d3_v0"),
        Predicate::eq("c1", "c1_v1"),
        Predicate::eq("x1", "x1_v0"),
    ];
    let mut views: Vec<View<'_>> = vec![full];
    for p in &steps {
        let deeper = views.last().unwrap().refine(p).expect("refine");
        views.push(deeper);
    }
    let suggested: Vec<std::collections::BTreeSet<String>> = views
        .iter()
        .map(|v| {
            suggest_next(v, 0, &config(1), None)
                .expect("rank")
                .suggestions
                .into_iter()
                .map(|s| s.name)
                .collect()
        })
        .collect();
    for (step, w) in suggested.windows(2).enumerate() {
        let resurfaced: Vec<&String> = w[1].difference(&w[0]).collect();
        assert!(
            resurfaced.is_empty(),
            "refinement step {} surfaced previously-eliminated attributes {:?}",
            step + 1,
            resurfaced
        );
    }
    // The drilled-to-one-value attributes really are eliminated.
    let last = suggested.last().unwrap();
    for gone in ["d0", "d3", "c1", "x1"] {
        assert!(
            !last.contains(gone),
            "{gone} is constant over the drilled view yet still suggested"
        );
    }
}

// -------------------------------------------------------------------
// 4. Planted-correlation recovery
// -------------------------------------------------------------------

#[test]
fn planted_pivot_dependent_recovered_in_top_3_across_seeds() {
    // `exploration_default` plants `c0` to follow the pivot `p` at
    // strength 0.8 — by construction the strongest pivot association in
    // the dataset. Across 20 seeds the suggester must put it in the top
    // 3 at least 90% of the time.
    const SEEDS: u64 = 20;
    let mut recovered = 0u32;
    for seed in 0..SEEDS {
        let spec = SyntheticSpec::exploration_default(2_000, seed);
        let table = spec.generate_with_threads(0);
        let view = table.full_view();
        let pivot = spec.attrs.iter().position(|a| a.name == "p").expect("pivot attr");
        let report = suggest_next(&view, pivot, &config(0), None).expect("rank");
        let top3: Vec<&str> = report
            .suggestions
            .iter()
            .take(3)
            .map(|s| s.name.as_str())
            .collect();
        if top3.contains(&"c0") {
            recovered += 1;
        } else {
            eprintln!("seed {seed}: c0 not in top 3, got {top3:?}");
        }
    }
    assert!(
        recovered * 10 >= SEEDS as u32 * 9,
        "planted correlation recovered in only {recovered}/{SEEDS} seeds (need >= 90%)"
    );
}
