//! Adversarial clients against the evented server: peers that are slow,
//! greedy, or gone are the scenarios a readiness loop exists to survive.
//!
//! * **Slow loris** — a client delivering its frame one byte per write
//!   must cost the loop one cheap decode attempt per readiness event,
//!   and still get a full response once the frame completes.
//! * **Never reads** — a client that pipelines requests and never drains
//!   its socket must hit the server's write-side backpressure
//!   (`WouldBlock` → buffered bytes + write-interest re-registration)
//!   without wedging the loop for everyone else.
//! * **Mid-preview disconnect** — a streaming client that vanishes after
//!   the preview frame must arm the in-flight exact build's cancel flag
//!   and release the connection slot.
//!
//! All assertions use per-server `ServerHandle` counters, not the
//! process-wide gauges, so these tests can share a binary.

use dbexplorer::data::UsedCarsGenerator;
use dbexplorer::serve::{encode_frame, Client, ServeConfig, Server, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn spawn_server(rows: usize) -> ServerHandle {
    let server =
        Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind ephemeral port");
    server.preload("cars", UsedCarsGenerator::new(11).generate(rows));
    server.spawn().expect("spawn server threads")
}

/// Reads one newline-terminated response line from a raw socket.
fn read_line(stream: &mut TcpStream) -> String {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => panic!("server closed before completing a response line"),
            Ok(_) if byte[0] == b'\n' => break,
            Ok(_) => line.push(byte[0]),
            Err(e) => panic!("read failed mid-line: {e}"),
        }
    }
    String::from_utf8(line).expect("response line is UTF-8")
}

fn wait_for_connections(handle: &ServerHandle, want: usize, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while handle.active_connections() != want {
        assert!(
            Instant::now() < deadline,
            "{what}: still {} connection(s), want {want}",
            handle.active_connections()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// One byte per write, a pause between each: the frame decoder must
/// accumulate across dozens of readiness events and answer normally —
/// twice, to prove the per-connection state machine resets cleanly.
#[test]
fn slow_loris_frames_decode_across_readiness_events() {
    let handle = spawn_server(500);
    let mut raw = TcpStream::connect(handle.addr()).expect("connect");
    raw.set_nodelay(true).ok();
    let hello = read_line(&mut raw);
    assert!(hello.contains("dbex-serve ready"), "unexpected hello: {hello}");

    for _ in 0..2 {
        let frame = encode_frame(".ping").expect("encode .ping");
        for byte in &frame {
            raw.write_all(std::slice::from_ref(byte)).expect("write one byte");
            raw.flush().ok();
            std::thread::sleep(Duration::from_millis(2));
        }
        let response = read_line(&mut raw);
        assert!(
            response.contains("\"ok\":true") && response.contains("pong"),
            "slow-loris frame got a wrong answer: {response}"
        );
    }

    assert_eq!(handle.panics(), 0);
    drop(raw);
    wait_for_connections(&handle, 0, "after the loris left");
    handle.shutdown();
}

/// A client that pipelines far more work than it ever reads back. The
/// server must buffer what the socket won't take, keep serving other
/// connections promptly, and discard everything when the hoarder leaves.
#[test]
fn never_reading_client_does_not_wedge_the_loop() {
    let handle = spawn_server(6_000);
    let mut hoarder = Client::connect(handle.addr()).expect("connect hoarder");
    // ~64 bulky responses (a few hundred KB each) against a socket nobody
    // drains: the send buffer fills, and the overflow must live in the
    // server's write buffer under re-registered write interest.
    for _ in 0..64 {
        hoarder
            .send_only("SELECT Make, Model, Price FROM cars LIMIT 5000")
            .expect("pipeline request");
    }

    // The loop must still answer everyone else with single-digit-ms
    // round-trips' worth of responsiveness (bounded generously).
    let mut other = Client::connect(handle.addr()).expect("connect bystander");
    other.set_read_timeout(Some(Duration::from_secs(10))).expect("set timeout");
    for _ in 0..5 {
        let resp = other.request(".ping").expect("bystander ping during backpressure");
        assert!(resp.ok, "bystander ping failed: {resp:?}");
    }

    // The hoarder vanishes with megabytes still queued for it; the server
    // must drop the buffered bytes and release the slot.
    drop(hoarder);
    wait_for_connections(&handle, 1, "after the hoarder left");

    let resp = other.request(".ping").expect("bystander ping after cleanup");
    assert!(resp.ok);
    assert_eq!(handle.panics(), 0);
    drop(other);
    wait_for_connections(&handle, 0, "after all clients left");
    handle.shutdown();
}

/// A streaming client that disconnects between the preview frame and the
/// exact answer: the loop must arm the running request's cancel flag
/// (the `BudgetGauge` then abandons the exact build early) and close the
/// connection once the worker comes home.
#[test]
fn mid_preview_disconnect_cancels_the_exact_build() {
    let handle = spawn_server(6_000);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let ack = client.request(".stream on").expect("enable streaming");
    assert!(ack.ok, "{ack:?}");

    client
        .send_only("CREATE CADVIEW big AS SET pivot = Make FROM cars LIMIT COLUMNS 3 IUNITS 3")
        .expect("send CAD build");
    let preview = client.read_response().expect("read preview frame");
    assert!(preview.ok, "preview frame not ok: {preview:?}");
    assert_eq!(preview.seq, Some(0), "first frame must be seq 0");
    assert!(!preview.is_final(), "first frame of a streamed CAD build must be a preview");

    // Gone before the exact frame: the read-side EOF arrives while the
    // worker is still building.
    drop(client);

    let deadline = Instant::now() + Duration::from_secs(30);
    while handle.request_cancels() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        handle.request_cancels() > 0,
        "disconnect mid-preview never armed the request cancel flag"
    );
    wait_for_connections(&handle, 0, "after the streaming client vanished");
    assert_eq!(handle.panics(), 0);
    handle.shutdown();
}
