//! Fault-injection and corruption properties of the durable catalog.
//!
//! The invariant under test, from every angle we can mechanise: **`open`
//! never panics on arbitrary disk bytes and never returns silently wrong
//! rows.** Either it yields a table set whose content digests match a
//! generation that was actually committed, or it returns a typed
//! [`StoreError`]. Corruption modes covered:
//!
//! * truncation at every block boundary of the newest manifest and of a
//!   segment (torn tail writes),
//! * random single-bit flips anywhere in any store file (bit rot),
//! * an injected fault (short write, ENOSPC, fsync failure, torn rename)
//!   at every mutation point of a save (crash mid-save).

use dbexplorer::store::{
    block_boundaries, flip_bit, open, save, table_digest, FaultKind, FaultVfs, RealVfs, StoreError,
};
use dbexplorer::table::{DataType, Field, Table, TableBuilder, Value};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fresh scratch directory per case; unique across parallel test threads.
fn scratch() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dbex-store-recovery-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn copy_dir(src: &Path) -> PathBuf {
    let dst = scratch();
    std::fs::create_dir_all(&dst).expect("create scratch dir");
    for entry in std::fs::read_dir(src).expect("read store dir") {
        let entry = entry.expect("dir entry");
        std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy store file");
    }
    dst
}

fn cleanup(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
}

/// A small random table mixing every column type, with nulls (the last
/// tuple component is a null mask: bit 0 nulls `Num`, bit 1 nulls `Score`).
fn arb_table() -> impl Strategy<Value = Table> {
    let rows = prop::collection::vec((0u8..5, -100i64..100, 0u32..1000, 0u8..4), 1..60);
    rows.prop_map(|rows| {
        let mut b = TableBuilder::new(vec![
            Field::new("Cat", DataType::Categorical),
            Field::new("Num", DataType::Int),
            Field::new("Score", DataType::Float),
        ])
        .expect("schema");
        for (c, n, f, nulls) in rows {
            b.push_row(vec![
                Value::Str(format!("c{c}")),
                if nulls & 1 != 0 { Value::Null } else { Value::Int(n) },
                if nulls & 2 != 0 { Value::Null } else { Value::Float(f64::from(f) / 8.0) },
            ])
            .expect("push row");
        }
        b.finish()
    })
}

fn sorted_digests(tables: &[(String, Arc<Table>)]) -> Vec<u64> {
    let mut digests: Vec<u64> = tables.iter().map(|(_, t)| table_digest(t)).collect();
    digests.sort_unstable();
    digests
}

/// A two-generation store: gen 1 holds `{a}`, gen 2 holds `{a, b}`.
/// Returns the directory plus the two legal digest sets.
fn two_generation_store(a: Table, b: Table) -> (PathBuf, Vec<u64>, Vec<u64>) {
    let dir = scratch();
    let v1: Vec<(String, Arc<Table>)> = vec![("alpha".to_owned(), Arc::new(a))];
    save(&RealVfs, &dir, &v1, None).expect("save generation 1");
    let mut v2 = v1.clone();
    v2.push(("beta".to_owned(), Arc::new(b)));
    save(&RealVfs, &dir, &v2, None).expect("save generation 2");
    (dir, sorted_digests(&v1), sorted_digests(&v2))
}

/// `open` after corruption must recover a committed generation or fail
/// typed; anything else (a panic unwinds through here) is the bug.
fn assert_recovers_or_fails_typed(dir: &Path, legal: &[&[u64]]) {
    match open(&RealVfs, dir) {
        Ok(report) => {
            let digests = sorted_digests(&report.tables);
            assert!(
                legal.contains(&digests.as_slice()),
                "open returned a table set matching no committed generation: {digests:x?}"
            );
        }
        // Typed by construction; NoManifest included (total loss of all
        // manifests is a clean "empty store", not silent corruption).
        Err(StoreError::AllGenerationsCorrupt { .. } | StoreError::NoManifest { .. }) => {}
        Err(_) => {}
    }
}

fn fixed_table(seed: u8, rows: usize) -> Table {
    let mut b = TableBuilder::new(vec![
        Field::new("Cat", DataType::Categorical),
        Field::new("Num", DataType::Int),
    ])
    .expect("schema");
    for i in 0..rows {
        b.push_row(vec![
            Value::Str(format!("v{}", (i as u8).wrapping_mul(seed) % 7)),
            Value::Int(i as i64 * i64::from(seed)),
        ])
        .expect("push row");
    }
    b.finish()
}

#[test]
fn truncation_at_every_block_boundary_recovers_or_fails_typed() {
    let (dir, v1, v2) = two_generation_store(fixed_table(3, 40), fixed_table(5, 25));
    let files: Vec<String> = std::fs::read_dir(&dir)
        .expect("read store dir")
        .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
        .collect();
    let mut cases = 0;
    for name in &files {
        let data = std::fs::read(dir.join(name)).expect("read store file");
        // Every block boundary, plus one byte into the next frame header.
        let mut cuts = block_boundaries(&data);
        cuts.extend(block_boundaries(&data).iter().map(|c| c + 1));
        cuts.retain(|c| *c < data.len());
        cuts.push(0);
        for cut in cuts {
            let broken = copy_dir(&dir);
            std::fs::write(broken.join(name), &data[..cut]).expect("truncate copy");
            assert_recovers_or_fails_typed(&broken, &[&v1, &v2]);
            cleanup(&broken);
            cases += 1;
        }
    }
    assert!(cases > 10, "expected a real truncation matrix, ran {cases} cases");
    cleanup(&dir);
}

#[test]
fn fault_at_every_mutation_point_preserves_a_committed_generation() {
    let base = fixed_table(3, 40);
    let extra = fixed_table(5, 25);
    // Dry-run the second save to count its mutation points.
    let (probe_dir, _, _) = two_generation_store(fixed_table(3, 40), fixed_table(5, 25));
    cleanup(&probe_dir);
    let v1: Vec<(String, Arc<Table>)> = vec![("alpha".to_owned(), Arc::new(base))];
    let mut v2 = v1.clone();
    v2.push(("beta".to_owned(), Arc::new(extra)));
    let legal_v1 = sorted_digests(&v1);
    let legal_v2 = sorted_digests(&v2);

    let probe = scratch();
    save(&RealVfs, &probe, &v1, None).expect("probe save 1");
    let counter = FaultVfs::counting();
    save(&counter, &probe, &v2, None).expect("probe save 2");
    let mutations = counter.mutations();
    cleanup(&probe);
    assert!(mutations >= 4, "expected several mutation points, saw {mutations}");

    for kind in [
        FaultKind::ShortWrite,
        FaultKind::Enospc,
        FaultKind::FsyncFail,
        FaultKind::TornRename,
    ] {
        for nth in 0..mutations {
            let dir = scratch();
            save(&RealVfs, &dir, &v1, None).expect("seed save");
            let faulty = FaultVfs::failing_at(kind, nth);
            let outcome = save(&faulty, &dir, &v2, None);
            match open(&RealVfs, &dir) {
                Ok(report) => {
                    let digests = sorted_digests(&report.tables);
                    if outcome.is_ok() {
                        // A save that reported success must be durable.
                        assert_eq!(
                            digests, legal_v2,
                            "{kind:?}@{nth}: save said Ok but v2 is not what reopens"
                        );
                    } else {
                        assert!(
                            digests == legal_v1 || digests == legal_v2,
                            "{kind:?}@{nth}: torn catalog after failed save: {digests:x?}"
                        );
                    }
                }
                Err(e) => panic!("{kind:?}@{nth}: prior generation lost: {e}"),
            }
            cleanup(&dir);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_tables_round_trip(table in arb_table()) {
        let dir = scratch();
        let tables: Vec<(String, Arc<Table>)> = vec![("t".to_owned(), Arc::new(table))];
        save(&RealVfs, &dir, &tables, None).expect("save");
        let report = open(&RealVfs, &dir).expect("open");
        prop_assert_eq!(sorted_digests(&report.tables), sorted_digests(&tables));
        prop_assert_eq!(report.tables[0].1.num_rows(), tables[0].1.num_rows());
        cleanup(&dir);
    }

    #[test]
    fn random_bit_flips_recover_or_fail_typed(
        table in arb_table(),
        file_pick in 0usize..1 << 16,
        byte in 0usize..1 << 20,
        bit in 0u8..8,
    ) {
        let (dir, v1, v2) = two_generation_store(fixed_table(3, 30), table);
        let files: Vec<String> = std::fs::read_dir(&dir)
            .expect("read store dir")
            .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
            .collect();
        let victim = &files[file_pick % files.len()];
        // `flip_bit` wraps the byte offset modulo the file length.
        flip_bit(&dir.join(victim), byte, bit).expect("flip bit");
        assert_recovers_or_fails_typed(&dir, &[&v1, &v2]);
        cleanup(&dir);
    }
}
